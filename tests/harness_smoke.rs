//! Smoke tests for the experiment harness: every experiment runs end to end
//! at a tiny scale and yields plausibly-shaped tables.

use geoind_bench::config::Config;
use geoind_bench::exp;

fn tiny_config() -> Config {
    let mut cfg = Config::quick();
    cfg.queries = 40;
    cfg.out_dir = std::env::temp_dir().join(format!("geoind-smoke-{}", std::process::id()));
    cfg
}

#[test]
fn every_cheap_experiment_produces_tables() {
    let cfg = tiny_config();
    // The LP-heavy runs (fig6..fig11 at g=6, abl-spanner at g=5) are
    // exercised by the release-mode bench run; here we cover the rest.
    for name in ["fig5", "table2", "abl-alloc", "abl-index"] {
        let tables = exp::run(name, &cfg);
        assert!(!tables.is_empty(), "{name} produced no tables");
        for t in &tables {
            assert!(!t.is_empty(), "{name}: empty table {}", t.title);
        }
    }
}

#[test]
fn fig3_scales_down() {
    let cfg = tiny_config();
    let tables = geoind_bench::exp::fig3::run_to(&cfg, 3);
    assert_eq!(tables[0].len(), 2);
}

#[test]
fn csv_mirrors_are_written() {
    let cfg = tiny_config();
    let tables = exp::run("abl-alloc", &cfg);
    let path = cfg.out_dir.join(format!("{}.csv", tables[0].file_stem()));
    tables[0].write_csv(&path).expect("csv written");
    let content = std::fs::read_to_string(&path).expect("readable");
    assert!(content.lines().count() >= 2);
    std::fs::remove_dir_all(&cfg.out_dir).ok();
}

#[test]
#[should_panic(expected = "unknown experiment")]
fn unknown_experiment_panics() {
    exp::run("fig99", &tiny_config());
}
