//! Seeded-determinism regression guard for the RNG swap: a fixed seed must
//! yield **bit-identical** outputs across two independent runs of every
//! sampling path (planar Laplace, the multi-step mechanism, alias tables).
//! This is the contract that makes every experiment in `EXPERIMENTS.md`
//! reproducible from a single recorded `u64`.

use geoind::math::sampling::AliasTable;
use geoind::prelude::*;
use geoind_rng::SeededRng;

fn city() -> Dataset {
    SyntheticCity::vegas_like().generate_with_size(5_000, 500)
}

/// Two fresh RNGs with the same seed drive `PlanarLaplace::report` to
/// bit-identical reported locations.
#[test]
fn planar_laplace_report_is_bit_deterministic() {
    let pl = PlanarLaplace::new(0.7);
    let xs: Vec<Point> = (0..100)
        .map(|i| Point::new((i % 17) as f64 + 0.5, (i % 13) as f64 + 0.25))
        .collect();
    let run = || {
        let mut rng = SeededRng::from_seed(0xDE7E_12F1);
        xs.iter()
            .map(|&x| pl.report(x, &mut rng))
            .collect::<Vec<Point>>()
    };
    let (a, b) = (run(), run());
    for (p, q) in a.iter().zip(&b) {
        assert!(
            p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits(),
            "PL reports diverged: {p:?} vs {q:?}"
        );
    }
}

/// Two fresh RNGs with the same seed drive `Msm::report` to bit-identical
/// outputs — covering the whole hierarchical descent (per-level channel
/// sampling) and the channel cache, whose state must not leak into the
/// sampled stream.
#[test]
fn msm_report_is_bit_deterministic() {
    let dataset = city();
    let prior = GridPrior::from_dataset(&dataset, 8);
    let msm = MsmMechanism::builder(dataset.domain(), prior)
        .epsilon(0.8)
        .granularity(2)
        .build()
        .expect("valid configuration");
    let xs: Vec<Point> = dataset
        .checkins()
        .iter()
        .take(60)
        .map(|c| c.location)
        .collect();
    let run = || {
        let mut rng = SeededRng::from_seed(0x5EED_CAFE);
        xs.iter()
            .map(|&x| msm.report(x, &mut rng))
            .collect::<Vec<Point>>()
    };
    // Second run reuses the warm cache; outputs must not change.
    let (a, b) = (run(), run());
    for (i, (p, q)) in a.iter().zip(&b).enumerate() {
        assert!(
            p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits(),
            "MSM reports diverged at query {i}: {p:?} vs {q:?}"
        );
    }
}

/// Alias-table sampling is a pure function of (weights, seed).
#[test]
fn alias_sampling_is_bit_deterministic() {
    let weights: Vec<f64> = (1..=64).map(|i| (i as f64).sqrt()).collect();
    let table = AliasTable::new(&weights);
    let run = || {
        let mut rng = SeededRng::from_seed(0xA_11A5);
        (0..10_000)
            .map(|_| table.sample(&mut rng))
            .collect::<Vec<usize>>()
    };
    assert_eq!(
        run(),
        run(),
        "alias sampling diverged across identical seeds"
    );
}

/// Fault-injected runs are as reproducible as healthy ones: a fixed seed
/// plus a fixed *count-based* fault schedule yields bit-identical outputs
/// through the degradation ladder — including which tier served each
/// query. This is what makes a fault reported from the field replayable.
#[test]
fn degraded_ladder_is_bit_deterministic_under_armed_faults() {
    use geoind_testkit::failpoint::{FailSpec, Session};

    let dataset = city();
    let xs: Vec<Point> = dataset
        .checkins()
        .iter()
        .take(30)
        .map(|c| c.location)
        .collect();
    let run = || {
        // A fresh mechanism (cold channel cache) and a freshly armed spec
        // each run: the schedule is part of the replayed configuration.
        let prior = GridPrior::from_dataset(&dataset, 8);
        let ladder = ResilientMechanism::from_builder(
            MsmMechanism::builder(dataset.domain(), prior)
                .epsilon(0.8)
                .granularity(2),
        )
        .expect("valid configuration");
        let mut fp = Session::new();
        fp.arm("lp.refactor.singular", FailSpec::times(4));
        let mut rng = SeededRng::from_seed(0xFA17_5EED);
        xs.iter()
            .map(|&x| ladder.report_with_tier(x, &mut rng))
            .collect::<Vec<(Point, Tier)>>()
    };
    let (a, b) = (run(), run());
    assert!(
        a.iter().any(|&(_, t)| t != Tier::Optimal),
        "fault schedule never degraded — the test is vacuous"
    );
    assert!(
        a.iter().any(|&(_, t)| t == Tier::Optimal),
        "every query degraded — recovery path untested"
    );
    for (i, ((p, tp), (q, tq))) in a.iter().zip(&b).enumerate() {
        assert_eq!(tp, tq, "serving tier diverged at query {i}");
        assert!(
            p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits(),
            "fault-injected reports diverged at query {i}: {p:?} vs {q:?}"
        );
    }
}

/// The parallel precompute fan-out must be invisible in the exported
/// bundle: `--jobs 1` and `--jobs 4` walk the same donor-first warm-start
/// schedule (the donor of each level is the lowest cell index, never
/// "whichever worker finished first"), so the exported cache bytes are
/// identical at any worker count. This is the contract that lets CI cmp
/// two bundles and lets operators precompute on any machine.
#[test]
fn precompute_bundle_bytes_are_independent_of_jobs() {
    let dataset = city();
    let export = |jobs: usize| {
        let prior = GridPrior::from_dataset(&dataset, 8);
        let msm = MsmMechanism::builder(dataset.domain(), prior)
            .epsilon(0.8)
            .granularity(2)
            .build()
            .expect("valid configuration");
        let nodes = msm.precompute_jobs(100_000, jobs).expect("precompute");
        assert!(nodes >= 1, "precompute solved nothing at jobs={jobs}");
        let mut blob = Vec::new();
        msm.export_cache(&mut blob).expect("export");
        blob
    };
    let sequential = export(1);
    let parallel = export(4);
    assert_eq!(
        sequential, parallel,
        "exported cache bytes depend on the worker count"
    );
}

/// The jobs-invariance contract holds for every solve strategy, not just
/// the default: a cut-generation precompute over a spanner-sparsified
/// constraint set walks the same donor-first schedule, shares one
/// per-level spanner built from the donor geometry, and lands every
/// sibling solve on the same fixed point — so `--jobs 1` and `--jobs 4`
/// still export byte-identical bundles.
#[test]
fn cutgen_spanner_bundle_bytes_are_independent_of_jobs() {
    let dataset = city();
    let export = |jobs: usize| {
        let prior = GridPrior::from_dataset(&dataset, 8);
        let opts = OptOptions {
            constraints: ConstraintSet::Spanner { dilation: 1.2 },
            ..OptOptions::default()
        };
        assert!(opts.cutgen.enabled, "cut generation is the default");
        let msm = MsmMechanism::builder(dataset.domain(), prior)
            .epsilon(0.8)
            .granularity(2)
            .opt_options(opts)
            .build()
            .expect("valid configuration");
        let nodes = msm.precompute_jobs(100_000, jobs).expect("precompute");
        assert!(nodes >= 1, "precompute solved nothing at jobs={jobs}");
        let stats = msm.level_solve_stats();
        assert!(
            stats.iter().any(|(_, s)| s.rows_total > 0),
            "per-level solve stats were never recorded"
        );
        let mut blob = Vec::new();
        msm.export_cache(&mut blob).expect("export");
        blob
    };
    let sequential = export(1);
    let parallel = export(4);
    assert_eq!(
        sequential, parallel,
        "cutgen+spanner cache bytes depend on the worker count"
    );
}

/// Cross-mechanism: interleaving two mechanisms on one RNG stream is still
/// reproducible (the stream position, not the mechanism, owns determinism).
#[test]
fn interleaved_mechanisms_share_a_deterministic_stream() {
    let pl = PlanarLaplace::new(0.5);
    let dataset = city();
    let prior = GridPrior::from_dataset(&dataset, 4);
    let grid = Grid::new(dataset.domain(), 4);
    let opt =
        OptimalMechanism::on_grid(0.6, &grid, &prior, QualityMetric::Euclidean).expect("feasible");
    let run = || {
        let mut rng = SeededRng::from_seed(31337);
        let mut out = Vec::new();
        for i in 0..40 {
            let x = Point::new((i % 19) as f64 + 0.1, (i % 11) as f64 + 0.9);
            out.push(pl.report(x, &mut rng));
            out.push(opt.report(x, &mut rng));
        }
        out
    };
    let (a, b) = (run(), run());
    for (p, q) in a.iter().zip(&b) {
        assert!(p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits());
    }
}

/// Golden outputs recorded from the seed (pre-flattening) sampling path,
/// before admission-built alias tables and the fused descent existed.
/// Bit patterns of `Point { x, y }` per query; the flattening must
/// reproduce them exactly, fused or not.
mod goldens {
    /// uniform8 prior, g=2, FixedHeight(2), eps 0.8, seed 0xD00D,
    /// inputs ((i%8)+0.3, (i%7)+0.6).
    pub const A: [(u64, u64); 8] = [
        (0x4008000000000000, 0x3FF0000000000000),
        (0x401C000000000000, 0x3FF0000000000000),
        (0x401C000000000000, 0x3FF0000000000000),
        (0x3FF0000000000000, 0x3FF0000000000000),
        (0x401C000000000000, 0x4014000000000000),
        (0x4014000000000000, 0x4014000000000000),
        (0x4014000000000000, 0x4014000000000000),
        (0x4014000000000000, 0x3FF0000000000000),
    ];
    /// uniform8 prior, g=2, FixedHeight(3), eps 0.9, seed 0xBEEF,
    /// inputs ((i%5)+1.2, (i%3)+2.4).
    pub const B: [(u64, u64); 8] = [
        (0x401A000000000000, 0x3FF8000000000000),
        (0x4012000000000000, 0x3FE0000000000000),
        (0x401A000000000000, 0x4004000000000000),
        (0x401E000000000000, 0x4004000000000000),
        (0x4012000000000000, 0x3FF8000000000000),
        (0x4004000000000000, 0x4012000000000000),
        (0x4004000000000000, 0x400C000000000000),
        (0x4004000000000000, 0x401E000000000000),
    ];
    /// vegas_like(5000, 500) ladder, eps 0.8 g 2, lp.refactor.singular
    /// armed times(4), seed 0xFA17_5EED, first 8 checkins. The third
    /// element is the serving tier index (mid-descent resumption: the
    /// first four queries degrade to tier 1, then tier 0 recovers).
    pub const C: [(u64, u64, usize); 8] = [
        (0x4029000000000000, 0x401E000000000000, 1),
        (0x4029000000000000, 0x4029000000000000, 1),
        (0x401E000000000000, 0x4029000000000000, 1),
        (0x4029000000000000, 0x401E000000000000, 1),
        (0x4029000000000000, 0x401E000000000000, 0),
        (0x401E000000000000, 0x401E000000000000, 0),
        (0x4029000000000000, 0x401E000000000000, 0),
        (0x4029000000000000, 0x401E000000000000, 0),
    ];
}

/// The flattened alias path reproduces the pre-flattening golden stream
/// bit for bit — through the per-level cache path (tables per channel)
/// AND the fused single-walk tree, at heights 2 and 3.
#[test]
fn flattened_sampling_matches_pre_flattening_goldens() {
    let build = |eps: f64, h: u32| {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        MsmMechanism::builder(domain, prior)
            .epsilon(eps)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(h))
            .build()
            .expect("valid configuration")
    };
    for fused in [false, true] {
        let msm_a = build(0.8, 2);
        let msm_b = build(0.9, 3);
        if fused {
            msm_a.flatten().expect("flatten A");
            msm_b.flatten().expect("flatten B");
        }
        let mut rng = SeededRng::from_seed(0xD00D);
        for (i, &(gx, gy)) in goldens::A.iter().enumerate() {
            let x = Point::new((i % 8) as f64 + 0.3, (i % 7) as f64 + 0.6);
            let z = msm_a.report(x, &mut rng);
            assert_eq!(z.x.to_bits(), gx, "A[{i}].x fused={fused}");
            assert_eq!(z.y.to_bits(), gy, "A[{i}].y fused={fused}");
        }
        let mut rng = SeededRng::from_seed(0xBEEF);
        for (i, &(gx, gy)) in goldens::B.iter().enumerate() {
            let x = Point::new((i % 5) as f64 + 1.2, (i % 3) as f64 + 2.4);
            let z = msm_b.report(x, &mut rng);
            assert_eq!(z.x.to_bits(), gx, "B[{i}].x fused={fused}");
            assert_eq!(z.y.to_bits(), gy, "B[{i}].y fused={fused}");
        }
    }
}

/// Mid-descent resumption under an armed count-based failpoint still
/// reproduces the pre-flattening goldens: the degraded ladder resumes
/// from the reached cell and serves the exact recorded points and tiers.
#[test]
fn degraded_ladder_matches_pre_flattening_goldens() {
    use geoind_testkit::failpoint::{FailSpec, Session};
    let dataset = city();
    let prior = GridPrior::from_dataset(&dataset, 8);
    let ladder = ResilientMechanism::from_builder(
        MsmMechanism::builder(dataset.domain(), prior)
            .epsilon(0.8)
            .granularity(2),
    )
    .expect("valid configuration");
    let mut fp = Session::new();
    fp.arm("lp.refactor.singular", FailSpec::times(4));
    let mut rng = SeededRng::from_seed(0xFA17_5EED);
    let xs: Vec<Point> = dataset
        .checkins()
        .iter()
        .take(8)
        .map(|c| c.location)
        .collect();
    for (i, (&x, &(gx, gy, gt))) in xs.iter().zip(goldens::C.iter()).enumerate() {
        let (z, tier) = ladder.report_with_tier(x, &mut rng);
        assert_eq!(tier.index(), gt, "C[{i}] tier");
        assert_eq!(z.x.to_bits(), gx, "C[{i}].x");
        assert_eq!(z.y.to_bits(), gy, "C[{i}].y");
    }
}

/// `report_many` is sequential serving with the fused tree resolved once:
/// a batch of one is bit-identical to a single `report_with_tier` call,
/// and a longer batch is bit-identical to the same calls in a loop.
#[test]
fn report_many_batch_of_one_matches_single_call() {
    let dataset = city();
    let prior = GridPrior::from_dataset(&dataset, 8);
    let ladder = ResilientMechanism::from_builder(
        MsmMechanism::builder(dataset.domain(), prior)
            .epsilon(0.8)
            .granularity(2),
    )
    .expect("valid configuration");
    ladder.flatten().expect("flatten");
    let xs: Vec<Point> = dataset
        .checkins()
        .iter()
        .take(40)
        .map(|c| c.location)
        .collect();
    // Batch of one per call vs single calls.
    let mut rng_batch = SeededRng::from_seed(0xB1_0F_01);
    let mut rng_single = SeededRng::from_seed(0xB1_0F_01);
    for (i, &x) in xs.iter().enumerate() {
        let batch = ladder.report_many(std::slice::from_ref(&x), &mut rng_batch);
        let (z, tier) = ladder.report_with_tier(x, &mut rng_single);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].1, tier, "query {i}");
        assert_eq!(batch[0].0.x.to_bits(), z.x.to_bits(), "query {i}");
        assert_eq!(batch[0].0.y.to_bits(), z.y.to_bits(), "query {i}");
    }
    // One big batch vs the same stream sequentially.
    let mut rng_batch = SeededRng::from_seed(0xB1_0F_40);
    let mut rng_single = SeededRng::from_seed(0xB1_0F_40);
    let batch = ladder.report_many(&xs, &mut rng_batch);
    for (i, &x) in xs.iter().enumerate() {
        let (z, tier) = ladder.report_with_tier(x, &mut rng_single);
        assert_eq!(batch[i].1, tier, "query {i}");
        assert_eq!(batch[i].0.x.to_bits(), z.x.to_bits(), "query {i}");
        assert_eq!(batch[i].0.y.to_bits(), z.y.to_bits(), "query {i}");
    }
}
