//! Seeded-determinism regression guard for the RNG swap: a fixed seed must
//! yield **bit-identical** outputs across two independent runs of every
//! sampling path (planar Laplace, the multi-step mechanism, alias tables).
//! This is the contract that makes every experiment in `EXPERIMENTS.md`
//! reproducible from a single recorded `u64`.

use geoind::math::sampling::AliasTable;
use geoind::prelude::*;
use geoind_rng::SeededRng;

fn city() -> Dataset {
    SyntheticCity::vegas_like().generate_with_size(5_000, 500)
}

/// Two fresh RNGs with the same seed drive `PlanarLaplace::report` to
/// bit-identical reported locations.
#[test]
fn planar_laplace_report_is_bit_deterministic() {
    let pl = PlanarLaplace::new(0.7);
    let xs: Vec<Point> = (0..100)
        .map(|i| Point::new((i % 17) as f64 + 0.5, (i % 13) as f64 + 0.25))
        .collect();
    let run = || {
        let mut rng = SeededRng::from_seed(0xDE7E_12F1);
        xs.iter()
            .map(|&x| pl.report(x, &mut rng))
            .collect::<Vec<Point>>()
    };
    let (a, b) = (run(), run());
    for (p, q) in a.iter().zip(&b) {
        assert!(
            p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits(),
            "PL reports diverged: {p:?} vs {q:?}"
        );
    }
}

/// Two fresh RNGs with the same seed drive `Msm::report` to bit-identical
/// outputs — covering the whole hierarchical descent (per-level channel
/// sampling) and the channel cache, whose state must not leak into the
/// sampled stream.
#[test]
fn msm_report_is_bit_deterministic() {
    let dataset = city();
    let prior = GridPrior::from_dataset(&dataset, 8);
    let msm = MsmMechanism::builder(dataset.domain(), prior)
        .epsilon(0.8)
        .granularity(2)
        .build()
        .expect("valid configuration");
    let xs: Vec<Point> = dataset
        .checkins()
        .iter()
        .take(60)
        .map(|c| c.location)
        .collect();
    let run = || {
        let mut rng = SeededRng::from_seed(0x5EED_CAFE);
        xs.iter()
            .map(|&x| msm.report(x, &mut rng))
            .collect::<Vec<Point>>()
    };
    // Second run reuses the warm cache; outputs must not change.
    let (a, b) = (run(), run());
    for (i, (p, q)) in a.iter().zip(&b).enumerate() {
        assert!(
            p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits(),
            "MSM reports diverged at query {i}: {p:?} vs {q:?}"
        );
    }
}

/// Alias-table sampling is a pure function of (weights, seed).
#[test]
fn alias_sampling_is_bit_deterministic() {
    let weights: Vec<f64> = (1..=64).map(|i| (i as f64).sqrt()).collect();
    let table = AliasTable::new(&weights);
    let run = || {
        let mut rng = SeededRng::from_seed(0xA_11A5);
        (0..10_000)
            .map(|_| table.sample(&mut rng))
            .collect::<Vec<usize>>()
    };
    assert_eq!(
        run(),
        run(),
        "alias sampling diverged across identical seeds"
    );
}

/// Fault-injected runs are as reproducible as healthy ones: a fixed seed
/// plus a fixed *count-based* fault schedule yields bit-identical outputs
/// through the degradation ladder — including which tier served each
/// query. This is what makes a fault reported from the field replayable.
#[test]
fn degraded_ladder_is_bit_deterministic_under_armed_faults() {
    use geoind_testkit::failpoint::{FailSpec, Session};

    let dataset = city();
    let xs: Vec<Point> = dataset
        .checkins()
        .iter()
        .take(30)
        .map(|c| c.location)
        .collect();
    let run = || {
        // A fresh mechanism (cold channel cache) and a freshly armed spec
        // each run: the schedule is part of the replayed configuration.
        let prior = GridPrior::from_dataset(&dataset, 8);
        let ladder = ResilientMechanism::from_builder(
            MsmMechanism::builder(dataset.domain(), prior)
                .epsilon(0.8)
                .granularity(2),
        )
        .expect("valid configuration");
        let mut fp = Session::new();
        fp.arm("lp.refactor.singular", FailSpec::times(4));
        let mut rng = SeededRng::from_seed(0xFA17_5EED);
        xs.iter()
            .map(|&x| ladder.report_with_tier(x, &mut rng))
            .collect::<Vec<(Point, Tier)>>()
    };
    let (a, b) = (run(), run());
    assert!(
        a.iter().any(|&(_, t)| t != Tier::Optimal),
        "fault schedule never degraded — the test is vacuous"
    );
    assert!(
        a.iter().any(|&(_, t)| t == Tier::Optimal),
        "every query degraded — recovery path untested"
    );
    for (i, ((p, tp), (q, tq))) in a.iter().zip(&b).enumerate() {
        assert_eq!(tp, tq, "serving tier diverged at query {i}");
        assert!(
            p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits(),
            "fault-injected reports diverged at query {i}: {p:?} vs {q:?}"
        );
    }
}

/// The parallel precompute fan-out must be invisible in the exported
/// bundle: `--jobs 1` and `--jobs 4` walk the same donor-first warm-start
/// schedule (the donor of each level is the lowest cell index, never
/// "whichever worker finished first"), so the exported cache bytes are
/// identical at any worker count. This is the contract that lets CI cmp
/// two bundles and lets operators precompute on any machine.
#[test]
fn precompute_bundle_bytes_are_independent_of_jobs() {
    let dataset = city();
    let export = |jobs: usize| {
        let prior = GridPrior::from_dataset(&dataset, 8);
        let msm = MsmMechanism::builder(dataset.domain(), prior)
            .epsilon(0.8)
            .granularity(2)
            .build()
            .expect("valid configuration");
        let nodes = msm.precompute_jobs(100_000, jobs).expect("precompute");
        assert!(nodes >= 1, "precompute solved nothing at jobs={jobs}");
        let mut blob = Vec::new();
        msm.export_cache(&mut blob).expect("export");
        blob
    };
    let sequential = export(1);
    let parallel = export(4);
    assert_eq!(
        sequential, parallel,
        "exported cache bytes depend on the worker count"
    );
}

/// Cross-mechanism: interleaving two mechanisms on one RNG stream is still
/// reproducible (the stream position, not the mechanism, owns determinism).
#[test]
fn interleaved_mechanisms_share_a_deterministic_stream() {
    let pl = PlanarLaplace::new(0.5);
    let dataset = city();
    let prior = GridPrior::from_dataset(&dataset, 4);
    let grid = Grid::new(dataset.domain(), 4);
    let opt =
        OptimalMechanism::on_grid(0.6, &grid, &prior, QualityMetric::Euclidean).expect("feasible");
    let run = || {
        let mut rng = SeededRng::from_seed(31337);
        let mut out = Vec::new();
        for i in 0..40 {
            let x = Point::new((i % 19) as f64 + 0.1, (i % 11) as f64 + 0.9);
            out.push(pl.report(x, &mut rng));
            out.push(opt.report(x, &mut rng));
        }
        out
    };
    let (a, b) = (run(), run());
    for (p, q) in a.iter().zip(&b) {
        assert!(p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits());
    }
}
