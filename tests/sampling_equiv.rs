//! Statistical equivalence of the flattened sampling hot path.
//!
//! The admission gate flattens every certified channel into contiguous
//! alias tables (`FlatChannel`), and the MSM serving path fuses them into
//! a single table walk. This suite proves the flattening changed the
//! *speed* of sampling and nothing else, two ways:
//!
//! * **exactly** — the alias table's implied per-row marginal must
//!   reconstruct the certified channel row within the same strict
//!   tolerance the certifier itself applies, with no sampling at all; and
//! * **statistically** — large seeded draws through the alias path, the
//!   inverse-CDF path, the fused MSM walk, and the planar-Laplace tiers
//!   must all pass a chi-square goodness-of-fit test against the exact
//!   distributions. Every test is seeded, so the chi-square statistics
//!   are deterministic: the pinned critical values can never flake.

use geoind::mechanisms::alloc::AllocationStrategy;
use geoind::mechanisms::certify::{strict_tolerance, Verdict};
use geoind::prelude::*;

const N: usize = 200_000;

/// Upper 0.999 chi-square quantile via the Wilson–Hilferty cube
/// approximation — accurate to a few percent for the dfs used here, and
/// only a *bound* anyway: the statistics are deterministic (seeded), so
/// the margin absorbs the approximation error permanently.
fn chi2_crit(df: usize) -> f64 {
    let d = df as f64;
    let z = 3.090_232; // Φ⁻¹(0.999)
    d * (1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt()).powi(3)
}

/// Chi-square statistic of observed counts against expected probabilities,
/// pooling categories with tiny expectation into one cell (the classic
/// validity rule). Returns `(statistic, degrees_of_freedom)`.
fn chi_square(counts: &[u64], probs: &[f64], n: usize) -> (f64, usize) {
    assert_eq!(counts.len(), probs.len());
    let mut stat = 0.0;
    let mut cells = 0usize;
    let (mut pooled_obs, mut pooled_exp) = (0.0f64, 0.0f64);
    for (&c, &p) in counts.iter().zip(probs) {
        let expected = p * n as f64;
        if expected < 5.0 {
            pooled_obs += c as f64;
            pooled_exp += expected;
        } else {
            let d = c as f64 - expected;
            stat += d * d / expected;
            cells += 1;
        }
    }
    if pooled_exp >= 5.0 {
        let d = pooled_obs - pooled_exp;
        stat += d * d / pooled_exp;
        cells += 1;
    }
    assert!(cells >= 2, "distribution too degenerate to test");
    (stat, cells - 1)
}

/// The (ε, grid, prior) matrix the suite sweeps. Both a flat prior and a
/// heavily skewed dataset prior, across grid sizes and budgets.
fn configs() -> Vec<(f64, u32, GridPrior)> {
    let domain = BBox::square(16.0);
    let dataset = SyntheticCity::vegas_like().generate_with_size(8_000, 800);
    vec![
        (0.5, 3, GridPrior::uniform(domain, 3)),
        (1.0, 4, GridPrior::uniform(domain, 4)),
        (0.8, 4, GridPrior::from_dataset(&dataset, 4)),
        (1.4, 5, GridPrior::from_dataset(&dataset, 5)),
    ]
}

#[test]
fn alias_row_marginals_reconstruct_certified_rows_exactly() {
    // No sampling at all: the flattened table's implied marginal must
    // match the certified row within the certifier's own strict
    // tolerance. This is the "exact" half of the equivalence claim.
    for (eps, g, prior) in configs() {
        let grid = Grid::new(BBox::square(16.0), g);
        let opt = OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean)
            .expect("feasible");
        let channel = opt.channel();
        let (n, m) = (channel.num_inputs(), channel.num_outputs());
        let cert = channel
            .certificate()
            .expect("admitted channels carry a certificate");
        assert!(
            matches!(cert.verdict, Verdict::Certified | Verdict::Repaired),
            "eps={eps} g={g}: certificate verdict {:?}",
            cert.verdict
        );
        let flat = channel
            .flat()
            .expect("admitted channels carry flattened alias tables");
        let tol = strict_tolerance(n, m);
        for r in 0..n {
            let marginal = flat.row_marginal(r);
            for (z, (&got, &want)) in marginal.iter().zip(channel.row(r)).enumerate() {
                assert!(
                    (got - want).abs() <= tol,
                    "eps={eps} g={g} row {r} cat {z}: |{got} - {want}| > {tol}"
                );
            }
        }
    }
}

#[test]
fn alias_and_cdf_draws_both_fit_the_certified_rows() {
    // The statistical half, on the channel itself: N seeded draws through
    // the flattened alias path AND through the inverse-CDF fallback must
    // both pass a chi-square test against the certified row.
    for (cfg, (eps, g, prior)) in configs().into_iter().enumerate() {
        let grid = Grid::new(BBox::square(16.0), g);
        let opt = OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean)
            .expect("feasible");
        let channel = opt.channel();
        let m = channel.num_outputs();
        // One interior row and one corner row per config.
        for (which, row) in [(0usize, 0usize), (1, m / 2 + 1)] {
            let mut rng = SeededRng::from_seed(0x5A_17 + 1_000 * cfg as u64 + which as u64);
            let mut alias_counts = vec![0u64; m];
            let mut cdf_counts = vec![0u64; m];
            for _ in 0..N {
                alias_counts[channel.sample(row, &mut rng)] += 1;
                cdf_counts[channel.sample_cdf(row, &mut rng)] += 1;
            }
            for (path, counts) in [("alias", &alias_counts), ("cdf", &cdf_counts)] {
                let (stat, df) = chi_square(counts, channel.row(row), N);
                let crit = chi2_crit(df);
                assert!(
                    stat < crit,
                    "cfg {cfg} row {row} {path} path: chi2 {stat:.2} >= {crit:.2} (df {df})"
                );
            }
        }
    }
}

#[test]
fn fused_msm_walk_fits_the_exact_output_distribution() {
    // End to end through the tentpole: the fused single-table walk over
    // the whole hierarchy must reproduce the mechanism's exact output
    // distribution (the product of its per-level certified channels).
    let dataset = SyntheticCity::vegas_like().generate_with_size(8_000, 800);
    let flat_domain = BBox::square(16.0);
    for (seed, domain, prior) in [
        (
            0xF05E_0001u64,
            flat_domain,
            GridPrior::uniform(flat_domain, 16),
        ),
        (
            0xF05E_0002,
            dataset.domain(),
            GridPrior::from_dataset(&dataset, 16),
        ),
    ] {
        let msm = MsmMechanism::builder(domain, prior)
            .epsilon(0.9)
            .granularity(4)
            .strategy(AllocationStrategy::FixedHeight(2))
            .build()
            .expect("valid configuration");
        msm.flatten().expect("flatten");
        let leaf = msm.leaf_grid();
        let centers = leaf.centers();
        let side = domain.side();
        let x = Point::new(domain.min.x + 0.33 * side, domain.min.y + 0.57 * side);
        let exact = msm.exact_output_distribution(x);
        let mut rng = SeededRng::from_seed(seed);
        let mut counts = vec![0u64; centers.len()];
        for _ in 0..N {
            let z = msm.report(x, &mut rng);
            let cell = leaf.cell_of(z);
            counts[cell] += 1;
        }
        let (stat, df) = chi_square(&counts, &exact, N);
        let crit = chi2_crit(df);
        assert!(
            stat < crit,
            "seed {seed:#x}: chi2 {stat:.2} >= {crit:.2} (df {df})"
        );
    }
}

#[test]
fn laplace_tiers_radius_distribution_fits_the_analytic_cdf() {
    // The degraded tiers sample their radius through the precomputed
    // RadialSampler (guess-table Lambert-W). Push each sampled radius
    // through the analytic CDF C(r) = 1 − (1 + εr)e^{−εr}: the result
    // must be uniform, checked by an equal-mass chi-square.
    for (tier_seed, eps) in [(0x7E51u64, 0.4), (0x7E52, 0.8), (0x7E53, 1.6)] {
        let pl = PlanarLaplace::new(eps);
        let x = Point::new(0.0, 0.0);
        let mut rng = SeededRng::from_seed(tier_seed);
        const K: usize = 64;
        let mut counts = vec![0u64; K];
        for _ in 0..N {
            let z = pl.report_continuous(x, &mut rng);
            let r = x.dist(z);
            let u = 1.0 - (1.0 + eps * r) * (-eps * r).exp();
            counts[((u * K as f64) as usize).min(K - 1)] += 1;
        }
        let probs = vec![1.0 / K as f64; K];
        let (stat, df) = chi_square(&counts, &probs, N);
        let crit = chi2_crit(df);
        assert!(
            stat < crit,
            "eps={eps}: chi2 {stat:.2} >= {crit:.2} (df {df})"
        );
    }
}
