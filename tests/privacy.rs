//! Privacy-focused integration tests: the GeoInd guarantees, checked on the
//! channels and end-to-end distributions the mechanisms actually produce.

#![allow(clippy::needless_range_loop)]

use geoind::mechanisms::adversary::BayesianAdversary;
use geoind::mechanisms::alloc::AllocationStrategy;
use geoind::prelude::*;
use geoind_testkit::gens::{f64_range, filter, vec_of};
use geoind_testkit::{check, ensure, Config};

fn city() -> Dataset {
    SyntheticCity::vegas_like().generate_with_size(15_000, 1_500)
}

#[test]
fn opt_channel_satisfies_geoind_on_real_prior() {
    let dataset = city();
    let g = 4;
    let grid = Grid::new(dataset.domain(), g);
    let prior = GridPrior::from_dataset(&dataset, g);
    for eps in [0.2, 0.5, 1.0] {
        let opt = OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean)
            .expect("feasible");
        let v = opt.channel().geoind_violation(eps);
        assert!(v <= 1e-6, "eps={eps}: violation {v}");
    }
}

#[test]
fn msm_end_to_end_respects_the_composition_bound() {
    let dataset = city();
    let prior = GridPrior::from_dataset(&dataset, 8);
    let msm = MsmMechanism::builder(dataset.domain(), prior)
        .epsilon(0.7)
        .granularity(2)
        .strategy(AllocationStrategy::FixedHeight(2))
        .build()
        .expect("valid configuration");
    let leaf = msm.leaf_grid();
    let points = leaf.centers();
    let dists: Vec<Vec<f64>> = points
        .iter()
        .map(|x| msm.exact_output_distribution(*x))
        .collect();
    for (i, x) in points.iter().enumerate() {
        for (j, xp) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let bound = msm.composition_bound(*x, *xp).exp();
            for z in 0..points.len() {
                if dists[j][z] > 1e-12 {
                    let ratio = dists[i][z] / dists[j][z];
                    assert!(
                        ratio <= bound * (1.0 + 1e-6),
                        "triple ({i},{j},{z}): {ratio} > {bound}"
                    );
                }
            }
        }
    }
}

#[test]
fn adversary_gain_is_capped_by_the_geoind_factor() {
    // For any output z and any pair (x, x'), posterior odds change by at
    // most e^{eps d(x,x')} relative to prior odds — the semantic reading of
    // Eq. (1), tested against the Bayes attack implementation itself.
    let dataset = city();
    let g = 3;
    let grid = Grid::new(dataset.domain(), g);
    let prior = GridPrior::from_dataset(&dataset, g);
    let eps = 0.4;
    let opt =
        OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean).expect("feasible");
    let adv = BayesianAdversary::new(prior.probs().to_vec());
    let channel = opt.channel();
    for z in 0..channel.num_outputs() {
        let Some(post) = adv.posterior(channel, z) else {
            continue;
        };
        for x in 0..channel.num_inputs() {
            for xp in 0..channel.num_inputs() {
                if x == xp || adv.prior()[x] == 0.0 || adv.prior()[xp] == 0.0 {
                    continue;
                }
                if post[xp] <= 1e-12 {
                    continue;
                }
                let posterior_odds = post[x] / post[xp];
                let prior_odds = adv.prior()[x] / adv.prior()[xp];
                let bound = (eps * channel.inputs()[x].dist(channel.inputs()[xp])).exp();
                assert!(
                    posterior_odds <= prior_odds * bound * (1.0 + 1e-6),
                    "odds gain {} exceeds bound {bound} at (x={x}, x'={xp}, z={z})",
                    posterior_odds / prior_odds
                );
            }
        }
    }
}

/// OPT channels satisfy the GeoInd constraints for randomized priors
/// and budgets (small grids to keep the LP tiny).
#[test]
fn opt_geoind_under_random_priors() {
    check(
        "opt_geoind_under_random_priors",
        Config::cases(16),
        &(
            filter(vec_of(f64_range(0.0, 10.0), 9, 9), |w: &Vec<f64>| {
                w.iter().sum::<f64>() > 0.0
            }),
            f64_range(0.1, 1.5),
        ),
        |(weights, eps)| {
            let eps = *eps;
            let domain = BBox::square(12.0);
            let grid = Grid::new(domain, 3);
            let prior = GridPrior::from_weights(grid.clone(), weights.clone());
            let opt = OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean)
                .expect("feasible");
            ensure!(opt.channel().geoind_violation(eps) <= 1e-6);
            // Rows are distributions.
            for x in 0..9 {
                let s: f64 = opt.channel().row(x).iter().sum();
                ensure!((s - 1.0).abs() < 1e-9);
            }
            Ok(())
        },
    );
}

/// The planar-Laplace sampled radius follows the analytic CDF.
#[test]
fn planar_laplace_radius_matches_cdf() {
    check(
        "planar_laplace_radius_matches_cdf",
        Config::cases(256),
        &(f64_range(0.2, 2.0), f64_range(0.01, 0.99)),
        |&(eps, p)| {
            let r = geoind::math::sampling::planar_laplace_inverse_cdf(eps, p);
            let cdf = 1.0 - (1.0 + eps * r) * (-eps * r).exp();
            ensure!((cdf - p).abs() < 1e-9);
            Ok(())
        },
    );
}
