//! Cross-crate integration: dataset → prior → mechanisms → evaluation.

use geoind::mechanisms::Mechanism;
use geoind::prelude::*;
use geoind_rng::SeededRng;

fn small_city() -> Dataset {
    SyntheticCity::austin_like().generate_with_size(20_000, 2_000)
}

#[test]
fn full_pipeline_produces_in_domain_reports() {
    let dataset = small_city();
    let domain = dataset.domain();
    let prior = GridPrior::from_dataset(&dataset, 8);
    let msm = MsmMechanism::builder(domain, prior)
        .epsilon(0.5)
        .granularity(2)
        .build()
        .expect("valid configuration");
    let mut rng = SeededRng::from_seed(5);
    for c in dataset.checkins().iter().take(500) {
        let z = msm.report(c.location, &mut rng);
        assert!(domain.contains_closed(z), "{z:?} escaped the domain");
    }
}

#[test]
fn msm_beats_planar_laplace_at_tight_budget() {
    // The paper's headline comparison (Fig. 6) at eps = 0.1.
    let dataset = small_city();
    let domain = dataset.domain();
    let evaluator = Evaluator::sample_from(&dataset, 600, 11);
    let metric = QualityMetric::Euclidean;

    let prior = GridPrior::from_dataset(&dataset, 16);
    let msm = MsmMechanism::builder(domain, prior)
        .epsilon(0.1)
        .granularity(4)
        .build()
        .expect("valid configuration");
    let pl =
        PlanarLaplace::new(0.1).with_grid_remap(Grid::new(domain, msm.effective_granularity()));

    let msm_loss = evaluator.measure(&msm, metric, 1).mean_loss;
    let pl_loss = evaluator.measure(&pl, metric, 1).mean_loss;
    assert!(
        msm_loss < 0.75 * pl_loss,
        "expected a clear MSM win at eps=0.1: msm {msm_loss} vs pl {pl_loss}"
    );
}

#[test]
fn opt_is_the_utility_floor_among_the_mechanisms() {
    // On identical logical locations and prior, OPT's expected loss is the
    // optimum; MSM (same total budget) cannot beat it... except through its
    // weaker effective constraint set — so we only assert OPT beats PL and
    // stays within a sane band of MSM.
    let dataset = small_city();
    let domain = dataset.domain();
    let evaluator = Evaluator::sample_from(&dataset, 600, 13);
    let metric = QualityMetric::Euclidean;
    let eps = 0.5;
    let g = 4;

    let grid = Grid::new(domain, g);
    let prior_g = GridPrior::from_dataset(&dataset, g);
    let opt = OptimalMechanism::on_grid(eps, &grid, &prior_g, metric).expect("feasible");
    let pl = PlanarLaplace::new(eps).with_grid_remap(grid.clone());

    let opt_loss = evaluator.measure(&opt, metric, 2).mean_loss;
    let pl_loss = evaluator.measure(&pl, metric, 2).mean_loss;
    assert!(opt_loss < pl_loss, "OPT {opt_loss} must beat PL {pl_loss}");
}

#[test]
fn budgets_compose_to_epsilon_across_strategies() {
    let dataset = small_city();
    let prior = GridPrior::from_dataset(&dataset, 16);
    for (eps, g) in [(0.1, 2u32), (0.5, 4), (0.9, 3)] {
        let msm = MsmMechanism::builder(dataset.domain(), prior.clone())
            .epsilon(eps)
            .granularity(g)
            .build()
            .expect("valid configuration");
        assert!(
            (msm.budgets().total() - eps).abs() < 1e-9,
            "budget leak at eps={eps}, g={g}"
        );
    }
}

#[test]
fn mechanisms_are_shareable_across_threads() {
    // A deployed client sanitizes concurrently; MsmMechanism is Sync thanks
    // to the lock-guarded channel cache.
    let dataset = small_city();
    let prior = GridPrior::from_dataset(&dataset, 8);
    let msm = MsmMechanism::builder(dataset.domain(), prior)
        .epsilon(0.6)
        .granularity(2)
        .build()
        .expect("valid configuration");
    let msm = std::sync::Arc::new(msm);
    let domain = dataset.domain();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let msm = std::sync::Arc::clone(&msm);
            std::thread::spawn(move || {
                let mut rng = SeededRng::from_seed(t);
                for i in 0..100 {
                    let x = Point::new((i % 19) as f64 + 0.5, (i % 17) as f64 + 0.5);
                    let z = msm.report(x, &mut rng);
                    assert!(domain.contains_closed(z));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread panicked");
    }
}

#[test]
fn evaluator_reports_are_consistent() {
    let dataset = small_city();
    let evaluator = Evaluator::sample_from(&dataset, 300, 17);
    let pl = PlanarLaplace::new(0.5);
    let r1 = evaluator.measure(&pl, QualityMetric::Euclidean, 9);
    let r2 = evaluator.measure(&pl, QualityMetric::Euclidean, 9);
    // Same seed, same workload => identical numbers.
    assert_eq!(r1.mean_loss, r2.mean_loss);
    assert_eq!(r1.queries, 300);
    assert!(r1.max_loss >= r1.mean_loss);
}
