//! Drift guard: the canonical failpoint site list and the `hit("…")`
//! call sites in the source tree must stay in lockstep, both directions.
//!
//! * a site named at a call site but missing from
//!   [`failpoint::SITES`] would be invisible to the sweep suites — a
//!   fault path no test ever arms;
//! * a `SITES` entry with no call site is dead weight that makes the
//!   sweeps assert on nothing.
//!
//! The scan is textual on purpose (no proc macros, no build scripts):
//! every injection point in this workspace is written literally as
//! `failpoint::hit("<site>")`, and this test is what keeps that
//! convention honest.

use geoind_testkit::failpoint;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Recursively collect `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extract every `failpoint::hit("<site>")` literal from `text`.
fn hit_sites(text: &str) -> Vec<String> {
    const NEEDLE: &str = "failpoint::hit(\"";
    let mut found = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find(NEEDLE) {
        rest = &rest[at + NEEDLE.len()..];
        if let Some(end) = rest.find('"') {
            found.push(rest[..end].to_string());
            rest = &rest[end..];
        }
    }
    found
}

#[test]
fn failpoint_sites_and_call_sites_agree_both_ways() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    // Production source only: the `src/` trees of every crate plus the
    // facade. Test code may arm sites but never defines new ones, and the
    // testkit's own module documents the API with example site names.
    let mut files = Vec::new();
    rust_files(&root.join("src"), &mut files);
    let crates = fs::read_dir(root.join("crates")).expect("crates/ exists");
    for entry in crates.flatten() {
        let src = entry.path().join("src");
        if entry.file_name() != "testkit" && src.is_dir() {
            rust_files(&src, &mut files);
        }
    }
    assert!(
        files.len() >= 10,
        "source scan found too few files — wrong root?"
    );

    let mut used: BTreeSet<String> = BTreeSet::new();
    for file in &files {
        let text = fs::read_to_string(file).expect("source file is readable");
        for site in hit_sites(&text) {
            assert!(
                failpoint::SITES.contains(&site.as_str()),
                "{}: failpoint::hit(\"{site}\") is not in the canonical \
                 failpoint::SITES list — add it there so the fault sweeps cover it",
                file.display()
            );
            used.insert(site);
        }
    }

    let unused: Vec<&str> = failpoint::SITES
        .iter()
        .copied()
        .filter(|s| !used.contains(*s))
        .collect();
    assert!(
        unused.is_empty(),
        "SITES entries with no failpoint::hit call site in any crate: {unused:?} — \
         remove them or wire them in"
    );
}
