//! Integration tests for the extension features: trajectories, remapping,
//! offline channel distribution, and the black-box auditor — exercised
//! together through the public facade.

use geoind::mechanisms::audit::{audit_geoind, AuditConfig};
use geoind::mechanisms::remap::{empirical_channel, RemappedMechanism};
use geoind::mechanisms::trajectory::TrajectoryProtector;
use geoind::mechanisms::Mechanism;
use geoind::prelude::*;
use geoind_rng::SeededRng;

fn city() -> Dataset {
    SyntheticCity::austin_like().generate_with_size(15_000, 1_500)
}

#[test]
fn offline_provisioning_flow_end_to_end() {
    // Provisioner precomputes and exports; device imports and serves
    // queries with zero LP solves (verified by the cache hit count).
    let dataset = city();
    let build = || {
        MsmMechanism::builder(dataset.domain(), GridPrior::from_dataset(&dataset, 16))
            .epsilon(0.6)
            .granularity(2)
            .build()
            .unwrap()
    };
    let provisioner = build();
    let nodes = provisioner.precompute(usize::MAX).unwrap();
    assert!(nodes >= 2);
    let mut blob = Vec::new();
    provisioner.export_cache(&mut blob).unwrap();
    // "Tens of megabytes" in the paper; kilobytes at this configuration.
    assert!(
        blob.len() < 1_000_000,
        "blob unexpectedly large: {} bytes",
        blob.len()
    );

    let device = build();
    device.import_cache(&mut blob.as_slice()).unwrap();
    assert_eq!(device.cached_channels(), nodes);
    let mut rng = SeededRng::from_seed(3);
    let z = device.report(dataset.checkins()[0].location, &mut rng);
    assert!(dataset.domain().contains_closed(z));
    // No new channels were solved to answer the query.
    assert_eq!(device.cached_channels(), nodes);
}

#[test]
fn trajectory_protection_with_msm_mechanism() {
    let dataset = city();
    let per_eps = 0.3;
    let msm = MsmMechanism::builder(dataset.domain(), GridPrior::from_dataset(&dataset, 16))
        .epsilon(per_eps)
        .granularity(4)
        .build()
        .unwrap();
    let mut protector = TrajectoryProtector::new(msm, per_eps, 0.9, 0.2).unwrap();
    let trace: Vec<Point> = (0..6).map(|i| Point::new(5.0 + i as f64, 10.0)).collect();
    let mut rng = SeededRng::from_seed(4);
    let out = protector.protect_trace(&trace, &mut rng);
    // 0.9 / 0.3 = 3 fresh releases affordable; 1-km steps defeat the
    // 200 m suppression radius, so exactly 3 succeed.
    assert_eq!(out.iter().filter(|o| o.is_some()).count(), 3);
    assert!((protector.ledger().spent() - 0.9).abs() < 1e-12);
}

#[test]
fn remapped_pl_beats_raw_pl_on_skewed_prior() {
    let dataset = city();
    let g = 4u32;
    let grid = Grid::new(dataset.domain(), g);
    let prior = GridPrior::from_dataset(&dataset, g);
    let eps = 0.25;
    let evaluator = Evaluator::sample_from(&dataset, 400, 9);
    let metric = QualityMetric::SqEuclidean;

    let pl = PlanarLaplace::new(eps).with_grid_remap(grid.clone());
    let mut rng = SeededRng::from_seed(10);
    let channel = empirical_channel(&pl, &grid.centers(), &grid.centers(), 3_000, &mut rng);
    let remapped = RemappedMechanism::new(
        PlanarLaplace::new(eps).with_grid_remap(grid.clone()),
        &channel,
        prior.probs().to_vec(),
        metric,
    )
    .unwrap();
    let raw = evaluator.measure(&pl, metric, 11).mean_loss;
    let better = evaluator.measure(&remapped, metric, 11).mean_loss;
    assert!(better < raw, "remap did not help: {better} vs {raw}");
}

#[test]
fn auditor_clears_msm_and_flags_a_leak() {
    let dataset = city();
    let eps = 0.8;
    let msm = MsmMechanism::builder(dataset.domain(), GridPrior::from_dataset(&dataset, 16))
        .epsilon(eps)
        .granularity(2)
        .build()
        .unwrap();
    // Audit against the *composition bound* for the probe pair, which is
    // MSM's actual guarantee (slightly weaker than eps*d for close pairs).
    let a = Point::new(9.0, 9.0);
    let b = Point::new(11.5, 9.0);
    let bound = msm.composition_bound(a, b);
    let effective_eps = bound / a.dist(b);
    let grid = Grid::new(dataset.domain(), 8);
    let mut rng = SeededRng::from_seed(12);
    let report = audit_geoind(
        &msm,
        effective_eps,
        &[(a, b)],
        &grid,
        AuditConfig {
            samples: 15_000,
            min_cell_count: 40,
        },
        &mut rng,
    );
    assert!(
        report.passes(0.5),
        "MSM flagged: excess {}",
        report.worst_excess()
    );

    // A deliberately broken deployment (claims eps, runs 5*eps) is caught.
    struct Mislabeled(PlanarLaplace);
    impl Mechanism for Mislabeled {
        fn report<R: geoind_rng::Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
            self.0.report(x, rng)
        }
        fn name(&self) -> String {
            "mislabeled".into()
        }
    }
    let broken = Mislabeled(PlanarLaplace::new(5.0 * eps));
    let report = audit_geoind(
        &broken,
        eps,
        &[(Point::new(7.0, 10.0), Point::new(13.0, 10.0))],
        &grid,
        AuditConfig {
            samples: 15_000,
            min_cell_count: 40,
        },
        &mut rng,
    );
    assert!(
        !report.passes(0.5),
        "broken deployment slipped through the audit"
    );
}
