//! End-to-end tests of the `geoind` CLI binary.

use std::process::Command;

fn geoind() -> Command {
    Command::new(env!("CARGO_BIN_EXE_geoind"))
}

#[test]
fn help_lists_commands() {
    let out = geoind().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "protect",
        "eval",
        "audit",
        "precompute",
        "serve",
        "loadgen",
        "doctor",
    ] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn no_command_exits_nonzero() {
    let out = geoind().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_command_reports_error() {
    let out = geoind().arg("frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn protect_km_plane_roundtrip() {
    let out = geoind()
        .args([
            "protect",
            "--x",
            "9.5",
            "--y",
            "9.0",
            "--eps",
            "0.5",
            "--g",
            "2",
            "--synthetic-size",
            "5000",
            "--seed",
            "7",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("reported (km):"));
    assert!(text.contains("loss     (km):"));
}

#[test]
fn protect_rejects_out_of_window_coordinates() {
    let out = geoind()
        .args([
            "protect",
            "--lat",
            "48.85",
            "--lon",
            "2.35",
            "--synthetic-size",
            "2000",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("outside"));
}

#[test]
fn bad_flag_value_is_a_usage_error() {
    let out = geoind()
        .args(["protect", "--eps", "not-a-number"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad number"));
}

#[test]
fn precompute_writes_a_loadable_bundle() {
    let path = std::env::temp_dir().join(format!("geoind-cli-cache-{}.bin", std::process::id()));
    let out = geoind()
        .args([
            "precompute",
            "--out",
            path.to_str().unwrap(),
            "--eps",
            "0.6",
            "--g",
            "2",
            "--synthetic-size",
            "5000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let blob = std::fs::read(&path).expect("bundle written");
    // v2 checksummed container format (see geoind_core::offline).
    assert!(blob.starts_with(b"GEOINDCH"));
    // The write is atomic (temp + rename): no temp sibling may linger.
    let tmp = format!("{}.tmp", path.display());
    assert!(
        !std::path::Path::new(&tmp).exists(),
        "export left its temp file behind"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn doctor_passes_on_a_healthy_cache_and_fails_on_a_corrupt_one() {
    let path = std::env::temp_dir().join(format!("geoind-cli-doctor-{}.bin", std::process::id()));
    let common = [
        "--eps",
        "0.6",
        "--g",
        "2",
        "--synthetic-size",
        "5000",
        "--seed",
        "7",
    ];
    let out = geoind()
        .args(["precompute", "--out", path.to_str().unwrap()])
        .args(common)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("lp residual watermark"),
        "precompute must surface the solver residuals"
    );

    // Healthy bundle, same flags: every channel re-certifies, exit 0.
    let out = geoind()
        .args(["doctor", "--cache", path.to_str().unwrap()])
        .args(common)
        .output()
        .expect("binary runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "doctor failed on a healthy cache:\nstdout: {text}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("# doctor: healthy"), "{text}");
    assert!(text.contains("quarantined=0"), "{text}");
    assert!(
        text.contains("# flat tables:"),
        "doctor must audit the alias tables against the certified matrices:\n{text}"
    );

    // Flip one payload byte: the import gate must refuse the bundle and
    // doctor must exit nonzero.
    let mut blob = std::fs::read(&path).expect("bundle written");
    let mid = blob.len() / 2;
    blob[mid] ^= 0x40;
    std::fs::write(&path, &blob).expect("rewrite bundle");
    let out = geoind()
        .args(["doctor", "--cache", path.to_str().unwrap()])
        .args(common)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "doctor must exit nonzero on a corrupt cache\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn networked_serve_reconciles_with_loadgen_over_loopback() {
    use std::io::{BufRead, BufReader, Read};

    let dir = std::env::temp_dir().join(format!("geoind-cli-wire-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let common = ["--eps", "0.4", "--g", "2", "--synthetic-size", "3000"];
    let mut server = geoind()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--shards",
            "4",
            "--cap",
            "10.0",
            "--workers",
            "2",
            "--queue",
            "16",
            "--seed",
            "7",
            "--ledger-dir",
        ])
        .arg(&dir)
        .args(common)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");

    // The server prints "# listening on IP:PORT" once bound; everything
    // before it is startup chatter.
    let mut reader = BufReader::new(server.stdout.take().expect("stdout piped"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            reader.read_line(&mut line).expect("server stdout readable"),
            0,
            "server exited before announcing its port"
        );
        if let Some(rest) = line.trim().strip_prefix("# listening on ") {
            break rest.to_string();
        }
    };

    let out = geoind()
        .args([
            "loadgen",
            "--connect",
            &addr,
            "--requests",
            "24",
            "--connections",
            "3",
            "--users",
            "4",
            "--seed",
            "9",
            "--shutdown",
            "on",
        ])
        .output()
        .expect("loadgen runs");
    let client_text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "loadgen failed:\nstdout: {client_text}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        client_text.contains("loadgen total=24 served=24"),
        "every request must be served under a generous cap:\n{client_text}"
    );
    assert!(client_text.contains("# reconciled: 24"), "{client_text}");

    // --shutdown on posted /shutdown: the server drains and exits 0, and
    // its final report carries the wire counters.
    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("server stdout drains");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exited nonzero:\n{rest}");
    assert!(
        rest.contains("served=24") && rest.contains("shed_net="),
        "final server report missing or missing wire counters:\n{rest}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `kill -TERM` must run the same graceful drain as `POST /shutdown`:
/// the server stops accepting, finishes what it owes, checkpoints the
/// shards, prints the final report, and exits 0 — reconciling exactly
/// with what the load generator observed.
#[test]
#[cfg(unix)]
fn sigterm_drains_the_networked_server_gracefully() {
    use std::io::{BufRead, BufReader, Read};

    let dir = std::env::temp_dir().join(format!("geoind-cli-sigterm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let common = ["--eps", "0.4", "--g", "2", "--synthetic-size", "3000"];
    let mut server = geoind()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--shards",
            "4",
            "--cap",
            "10.0",
            "--workers",
            "2",
            "--queue",
            "16",
            "--seed",
            "7",
            "--ledger-dir",
        ])
        .arg(&dir)
        .args(common)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");

    let mut reader = BufReader::new(server.stdout.take().expect("stdout piped"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            reader.read_line(&mut line).expect("server stdout readable"),
            0,
            "server exited before announcing its port"
        );
        if let Some(rest) = line.trim().strip_prefix("# listening on ") {
            break rest.to_string();
        }
    };

    // Drive a load WITHOUT --shutdown: the server must stay up until the
    // signal arrives.
    let out = geoind()
        .args([
            "loadgen",
            "--connect",
            &addr,
            "--requests",
            "24",
            "--connections",
            "3",
            "--users",
            "4",
            "--seed",
            "9",
        ])
        .output()
        .expect("loadgen runs");
    let client_text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "loadgen failed:\nstdout: {client_text}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        client_text.contains("loadgen total=24 served=24"),
        "{client_text}"
    );
    // The loadgen readiness probe saw the full healthy fleet.
    assert!(
        client_text.contains("shards_ready=4") && client_text.contains("shards_total=4"),
        "loadgen must report shard availability from /healthz:\n{client_text}"
    );

    // SIGTERM instead of POST /shutdown.
    let pid = server.id().to_string();
    let killed = std::process::Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success(), "kill -TERM failed");

    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("server stdout drains");
    let status = server.wait().expect("server exits");
    assert!(
        status.success(),
        "server exited nonzero after SIGTERM:\n{rest}"
    );
    assert!(
        rest.contains("# termination signal received; draining"),
        "signal path not taken:\n{rest}"
    );
    assert!(
        rest.contains("served=24"),
        "final report does not reconcile with the load:\n{rest}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_closed_loop_balances_and_persists_budgets() {
    let dir = std::env::temp_dir().join(format!("geoind-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let args = [
        "serve",
        "--self-drive",
        "60",
        "--users",
        "4",
        "--cap",
        "0.8",
        "--eps",
        "0.4",
        "--g",
        "2",
        "--synthetic-size",
        "3000",
        "--workers",
        "2",
        "--queue",
        "8",
        "--seed",
        "7",
        "--ledger-dir",
    ];
    let out = geoind().args(args).arg(&dir).output().expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Cap 0.8 at eps 0.4 = 2 requests per user; 4 users => 8 served, the
    // rest split between budget refusals and the forced pre-expired tenth.
    assert!(
        text.contains("serve total=60 served=8"),
        "log line drifted:\n{text}"
    );
    assert!(text.contains("expired=6"), "deadline gate missed:\n{text}");
    assert!(text.contains("closed loop balanced"), "{text}");

    // Same epoch, same ledger dir: budgets persist, so every in-budget
    // request is now refused — nothing is served twice.
    let out = geoind().args(args).arg(&dir).output().expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("serve total=60 served=0"),
        "spent budgets were resurrected across a restart:\n{text}"
    );

    // Epoch advance renews the budgets.
    let out = geoind()
        .args(args)
        .arg(&dir)
        .args(["--epoch", "1"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("serve total=60 served=8"),
        "epoch renewal failed:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
