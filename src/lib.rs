//! # geoind — utility-preserving, scalable geo-indistinguishability
//!
//! Facade crate for the workspace reproducing *“A Utility-Preserving and
//! Scalable Technique for Protecting Location Data with
//! Geo-Indistinguishability”* (Ahuja, Ghinita, Shahabi — EDBT 2019).
//!
//! The paper's contribution — the **multi-step mechanism (MSM)** over a
//! GeoInd-preserving hierarchical index — lives in [`mechanisms`], together
//! with the two baselines it is evaluated against (planar Laplace and the
//! LP-based optimal mechanism). The substrates it depends on are re-exported
//! under [`lp`], [`math`], [`spatial`] and [`data`]. The production-facing
//! serving layer — per-user ε-budget ledger with write-ahead-journal crash
//! recovery, deadlines, and admission control — is re-exported under
//! [`serve`].
//!
//! ## Quickstart
//!
//! ```
//! use geoind::prelude::*;
//!
//! // A 20x20 km city with a synthetic check-in history.
//! let dataset = SyntheticCity::austin_like().generate_with_size(5_000, 500);
//! let domain = dataset.domain();
//! let prior = GridPrior::from_dataset(&dataset, 16);
//!
//! // Protect a location with the multi-step mechanism at eps = 0.5.
//! let msm = MsmMechanism::builder(domain, prior)
//!     .epsilon(0.5)
//!     .granularity(4)
//!     .rho(0.8)
//!     .build()
//!     .unwrap();
//! let mut rng = SeededRng::from_seed(7);
//! let reported = msm.report(dataset.checkins()[0].location, &mut rng);
//! assert!(domain.contains(reported));
//! ```

#![warn(missing_docs)]

pub use geoind_core as mechanisms;
pub use geoind_data as data;
pub use geoind_lp as lp;
pub use geoind_math as math;
pub use geoind_rng as rng;
pub use geoind_serve as serve;
pub use geoind_spatial as spatial;

/// One-stop imports for typical use of the library.
pub mod prelude {
    pub use geoind_core::adversary::BayesianAdversary;
    pub use geoind_core::alloc::{AllocationStrategy, BudgetAllocator, LevelBudgets};
    pub use geoind_core::channel::Channel;
    pub use geoind_core::eval::{EvalReport, Evaluator};
    pub use geoind_core::metrics::QualityMetric;
    pub use geoind_core::msm::{LevelSolveStats, MsmMechanism};
    pub use geoind_core::opt::{ConstraintSet, CutGenOptions, OptOptions, OptimalMechanism};
    pub use geoind_core::planar_laplace::PlanarLaplace;
    pub use geoind_core::resilient::{DegradationReport, ResilientMechanism, Tier};
    pub use geoind_core::Mechanism;
    pub use geoind_data::checkin::{CheckIn, Dataset};
    pub use geoind_data::prior::GridPrior;
    pub use geoind_data::synth::SyntheticCity;
    pub use geoind_rng::{Rng, SeededRng};
    pub use geoind_spatial::geom::{BBox, Point};
    pub use geoind_spatial::grid::Grid;
}
