//! `geoind` — command-line front end for the library.
//!
//! ```text
//! geoind protect    --lat 30.2672 --lon -97.7431 --eps 0.5        # sanitize one location
//! geoind eval       --eps 0.3 --queries 2000                      # PL vs MSM utility
//! geoind audit      --eps 0.5 --samples 20000                     # black-box GeoInd check
//! geoind precompute --out cache.bin --eps 0.5 --g 4               # offline channel bundle
//! geoind serve      --self-drive 400 --users 24 --cap 1.6         # crash-safe serving loop
//! geoind serve      --listen 127.0.0.1:0 --shards 4               # networked serving over TCP
//! geoind loadgen    --connect 127.0.0.1:4770 --requests 500       # retrying closed-loop client
//! geoind doctor     --cache cache.bin --eps 0.5 --g 4             # certify every channel
//! ```
//!
//! All commands run on a synthetic city by default; pass
//! `--gowalla <file>` (SNAP format) with `--window austin|vegas` to use
//! real check-ins.

use geoind::data::loader::{load_gowalla, AUSTIN, LAS_VEGAS};
use geoind::mechanisms::audit::{audit_geoind, AuditConfig};
use geoind::mechanisms::resilient::ResilientMechanism;
use geoind::mechanisms::Mechanism;
use geoind::prelude::*;
use geoind::serve::clock::{Clock, SystemClock};
use geoind::serve::{
    install_promote_handler, install_termination_handler, register_with_primary, run_load,
    take_promote_requested, termination_requested, ClientConfig, ClientError, LedgerConfig,
    RepairMode, Request, Response, ServeConfig, Server, ShardedLedger, Shipper, ShipperConfig,
    SpendLedger, SubmitError, WireConfig, WireServer,
};
use geoind_rng::SeededRng;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        print_help();
        return ExitCode::from(2);
    };
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "protect" => cmd_protect(&flags),
        "eval" => cmd_eval(&flags),
        "audit" => cmd_audit(&flags),
        "precompute" => cmd_precompute(&flags),
        "serve" => cmd_serve(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "doctor" => cmd_doctor(&flags),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

type Flags = HashMap<String, String>;

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{a}'"));
        };
        let value = args
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value);
    }
    Ok(flags)
}

fn get_f64(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    flags.get(name).map_or(Ok(default), |v| {
        v.parse().map_err(|_| format!("--{name}: bad number '{v}'"))
    })
}

fn get_u64(flags: &Flags, name: &str, default: u64) -> Result<u64, String> {
    flags.get(name).map_or(Ok(default), |v| {
        v.parse()
            .map_err(|_| format!("--{name}: bad integer '{v}'"))
    })
}

/// `--resilience on|off` (default off).
fn resilience_on(flags: &Flags) -> Result<bool, String> {
    match flags.get("resilience").map(String::as_str) {
        None | Some("off") => Ok(false),
        Some("on") => Ok(true),
        Some(other) => Err(format!("--resilience: expected on|off, got '{other}'")),
    }
}

/// Resolve the dataset; with `--resilience on`, a failing real-data load
/// degrades to the synthetic city (with a warning) instead of aborting.
fn dataset_resilient(flags: &Flags, resilient: bool) -> Result<Dataset, String> {
    match dataset(flags) {
        Ok(d) => Ok(d),
        Err(e) if resilient => {
            eprintln!("warning: {e}; degrading to the synthetic city");
            let size = get_u64(flags, "synthetic-size", 80_000)? as usize;
            Ok(SyntheticCity::austin_like().generate_with_size(size, size / 10))
        }
        Err(e) => Err(e),
    }
}

/// Resolve the dataset: real Gowalla file or the synthetic default.
fn dataset(flags: &Flags) -> Result<Dataset, String> {
    match flags.get("gowalla") {
        Some(path) => {
            let window = match flags.get("window").map(String::as_str) {
                None | Some("austin") => AUSTIN,
                Some("vegas") => LAS_VEGAS,
                Some(other) => return Err(format!("--window: unknown '{other}'")),
            };
            load_gowalla(path, window).map_err(|e| format!("loading {path}: {e}"))
        }
        None => {
            let size = get_u64(flags, "synthetic-size", 80_000)? as usize;
            Ok(SyntheticCity::austin_like().generate_with_size(size, size / 10))
        }
    }
}

/// `--constraints full|spanner:<δ>` and `--cutgen on|off`, forwarded to
/// every per-node OPT solve. A bundle is only portable between commands
/// run with the same pair (doctor re-certifies a spanner bundle under the
/// spanner spec, so it needs the flags the precompute used).
fn opt_options_from_flags(flags: &Flags) -> Result<OptOptions, String> {
    let mut opts = OptOptions::default();
    match flags.get("constraints").map(String::as_str) {
        None | Some("full") => {}
        Some(s) => match s.strip_prefix("spanner:") {
            Some(d) => {
                let dilation: f64 = d
                    .parse()
                    .map_err(|_| format!("--constraints: bad spanner dilation '{d}'"))?;
                if !(dilation.is_finite() && dilation >= 1.0) {
                    return Err(format!(
                        "--constraints: spanner dilation must be >= 1, got {dilation}"
                    ));
                }
                opts.constraints = ConstraintSet::Spanner { dilation };
            }
            None => {
                return Err(format!(
                    "--constraints: expected full or spanner:<dilation>, got '{s}'"
                ))
            }
        },
    }
    match flags.get("cutgen").map(String::as_str) {
        None => {}
        Some("on") => opts.cutgen.enabled = true,
        Some("off") => opts.cutgen.enabled = false,
        Some(other) => return Err(format!("--cutgen: expected on|off, got '{other}'")),
    }
    Ok(opts)
}

fn build_msm(flags: &Flags, data: &Dataset) -> Result<MsmMechanism, String> {
    let eps = get_f64(flags, "eps", 0.5)?;
    let g = get_u64(flags, "g", 4)? as u32;
    let rho = get_f64(flags, "rho", 0.8)?;
    let fine = g.pow(3).clamp(g * g, 64);
    MsmMechanism::builder(data.domain(), GridPrior::from_dataset(data, fine))
        .epsilon(eps)
        .granularity(g)
        .rho(rho)
        .opt_options(opt_options_from_flags(flags)?)
        .build()
        .map_err(|e| e.to_string())
}

fn cmd_protect(flags: &Flags) -> Result<(), String> {
    let resilient = resilience_on(flags)?;
    let data = dataset_resilient(flags, resilient)?;
    let eps = get_f64(flags, "eps", 0.5)?;
    let seed = get_u64(flags, "seed", 42)?;
    // Location: either --x/--y (km-plane) or --lat/--lon with a window.
    let x = if flags.contains_key("lat") || flags.contains_key("lon") {
        let lat = get_f64(flags, "lat", f64::NAN)?;
        let lon = get_f64(flags, "lon", f64::NAN)?;
        let window = match flags.get("window").map(String::as_str) {
            None | Some("austin") => AUSTIN,
            Some("vegas") => LAS_VEGAS,
            Some(other) => return Err(format!("--window: unknown '{other}'")),
        };
        if !window.contains(lat, lon) {
            return Err(format!("({lat}, {lon}) is outside the selected window"));
        }
        window.to_plane(lat, lon)
    } else {
        Point::new(get_f64(flags, "x", 10.0)?, get_f64(flags, "y", 10.0)?)
    };
    let mut rng = SeededRng::from_seed(seed);
    let z = match flags.get("mechanism").map(String::as_str) {
        Some("pl") => PlanarLaplace::new(eps).report(x, &mut rng),
        None | Some("msm") => {
            let msm = build_msm(flags, &data)?;
            println!(
                "# msm: g={}, height={}, effective {}x{} leaf grid, budgets {:?}",
                msm.granularity(),
                msm.height(),
                msm.effective_granularity(),
                msm.effective_granularity(),
                msm.budgets().budgets()
            );
            if resilient {
                let ladder = ResilientMechanism::new(msm);
                let (z, tier) = ladder.report_with_tier(x, &mut rng);
                println!("# served by tier: {tier}");
                println!("{}", ladder.degradation_report());
                z
            } else {
                msm.report(x, &mut rng)
            }
        }
        Some(other) => return Err(format!("--mechanism: unknown '{other}'")),
    };
    println!("true     (km): {:.4}, {:.4}", x.x, x.y);
    println!("reported (km): {:.4}, {:.4}", z.x, z.y);
    println!("loss     (km): {:.4}", x.dist(z));
    Ok(())
}

fn cmd_eval(flags: &Flags) -> Result<(), String> {
    let resilient = resilience_on(flags)?;
    let data = dataset_resilient(flags, resilient)?;
    let eps = get_f64(flags, "eps", 0.5)?;
    let queries = get_u64(flags, "queries", 1_000)? as usize;
    let seed = get_u64(flags, "seed", 42)?;
    let evaluator = Evaluator::sample_from(&data, queries, seed);
    let msm = build_msm(flags, &data)?;
    let pl = PlanarLaplace::new(eps)
        .with_grid_remap(Grid::new(data.domain(), msm.effective_granularity()));
    if resilient {
        let ladder = ResilientMechanism::new(msm);
        for metric in [QualityMetric::Euclidean, QualityMetric::SqEuclidean] {
            println!("{}", evaluator.measure(&pl, metric, seed + 1).summary());
            println!("{}", evaluator.measure(&ladder, metric, seed + 1).summary());
        }
        println!("{}", ladder.degradation_report());
    } else {
        for metric in [QualityMetric::Euclidean, QualityMetric::SqEuclidean] {
            println!("{}", evaluator.measure(&pl, metric, seed + 1).summary());
            println!("{}", evaluator.measure(&msm, metric, seed + 1).summary());
        }
    }
    Ok(())
}

fn cmd_audit(flags: &Flags) -> Result<(), String> {
    let data = dataset(flags)?;
    let eps = get_f64(flags, "eps", 0.5)?;
    let samples = get_u64(flags, "samples", 20_000)? as usize;
    let seed = get_u64(flags, "seed", 42)?;
    let side = data.domain().side();
    let c = side / 2.0;
    let pairs = vec![
        (Point::new(c, c), Point::new(c + side * 0.1, c)),
        (Point::new(c * 0.5, c), Point::new(c * 0.5, c + side * 0.08)),
        (Point::new(c, c * 0.5), Point::new(c * 1.2, c * 0.5)),
    ];
    let grid = Grid::new(data.domain(), 8);
    let mut rng = SeededRng::from_seed(seed);
    let report = match flags.get("mechanism").map(String::as_str) {
        Some("pl") | None => audit_geoind(
            &PlanarLaplace::new(eps),
            eps,
            &pairs,
            &grid,
            AuditConfig {
                samples,
                min_cell_count: 50,
            },
            &mut rng,
        ),
        Some("msm") => {
            let msm = build_msm(flags, &data)?;
            // Audit against MSM's composition bound per pair (its actual
            // guarantee); use the loosest effective epsilon across pairs.
            let eff = pairs
                .iter()
                .map(|(a, b)| msm.composition_bound(*a, *b) / a.dist(*b))
                .fold(0.0f64, f64::max);
            if eff <= 0.0 {
                // Every audit pair snapped to the same cell at every level:
                // the mechanism treats the pair identically (bound 0), so a
                // positive-eps audit is meaningless at this granularity.
                return Err(
                    "audit pairs are indistinguishable under this MSM configuration \
                     (composition bound 0); raise --eps or --g so the hierarchy \
                     separates them"
                        .into(),
                );
            }
            println!("# auditing MSM against its composition bound (eff eps {eff:.3})");
            let report = audit_geoind(
                &msm,
                eff,
                &pairs,
                &grid,
                AuditConfig {
                    samples,
                    min_cell_count: 50,
                },
                &mut rng,
            );
            // The empirical estimate above is sampling-noisy; the sampled
            // matrix channels admit an exact check, so print the
            // certifier's measurement next to it for comparison.
            let certs = msm.recertify_cache();
            let exact = certs
                .iter()
                .map(|(_, c)| c.max_violation)
                .fold(0.0f64, f64::max);
            println!(
                "# certifier: exact max scaled violation {exact:.3e} over {} \
                 cached matrix channels (vs empirical worst excess {:+.3})",
                certs.len(),
                report.worst_excess()
            );
            report
        }
        Some(other) => return Err(format!("--mechanism: unknown '{other}'")),
    };
    for f in &report.findings {
        println!(
            "pair ({:.1},{:.1})~({:.1},{:.1}): log-ratio {:.3}, allowance {:.3}, excess {:+.3}",
            f.a.x,
            f.a.y,
            f.b.x,
            f.b.y,
            f.log_ratio,
            f.allowance,
            f.excess()
        );
    }
    let slack = 0.45;
    if report.passes(slack) {
        println!(
            "PASS (worst excess {:+.3} <= slack {slack})",
            report.worst_excess()
        );
        Ok(())
    } else {
        Err(format!(
            "AUDIT FAILED: worst excess {:+.3} > slack {slack}",
            report.worst_excess()
        ))
    }
}

/// `--jobs N` (default: available parallelism). The worker count never
/// changes the output bytes — only how many sibling LP solves run at once.
fn get_jobs(flags: &Flags) -> Result<usize, String> {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    let jobs = get_u64(flags, "jobs", default)?;
    if jobs == 0 {
        return Err("--jobs: must be at least 1".into());
    }
    Ok(jobs as usize)
}

fn cmd_precompute(flags: &Flags) -> Result<(), String> {
    let data = dataset(flags)?;
    let out = flags.get("out").ok_or("--out <file> is required")?;
    let jobs = get_jobs(flags)?;
    let msm = build_msm(flags, &data)?;
    let nodes = msm
        .precompute_jobs(get_u64(flags, "max-nodes", 100_000)? as usize, jobs)
        .map_err(|e| e.to_string())?;
    let mut blob = Vec::new();
    msm.export_cache(&mut blob).map_err(|e| e.to_string())?;
    // Crash-safe export: temp file + fsync + atomic rename, so a killed
    // precompute can never leave a truncated bundle at --out.
    geoind::serve::atomic_write(std::path::Path::new(out), &blob)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "precomputed {nodes} channels ({} bytes) -> {out}",
        blob.len()
    );
    // Per-level cut-generation telemetry: rows_active vs rows_total is
    // what the delayed-constraint solve saved at each level.
    for (level, s) in msm.level_solve_stats() {
        println!(
            "# level {level}: solves {} cut_rounds {} rows_active {} rows_total {}",
            s.solves, s.cut_rounds, s.rows_active, s.rows_total
        );
    }
    let (primal, dual) = msm.lp_residual_watermark();
    println!("# lp residual watermark: primal {primal:.3e} dual {dual:.3e}");
    println!("# load on-device with MsmMechanism::import_cache");
    Ok(())
}

/// `geoind doctor`: health-check the channel pipeline end to end and exit
/// nonzero if anything fails certification — suitable for cron.
///
/// With `--cache FILE` (a `precompute` bundle built with the same flags)
/// the cache is imported through the certify-on-load gate; otherwise the
/// channels are solved fresh. Every cached channel is then re-certified at
/// the strict post-repair tolerance, the LP residual watermark is
/// re-checked, and the degradation ladder is exercised with a seeded
/// workload.
fn cmd_doctor(flags: &Flags) -> Result<(), String> {
    let data = dataset(flags)?;
    let seed = get_u64(flags, "seed", 42)?;
    let msm = build_msm(flags, &data)?;
    let mut quarantines = 0u64;

    match flags.get("cache") {
        Some(path) => {
            let blob = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
            let report = msm
                .import_cache(&mut blob.as_slice())
                .map_err(|e| format!("importing {path}: {e}"))?;
            println!(
                "# cache import: {} entries loaded, {} quarantined",
                report.loaded,
                report.quarantined.len()
            );
            for (cell, cert) in &report.quarantined {
                println!(
                    "#   quarantined level {} cell {}: scaled violation {:.3e}",
                    cell.level, cell.id, cert.max_violation
                );
            }
            quarantines += report.quarantined.len() as u64;
        }
        None => {
            let nodes = msm
                .precompute_jobs(
                    get_u64(flags, "max-nodes", 100_000)? as usize,
                    get_jobs(flags)?,
                )
                .map_err(|e| e.to_string())?;
            println!("# precomputed {nodes} channels for inspection");
        }
    }

    // Alias tables are derived data: re-derive each table's row marginals
    // and compare against the certified matrix at the strict admission
    // tolerance. A drifted table would sample from a distribution the
    // certificate never vouched for.
    let audit = msm.audit_flat_tables();
    for (cell, err) in &audit.failures {
        println!(
            "#   FLAT TABLE DRIFT level {} cell {}: marginal error {:.3e}",
            cell.level, cell.id, err
        );
        quarantines += 1;
    }
    println!(
        "# flat tables: {} of {} cached channels flattened, worst marginal error {:.3e}",
        audit.flattened, audit.channels, audit.worst_error
    );

    let certs = msm.recertify_cache();
    let mut worst = 0.0f64;
    for (cell, cert) in &certs {
        worst = worst.max(cert.max_violation);
        if cert.verdict == geoind::mechanisms::certify::Verdict::Quarantined {
            println!(
                "#   re-certify QUARANTINE level {} cell {}: scaled violation {:.3e}",
                cell.level, cell.id, cert.max_violation
            );
            quarantines += 1;
        }
    }
    println!(
        "# re-certified {} cached channels: worst scaled violation {worst:.3e}",
        certs.len()
    );

    // Iterative refinement keeps the solver residuals near machine
    // precision; 1e-6 here means the LP path is numerically unhealthy.
    let (primal, dual) = msm.lp_residual_watermark();
    println!("# lp residual watermark: primal {primal:.3e} dual {dual:.3e}");
    let residuals_ok = primal <= 1e-6 && dual <= 1e-6;
    if !residuals_ok {
        println!("#   LP RESIDUALS OUT OF BOUNDS (limit 1e-6)");
    }

    let ladder = ResilientMechanism::new(msm);
    let mut rng = SeededRng::from_seed(seed);
    let checkins = data.checkins();
    let n = get_u64(flags, "requests", 64)?.max(1);
    for i in 0..n {
        let x = checkins[i as usize % checkins.len()].location;
        let _ = ladder.report_with_tier(x, &mut rng);
    }
    let dr = ladder.degradation_report();
    println!("{}", dr.log_line());
    quarantines += dr.quarantined;

    if quarantines == 0 && residuals_ok {
        println!(
            "# doctor: healthy ({} channels certified, {n} ladder requests served)",
            certs.len()
        );
        Ok(())
    } else {
        Err(format!(
            "doctor found problems: {quarantines} quarantine(s), lp residuals ok: {residuals_ok}"
        ))
    }
}

/// `geoind serve --self-drive N`: run the crash-safe serving front-end
/// against a seeded closed-loop workload and verify the books balance.
///
/// The closed loop is the CI contract: every submitted request is tracked
/// client-side, every terminal response is tallied, and the client tallies
/// must match the server's own counters exactly — any drift (a lost
/// request, a double count, a served-but-refused mixup) exits nonzero.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    if let Some(listen) = flags.get("listen") {
        return cmd_serve_listen(flags, listen);
    }
    let data = dataset_resilient(flags, true)?;
    let n = get_u64(flags, "self-drive", 200)?;
    let users = get_u64(flags, "users", 16)?.max(1);
    let cap = get_f64(flags, "cap", 1.6)?;
    let epoch = get_u64(flags, "epoch", 0)?;
    let seed = get_u64(flags, "seed", 42)?;
    let msm = build_msm(flags, &data)?;
    let eps = msm.epsilon();
    let ladder = ResilientMechanism::new(msm);

    // The ledger journal persists across runs when --ledger-dir is given
    // (budgets carry over within an epoch); otherwise a throwaway dir.
    let (dir, ephemeral) = match flags.get("ledger-dir") {
        Some(d) => (std::path::PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("geoind-serve-{}", std::process::id())),
            true,
        ),
    };
    let ledger = SpendLedger::open(
        &dir,
        LedgerConfig {
            cap_per_user: cap,
            epoch,
            compact_after: 64,
        },
    )
    .map_err(|e| format!("opening ledger at {}: {e}", dir.display()))?;
    println!(
        "# ledger: {} (epoch {epoch}, cap {cap} eps/user, {} eps/request)",
        dir.display(),
        eps
    );

    let clock: Arc<dyn Clock> = Arc::new(SystemClock);
    // Deadline 0 is "already expired" only once the clock has ticked past
    // its origin; make sure it has.
    while clock.now_nanos() == 0 {
        std::thread::yield_now();
    }
    let server = Server::start(
        ladder,
        ShardedLedger::single(ledger),
        Arc::clone(&clock),
        ServeConfig {
            workers: get_u64(flags, "workers", 4)? as usize,
            queue_capacity: get_u64(flags, "queue", 64)? as usize,
            seed,
            batch: get_u64(flags, "batch", 8)? as usize,
        },
    );

    // Seeded closed-loop workload: users drawn round-robin, locations from
    // the dataset, every 10th request pre-expired to exercise the deadline
    // gate deterministically. The client self-paces: once its in-flight
    // window fills, it blocks on the oldest response before submitting
    // more, so shedding only happens on genuine bursts.
    let checkins = data.checkins();
    let queue_capacity = get_u64(flags, "queue", 64)? as usize;
    let mut pending = std::collections::VecDeque::new();
    let (mut served, mut refused, mut expired, mut faulted) = (0u64, 0u64, 0u64, 0u64);
    let (mut shard_refused, mut disk_refused) = (0u64, 0u64);
    let mut sent_expired = 0u64;
    let mut shed = 0u64;
    #[allow(clippy::too_many_arguments)]
    fn tally(
        response: Response,
        served: &mut u64,
        refused: &mut u64,
        expired: &mut u64,
        faulted: &mut u64,
        shard_refused: &mut u64,
        disk_refused: &mut u64,
    ) {
        match response {
            Response::Served { .. } => *served += 1,
            Response::BudgetExhausted { .. } => *refused += 1,
            Response::Expired => *expired += 1,
            Response::JournalFault(e) => {
                eprintln!("warning: request refused fail-closed: {e}");
                *faulted += 1;
            }
            Response::ShardUnavailable { shard } => {
                eprintln!("warning: request refused fail-closed: shard {shard} unavailable");
                *shard_refused += 1;
            }
            Response::DiskFull => {
                eprintln!("warning: request refused fail-closed: journal disk full");
                *disk_refused += 1;
            }
            // The self-driving loop never attaches a replication
            // shipper, so these cannot fire here; tally them anyway so
            // the books would catch a stray refusal.
            Response::ReplicaLag { lag } => {
                eprintln!("warning: request refused fail-closed: replica lag {lag}");
                *shard_refused += 1;
            }
            Response::Fenced => {
                eprintln!("warning: request refused fail-closed: fenced");
                *shard_refused += 1;
            }
        }
    }
    for i in 0..n {
        let pre_expired = i % 10 == 9;
        let request = Request {
            user: i % users,
            point: checkins[i as usize % checkins.len()].location,
            deadline_nanos: pre_expired.then_some(0),
        };
        match server.submit(request) {
            Ok(rx) => {
                if pre_expired {
                    sent_expired += 1;
                }
                pending.push_back(rx);
            }
            Err(SubmitError::QueueFull) => shed += 1,
            Err(SubmitError::Closed) => return Err("server closed mid-workload".into()),
        }
        while pending.len() >= queue_capacity {
            let rx: std::sync::mpsc::Receiver<Response> =
                pending.pop_front().expect("window is non-empty");
            let response = rx
                .recv()
                .map_err(|_| "an accepted request never got a response")?;
            tally(
                response,
                &mut served,
                &mut refused,
                &mut expired,
                &mut faulted,
                &mut shard_refused,
                &mut disk_refused,
            );
        }
    }

    // Graceful drain: shutdown stops admission, workers finish the
    // backlog, and every accepted request still gets its response below.
    let outcome = server.shutdown();
    outcome
        .checkpoint
        .map_err(|e| format!("final ledger checkpoint: {e}"))?;
    let report = outcome.report;
    for rx in pending {
        let response = rx
            .recv()
            .map_err(|_| "a drained request never got a response")?;
        tally(
            response,
            &mut served,
            &mut refused,
            &mut expired,
            &mut faulted,
            &mut shard_refused,
            &mut disk_refused,
        );
    }

    println!("{report}");
    println!("{}", report.log_line());
    println!("{}", outcome.degradation);
    println!("{}", outcome.degradation.log_line());

    // The books must balance exactly.
    let mut errors = Vec::new();
    let mut check = |what: &str, got: u64, want: u64| {
        if got != want {
            errors.push(format!("{what}: client saw {want}, server counted {got}"));
        }
    };
    check("served", report.served(), served);
    check("refused (budget)", report.refused_budget, refused);
    check("expired", report.expired, expired);
    check("journal faults", report.journal_faults, faulted);
    check("shard refusals", report.refused_shard, shard_refused);
    check("disk-full refusals", report.disk_full, disk_refused);
    check("shed", report.shed, shed);
    check("expired vs pre-expired sent", report.expired, sent_expired);
    check(
        "ladder reports vs served",
        outcome.degradation.total(),
        served,
    );
    check("total vs submitted", report.total(), n);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if errors.is_empty() {
        println!("# closed loop balanced: all {n} requests accounted for");
        Ok(())
    } else {
        Err(format!(
            "closed-loop count mismatch:\n  {}",
            errors.join("\n  ")
        ))
    }
}

/// `geoind serve --listen ADDR`: the networked front-end. Binds a TCP
/// listener, serves JSON protect queries over HTTP/1.1 through the same
/// admission-controlled worker pool as the self-driving loop, and drains
/// gracefully when a client posts `/shutdown`.
///
/// The budget ledger is sharded by user hash (`--shards`, default 4);
/// a shard whose journal fails recovery refuses exactly its own users
/// fail-closed while the rest keep serving.
fn cmd_serve_listen(flags: &Flags, listen: &str) -> Result<(), String> {
    let data = dataset_resilient(flags, true)?;
    let cap = get_f64(flags, "cap", 1.6)?;
    let epoch = get_u64(flags, "epoch", 0)?;
    let seed = get_u64(flags, "seed", 42)?;
    let shards = get_u64(flags, "shards", 4)?.max(1) as usize;
    let msm = build_msm(flags, &data)?;
    let eps = msm.epsilon();
    let ladder = ResilientMechanism::new(msm);

    let (dir, ephemeral) = match flags.get("ledger-dir") {
        Some(d) => (std::path::PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("geoind-wire-{}", std::process::id())),
            true,
        ),
    };
    let repair = RepairMode::parse(flags.get("repair").map(String::as_str).unwrap_or("auto"))?;
    let ledger = ShardedLedger::open_with_repair(
        &dir,
        LedgerConfig {
            cap_per_user: cap,
            epoch,
            compact_after: 64,
        },
        shards,
        repair,
    );
    for (shard, detail) in ledger.failed_shards() {
        eprintln!("warning: ledger shard {shard} failed recovery, refusing its users: {detail}");
    }
    let counts = ledger.health_counts();
    if !counts.all_serving() {
        eprintln!(
            "warning: {} of {shards} shards not serving at open (quarantined {} scavenging {} failed {})",
            counts.quarantined + counts.scavenging + counts.failed,
            counts.quarantined,
            counts.scavenging,
            counts.failed
        );
    }
    println!(
        "# ledger: {} ({shards} shards, epoch {epoch}, cap {cap} eps/user, {eps} eps/request, repair {})",
        dir.display(),
        match repair {
            RepairMode::Auto => "auto",
            RepairMode::Manual => "manual",
            RepairMode::Off => "off",
        }
    );

    let clock: Arc<dyn Clock> = Arc::new(SystemClock);
    while clock.now_nanos() == 0 {
        std::thread::yield_now();
    }
    let follow = flags.get("follow").cloned();
    let auth_token = flags.get("auth-token").cloned();
    let max_replica_lag = flags.get("max-replica-lag").map(|v| {
        v.parse::<u64>()
            .map_err(|_| format!("--max-replica-lag: bad integer '{v}'"))
    });
    let config = WireConfig {
        serve: ServeConfig {
            workers: get_u64(flags, "workers", 4)? as usize,
            queue_capacity: get_u64(flags, "queue", 64)? as usize,
            seed,
            batch: get_u64(flags, "batch", 8)? as usize,
        },
        max_connections: get_u64(flags, "max-conns", 64)? as usize,
        read_timeout_ms: get_u64(flags, "read-timeout-ms", 2_000)?,
        write_timeout_ms: get_u64(flags, "write-timeout-ms", 2_000)?,
        max_body_bytes: get_u64(flags, "max-body", 64 * 1024)? as usize,
        // Default three orders of magnitude above the measured steady
        // p99 (~2.4 ms, BENCH_serve.json): only abandoned connections
        // are reaped.
        idle_timeout_ms: get_u64(flags, "idle-timeout-ms", 5_000)?,
        deadline_ms: flags
            .get("deadline-ms")
            .map(|_| get_u64(flags, "deadline-ms", 0))
            .transpose()?,
        standby: follow.is_some(),
        auth_token: auth_token.clone(),
        idem_max_per_user: get_u64(flags, "idem-max", 256)?.max(1) as usize,
        idem_ttl_ms: get_u64(flags, "idem-ttl-ms", 60_000)?,
    };
    if let Some(max_lag) = max_replica_lag.transpose()? {
        // Primary mode: spends ship to the follower registered via
        // POST /follow, and are served only after its durable ack.
        let shipper = Shipper::new(ShipperConfig {
            dir: Some(dir.clone()),
            shards,
            epoch,
            max_lag,
            timeout_ms: get_u64(flags, "replicate-timeout-ms", 2_000)?,
            auth_token: auth_token.clone(),
        })
        .map_err(|e| format!("starting replication shipper: {e}"))?;
        println!(
            "# replicating: fence generation {}, max lag {max_lag}{}",
            shipper.generation(),
            match shipper.peer() {
                Some(peer) => format!(", resuming to {peer}"),
                None => ", waiting for a follower".into(),
            }
        );
        ledger.attach_shipper(std::sync::Arc::new(shipper));
    }
    // SIGTERM/SIGINT trigger the same graceful drain as POST /shutdown;
    // SIGUSR1 requests a follower promotion out-of-band.
    install_termination_handler();
    install_promote_handler();
    let server = WireServer::start(ladder, ledger, clock, config, listen)
        .map_err(|e| format!("binding {listen}: {e}"))?;
    // CI and scripts poll this line to learn the bound port; the pipe to
    // them is block-buffered, so flush explicitly.
    println!("# listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(primary) = follow.as_deref() {
        // Warm standby: register with the primary so its shipper knows
        // where to push. Retried — the primary may still be booting —
        // and non-fatal: the operator can re-point the primary later.
        // The registered address must be routable *from the primary*:
        // a wildcard bind (0.0.0.0 / [::]) only resolves back to this
        // standby when both processes share a host, so it needs an
        // explicit --advertise-addr instead of silently degrading to
        // replica_lag refusals on the primary.
        let self_addr = match flags.get("advertise-addr") {
            Some(addr) => addr.clone(),
            None => {
                let local = server.local_addr();
                if local.ip().is_unspecified() {
                    return Err(format!(
                        "--follow with a wildcard bind ({local}): pass \
                         --advertise-addr HOST:PORT so the primary can reach this standby"
                    ));
                }
                local.to_string()
            }
        };
        let mut registered = false;
        for attempt in 0..20u64 {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            match register_with_primary(primary, &self_addr, auth_token.as_deref(), 2_000) {
                Ok(()) => {
                    registered = true;
                    break;
                }
                Err(_) if attempt < 19 => {}
                Err(e) => eprintln!("warning: could not register with {primary}: {e}"),
            }
        }
        println!(
            "# following {primary} (registered: {registered}, fence generation {})",
            server.fence_gen()
        );
        let _ = std::io::stdout().flush();
    }

    // Serve until a client posts /shutdown or a termination signal
    // lands; handlers never tear the server down from inside a
    // connection, the owner does it here. SIGUSR1 promotes a standby
    // without stopping the loop.
    while !server.shutdown_requested() && !termination_requested() {
        if take_promote_requested() {
            match server.promote() {
                Ok(gen) => println!("# promoted to primary (fence generation {gen})"),
                Err(e) => eprintln!("warning: promotion failed: {e}"),
            }
            let _ = std::io::stdout().flush();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    if termination_requested() {
        println!("# termination signal received; draining");
    }
    let outcome = server.shutdown();
    outcome
        .checkpoint
        .map_err(|e| format!("final ledger checkpoint: {e}"))?;
    println!("{}", outcome.report);
    println!("{}", outcome.report.log_line());
    println!("{}", outcome.degradation);
    println!("{}", outcome.degradation.log_line());
    println!("# idempotent replays served: {}", outcome.retried);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}

/// `geoind loadgen`: closed-loop multi-connection load generator with
/// seeded backoff, per-request timeouts and idempotent retries. Exits
/// nonzero unless its terminal tallies reconcile exactly with the
/// server's own gate counters.
fn cmd_loadgen(flags: &Flags) -> Result<(), String> {
    let config = ClientConfig {
        addr: flags
            .get("connect")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:4770".into()),
        connections: get_u64(flags, "connections", 4)?.max(1) as usize,
        requests: get_u64(flags, "requests", 200)?,
        users: get_u64(flags, "users", 16)?.max(1),
        timeout_ms: get_u64(flags, "timeout-ms", 2_000)?,
        max_attempts: get_u64(flags, "max-attempts", 12)?.max(1) as u32,
        backoff_base_ms: get_u64(flags, "backoff-ms", 10)?,
        seed: get_u64(flags, "seed", 1)?,
        shutdown_after: flags.get("shutdown").map(String::as_str) == Some("on"),
        failover: flags.get("failover").cloned(),
        auth_token: flags.get("auth-token").cloned(),
        retry_budget: flags
            .get("retry-budget")
            .map(|_| get_u64(flags, "retry-budget", 0))
            .transpose()?,
    };
    let report = match run_load(&config) {
        Ok(report) => report,
        Err(ClientError::Mismatch { detail, report }) => {
            // Print the client's books before failing: the mismatch
            // post-mortem needs both sides.
            println!("{}", report.log_line());
            return Err(format!("reconciliation failed: {detail}"));
        }
        Err(ClientError::RetryBudgetExhausted { abandoned, report }) => {
            println!("{}", report.log_line());
            return Err(format!(
                "retry budget exhausted: {abandoned} requests abandoned"
            ));
        }
        Err(e) => return Err(e.to_string()),
    };
    println!("{}", report.log_line());
    println!(
        "# reconciled: {} terminal outcomes match the server's gate counters exactly",
        report.total()
    );
    if let Some(path) = flags.get("json-out") {
        let label = flags.get("label").map(String::as_str).unwrap_or("loadgen");
        let json = format!(
            concat!(
                "{{\"label\":\"{}\",\"requests\":{},\"served\":{},\"refused\":{},",
                "\"expired\":{},\"journal_faults\":{},\"retries\":{},\"shed_seen\":{},",
                "\"torn_seen\":{},\"server_retried\":{},\"wall_s\":{},\"req_per_s\":{},",
                "\"p50_ms\":{},\"p99_ms\":{},\"shard_unavailable_seen\":{},",
                "\"disk_full_seen\":{},\"shards_ready\":{},\"shards_total\":{},",
                "\"repaired_shards\":{},\"retry_budget_exhausted\":{},\"failed_over\":{}}}\n"
            ),
            label,
            config.requests,
            report.served,
            report.refused_budget,
            report.expired,
            report.journal_faults,
            report.retries,
            report.shed_seen,
            report.torn_seen,
            report.server_retried,
            report.wall_s,
            report.req_per_s,
            report.p50_ms,
            report.p99_ms,
            report.shard_unavailable_seen,
            report.disk_full_seen,
            report.shards_ready,
            report.shards_total,
            report.repaired_shards,
            report.retry_budget_exhausted,
            report.failed_over,
        );
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

fn print_help() {
    println!(
        "geoind — utility-preserving geo-indistinguishability (EDBT 2019)

USAGE: geoind <COMMAND> [--flag value]...

COMMANDS
  protect     sanitize one location        (--lat/--lon + --window, or --x/--y km)
  eval        compare PL vs MSM utility    (--queries N)
  audit       empirical GeoInd check       (--mechanism pl|msm, --samples N)
  precompute  build offline channel bundle (--out FILE; atomic temp+rename
              write; --jobs N parallel LP solves, default all cores — the
              output bytes are identical at any --jobs)
  serve       crash-safe serving front-end, closed-loop self-driving workload
              (--self-drive N, --users U, --cap EPS_PER_USER, --workers W,
               --queue DEPTH, --batch B requests drained per worker pass,
               --epoch E, --ledger-dir DIR to persist budgets); with
              --listen ADDR it serves JSON protect queries over HTTP/1.1
              instead (--shards K user-hash ledger shards, --max-conns C,
               --read-timeout-ms/--write-timeout-ms, --deadline-ms D,
               --max-body BYTES, --idle-timeout-ms I to reap idle
               keep-alive connections, --repair auto|manual|off for
               damaged-shard scavenge-and-readmit — POST /repair triggers
               it under manual, GET /healthz reports per-shard state;
               POST /shutdown or SIGTERM/SIGINT drain gracefully;
               --max-replica-lag N ships every spend to a registered
               follower and refuses past N unacked records,
               --follow PRIMARY starts as that primary's warm standby
               (POST /promote or SIGUSR1 promotes it, fencing the old
               primary; --advertise-addr HOST:PORT is the address it
               registers — required when bound to a wildcard address),
               --auth-token T requires a bearer token on every
               endpoint but /healthz, --idem-max K / --idem-ttl-ms T
               bound the per-user idempotency retry table)
  loadgen     closed-loop load generator against `serve --listen`
              (--connect ADDR, --requests N, --connections C, --users U,
               --timeout-ms T, --max-attempts A, --backoff-ms B, --seed S,
               --shutdown on to drain the server after reconciling,
               --failover ADDR to promote and re-point at a warm standby
               on primary loss (reconciles against both servers),
               --retry-budget N global retry tokens for fast failure,
               --auth-token T bearer token,
               --json-out FILE --label L for benchmark artifacts); exits
              nonzero unless client tallies match the server's counters;
              polls /healthz and reports shard availability separately
              from overload sheds
  doctor      re-certify every channel, audit alias-table marginals against
              the certified matrices, check LP residuals, exercise the
              ladder; exits nonzero on any quarantine (--cache FILE to
              inspect a precomputed bundle, --requests N ladder probes;
              pass the same --constraints/--cutgen the precompute used —
              a spanner bundle is re-certified under the spanner spec,
              not the tighter full-set tolerance)

COMMON FLAGS
  --eps E            privacy budget per km (default 0.5)
  --g G              MSM per-level granularity (default 4)
  --rho R            self-map target for budget allocation (default 0.8)
  --constraints C    full (default) or spanner:<dilation> — which GeoInd
                     rows the per-node OPT targets; spanner:<d> enforces
                     only greedy d-spanner edges at eps/d (still eps-GeoInd
                     by path chaining, utility >= exact optimum's loss)
  --cutgen M         on (default) or off: delayed constraint generation —
                     solve with a seed row subset, append only violated
                     rows (certify's own separation check), warm-restart
                     from the previous basis until no violations remain;
                     exact fixed point, certified against the full target
  --mechanism M      msm (default) or pl
  --gowalla FILE     real SNAP-format check-ins (else synthetic city)
  --window W         austin (default) or vegas, for --gowalla and --lat/--lon
  --seed S           RNG seed (default 42)
  --resilience R     on|off (default off): serve through the degradation
                     ladder (MSM/OPT -> per-level Laplace -> flat Laplace)
                     and print a served_by_tier degradation report"
    );
}
