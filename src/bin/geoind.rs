//! `geoind` — command-line front end for the library.
//!
//! ```text
//! geoind protect    --lat 30.2672 --lon -97.7431 --eps 0.5        # sanitize one location
//! geoind eval       --eps 0.3 --queries 2000                      # PL vs MSM utility
//! geoind audit      --eps 0.5 --samples 20000                     # black-box GeoInd check
//! geoind precompute --out cache.bin --eps 0.5 --g 4               # offline channel bundle
//! ```
//!
//! All commands run on a synthetic city by default; pass
//! `--gowalla <file>` (SNAP format) with `--window austin|vegas` to use
//! real check-ins.

use geoind::data::loader::{load_gowalla, AUSTIN, LAS_VEGAS};
use geoind::mechanisms::audit::{audit_geoind, AuditConfig};
use geoind::mechanisms::resilient::ResilientMechanism;
use geoind::mechanisms::Mechanism;
use geoind::prelude::*;
use geoind_rng::SeededRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        print_help();
        return ExitCode::from(2);
    };
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "protect" => cmd_protect(&flags),
        "eval" => cmd_eval(&flags),
        "audit" => cmd_audit(&flags),
        "precompute" => cmd_precompute(&flags),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

type Flags = HashMap<String, String>;

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{a}'"));
        };
        let value = args
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value);
    }
    Ok(flags)
}

fn get_f64(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    flags.get(name).map_or(Ok(default), |v| {
        v.parse().map_err(|_| format!("--{name}: bad number '{v}'"))
    })
}

fn get_u64(flags: &Flags, name: &str, default: u64) -> Result<u64, String> {
    flags.get(name).map_or(Ok(default), |v| {
        v.parse()
            .map_err(|_| format!("--{name}: bad integer '{v}'"))
    })
}

/// `--resilience on|off` (default off).
fn resilience_on(flags: &Flags) -> Result<bool, String> {
    match flags.get("resilience").map(String::as_str) {
        None | Some("off") => Ok(false),
        Some("on") => Ok(true),
        Some(other) => Err(format!("--resilience: expected on|off, got '{other}'")),
    }
}

/// Resolve the dataset; with `--resilience on`, a failing real-data load
/// degrades to the synthetic city (with a warning) instead of aborting.
fn dataset_resilient(flags: &Flags, resilient: bool) -> Result<Dataset, String> {
    match dataset(flags) {
        Ok(d) => Ok(d),
        Err(e) if resilient => {
            eprintln!("warning: {e}; degrading to the synthetic city");
            let size = get_u64(flags, "synthetic-size", 80_000)? as usize;
            Ok(SyntheticCity::austin_like().generate_with_size(size, size / 10))
        }
        Err(e) => Err(e),
    }
}

/// Resolve the dataset: real Gowalla file or the synthetic default.
fn dataset(flags: &Flags) -> Result<Dataset, String> {
    match flags.get("gowalla") {
        Some(path) => {
            let window = match flags.get("window").map(String::as_str) {
                None | Some("austin") => AUSTIN,
                Some("vegas") => LAS_VEGAS,
                Some(other) => return Err(format!("--window: unknown '{other}'")),
            };
            load_gowalla(path, window).map_err(|e| format!("loading {path}: {e}"))
        }
        None => {
            let size = get_u64(flags, "synthetic-size", 80_000)? as usize;
            Ok(SyntheticCity::austin_like().generate_with_size(size, size / 10))
        }
    }
}

fn build_msm(flags: &Flags, data: &Dataset) -> Result<MsmMechanism, String> {
    let eps = get_f64(flags, "eps", 0.5)?;
    let g = get_u64(flags, "g", 4)? as u32;
    let rho = get_f64(flags, "rho", 0.8)?;
    let fine = g.pow(3).clamp(g * g, 64);
    MsmMechanism::builder(data.domain(), GridPrior::from_dataset(data, fine))
        .epsilon(eps)
        .granularity(g)
        .rho(rho)
        .build()
        .map_err(|e| e.to_string())
}

fn cmd_protect(flags: &Flags) -> Result<(), String> {
    let resilient = resilience_on(flags)?;
    let data = dataset_resilient(flags, resilient)?;
    let eps = get_f64(flags, "eps", 0.5)?;
    let seed = get_u64(flags, "seed", 42)?;
    // Location: either --x/--y (km-plane) or --lat/--lon with a window.
    let x = if flags.contains_key("lat") || flags.contains_key("lon") {
        let lat = get_f64(flags, "lat", f64::NAN)?;
        let lon = get_f64(flags, "lon", f64::NAN)?;
        let window = match flags.get("window").map(String::as_str) {
            None | Some("austin") => AUSTIN,
            Some("vegas") => LAS_VEGAS,
            Some(other) => return Err(format!("--window: unknown '{other}'")),
        };
        if !window.contains(lat, lon) {
            return Err(format!("({lat}, {lon}) is outside the selected window"));
        }
        window.to_plane(lat, lon)
    } else {
        Point::new(get_f64(flags, "x", 10.0)?, get_f64(flags, "y", 10.0)?)
    };
    let mut rng = SeededRng::from_seed(seed);
    let z = match flags.get("mechanism").map(String::as_str) {
        Some("pl") => PlanarLaplace::new(eps).report(x, &mut rng),
        None | Some("msm") => {
            let msm = build_msm(flags, &data)?;
            println!(
                "# msm: g={}, height={}, effective {}x{} leaf grid, budgets {:?}",
                msm.granularity(),
                msm.height(),
                msm.effective_granularity(),
                msm.effective_granularity(),
                msm.budgets().budgets()
            );
            if resilient {
                let ladder = ResilientMechanism::new(msm);
                let (z, tier) = ladder.report_with_tier(x, &mut rng);
                println!("# served by tier: {tier}");
                println!("{}", ladder.degradation_report());
                z
            } else {
                msm.report(x, &mut rng)
            }
        }
        Some(other) => return Err(format!("--mechanism: unknown '{other}'")),
    };
    println!("true     (km): {:.4}, {:.4}", x.x, x.y);
    println!("reported (km): {:.4}, {:.4}", z.x, z.y);
    println!("loss     (km): {:.4}", x.dist(z));
    Ok(())
}

fn cmd_eval(flags: &Flags) -> Result<(), String> {
    let resilient = resilience_on(flags)?;
    let data = dataset_resilient(flags, resilient)?;
    let eps = get_f64(flags, "eps", 0.5)?;
    let queries = get_u64(flags, "queries", 1_000)? as usize;
    let seed = get_u64(flags, "seed", 42)?;
    let evaluator = Evaluator::sample_from(&data, queries, seed);
    let msm = build_msm(flags, &data)?;
    let pl = PlanarLaplace::new(eps)
        .with_grid_remap(Grid::new(data.domain(), msm.effective_granularity()));
    if resilient {
        let ladder = ResilientMechanism::new(msm);
        for metric in [QualityMetric::Euclidean, QualityMetric::SqEuclidean] {
            println!("{}", evaluator.measure(&pl, metric, seed + 1).summary());
            println!("{}", evaluator.measure(&ladder, metric, seed + 1).summary());
        }
        println!("{}", ladder.degradation_report());
    } else {
        for metric in [QualityMetric::Euclidean, QualityMetric::SqEuclidean] {
            println!("{}", evaluator.measure(&pl, metric, seed + 1).summary());
            println!("{}", evaluator.measure(&msm, metric, seed + 1).summary());
        }
    }
    Ok(())
}

fn cmd_audit(flags: &Flags) -> Result<(), String> {
    let data = dataset(flags)?;
    let eps = get_f64(flags, "eps", 0.5)?;
    let samples = get_u64(flags, "samples", 20_000)? as usize;
    let seed = get_u64(flags, "seed", 42)?;
    let side = data.domain().side();
    let c = side / 2.0;
    let pairs = vec![
        (Point::new(c, c), Point::new(c + side * 0.1, c)),
        (Point::new(c * 0.5, c), Point::new(c * 0.5, c + side * 0.08)),
        (Point::new(c, c * 0.5), Point::new(c * 1.2, c * 0.5)),
    ];
    let grid = Grid::new(data.domain(), 8);
    let mut rng = SeededRng::from_seed(seed);
    let report = match flags.get("mechanism").map(String::as_str) {
        Some("pl") | None => audit_geoind(
            &PlanarLaplace::new(eps),
            eps,
            &pairs,
            &grid,
            AuditConfig {
                samples,
                min_cell_count: 50,
            },
            &mut rng,
        ),
        Some("msm") => {
            let msm = build_msm(flags, &data)?;
            // Audit against MSM's composition bound per pair (its actual
            // guarantee); use the loosest effective epsilon across pairs.
            let eff = pairs
                .iter()
                .map(|(a, b)| msm.composition_bound(*a, *b) / a.dist(*b))
                .fold(0.0f64, f64::max);
            if eff <= 0.0 {
                // Every audit pair snapped to the same cell at every level:
                // the mechanism treats the pair identically (bound 0), so a
                // positive-eps audit is meaningless at this granularity.
                return Err(
                    "audit pairs are indistinguishable under this MSM configuration \
                     (composition bound 0); raise --eps or --g so the hierarchy \
                     separates them"
                        .into(),
                );
            }
            println!("# auditing MSM against its composition bound (eff eps {eff:.3})");
            audit_geoind(
                &msm,
                eff,
                &pairs,
                &grid,
                AuditConfig {
                    samples,
                    min_cell_count: 50,
                },
                &mut rng,
            )
        }
        Some(other) => return Err(format!("--mechanism: unknown '{other}'")),
    };
    for f in &report.findings {
        println!(
            "pair ({:.1},{:.1})~({:.1},{:.1}): log-ratio {:.3}, allowance {:.3}, excess {:+.3}",
            f.a.x,
            f.a.y,
            f.b.x,
            f.b.y,
            f.log_ratio,
            f.allowance,
            f.excess()
        );
    }
    let slack = 0.45;
    if report.passes(slack) {
        println!(
            "PASS (worst excess {:+.3} <= slack {slack})",
            report.worst_excess()
        );
        Ok(())
    } else {
        Err(format!(
            "AUDIT FAILED: worst excess {:+.3} > slack {slack}",
            report.worst_excess()
        ))
    }
}

fn cmd_precompute(flags: &Flags) -> Result<(), String> {
    let data = dataset(flags)?;
    let out = flags.get("out").ok_or("--out <file> is required")?;
    let msm = build_msm(flags, &data)?;
    let nodes = msm
        .precompute(get_u64(flags, "max-nodes", 100_000)? as usize)
        .map_err(|e| e.to_string())?;
    let mut blob = Vec::new();
    msm.export_cache(&mut blob).map_err(|e| e.to_string())?;
    std::fs::write(out, &blob).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "precomputed {nodes} channels ({} bytes) -> {out}",
        blob.len()
    );
    println!("# load on-device with MsmMechanism::import_cache");
    Ok(())
}

fn print_help() {
    println!(
        "geoind — utility-preserving geo-indistinguishability (EDBT 2019)

USAGE: geoind <COMMAND> [--flag value]...

COMMANDS
  protect     sanitize one location        (--lat/--lon + --window, or --x/--y km)
  eval        compare PL vs MSM utility    (--queries N)
  audit       empirical GeoInd check       (--mechanism pl|msm, --samples N)
  precompute  build offline channel bundle (--out FILE)

COMMON FLAGS
  --eps E            privacy budget per km (default 0.5)
  --g G              MSM per-level granularity (default 4)
  --rho R            self-map target for budget allocation (default 0.8)
  --mechanism M      msm (default) or pl
  --gowalla FILE     real SNAP-format check-ins (else synthetic city)
  --window W         austin (default) or vegas, for --gowalla and --lat/--lon
  --seed S           RNG seed (default 42)
  --resilience R     on|off (default off): serve through the degradation
                     ladder (MSM/OPT -> per-level Laplace -> flat Laplace)
                     and print a served_by_tier degradation report"
    );
}
