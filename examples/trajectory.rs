//! Session-long protection of a movement trace.
//!
//! A courier drives across town reporting its position every minute. Each
//! release through an ε-GeoInd mechanism leaks; by composability the leaks
//! add up, so the client enforces a *session budget* and suppresses
//! redundant re-reports while parked. This example shows the budget ledger
//! in action and the accuracy of what the dispatcher sees.
//!
//! ```text
//! cargo run --release --example trajectory
//! ```

use geoind::mechanisms::trajectory::{StepOutcome, TrajectoryProtector};
use geoind::prelude::*;
use geoind_rng::SeededRng;

fn main() {
    let dataset = SyntheticCity::austin_like().generate_with_size(40_000, 4_000);
    let domain = dataset.domain();
    let prior = GridPrior::from_dataset(&dataset, 16);

    // Per-report mechanism: MSM at eps = 0.3 per release.
    let per_report_eps = 0.3;
    let msm = MsmMechanism::builder(domain, prior)
        .epsilon(per_report_eps)
        .granularity(4)
        .build()
        .expect("valid configuration");

    // Session: at most eps = 1.5 total; don't re-report within 250 m.
    let mut protector =
        TrajectoryProtector::new(msm, per_report_eps, 1.5, 0.25).expect("valid session parameters");

    // A trace: drive east, park for four ticks, drive north.
    let mut trace = Vec::new();
    for i in 0..5 {
        trace.push(Point::new(4.0 + i as f64 * 1.2, 8.0));
    }
    for _ in 0..4 {
        trace.push(Point::new(8.9, 8.02)); // parked (tiny jitter)
    }
    for i in 0..5 {
        trace.push(Point::new(8.8, 8.0 + i as f64 * 1.1));
    }

    println!(
        "session budget {:.2}, {:.2} per release, 250 m suppression radius\n",
        protector.ledger().total(),
        per_report_eps
    );
    println!(
        "{:>4}  {:>16}  {:>16}  {:>9}  {:>9}  event",
        "t", "true (km)", "reported (km)", "loss km", "spent"
    );
    let mut rng = SeededRng::from_seed(99);
    for (t, &x) in trace.iter().enumerate() {
        let outcome = protector.step(x, &mut rng);
        let (z, event) = match outcome {
            StepOutcome::Released(z) => (Some(z), "released"),
            StepOutcome::Reused(z) => (Some(z), "reused"),
            StepOutcome::BudgetExhausted => (None, "BUDGET EXHAUSTED"),
        };
        match z {
            Some(z) => println!(
                "{t:>4}  ({:>6.2}, {:>5.2})  ({:>6.2}, {:>5.2})  {:>9.2}  {:>9.2}  {event}",
                x.x,
                x.y,
                z.x,
                z.y,
                x.dist(z),
                protector.ledger().spent()
            ),
            None => println!(
                "{t:>4}  ({:>6.2}, {:>5.2})  {:>16}  {:>9}  {:>9.2}  {event}",
                x.x,
                x.y,
                "—",
                "—",
                protector.ledger().spent()
            ),
        }
    }
    println!(
        "\n{} fresh releases; {:.2} of {:.2} budget spent; {} more releases affordable",
        protector.releases(),
        protector.ledger().spent(),
        protector.ledger().total(),
        protector.reports_remaining()
    );
}
