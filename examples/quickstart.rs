//! Quickstart: protect a user's location with the multi-step mechanism.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geoind::prelude::*;
use geoind_rng::SeededRng;

fn main() {
    // 1. A city: 20×20 km with a synthetic check-in history standing in for
    //    the Gowalla/Austin data (the real CSV drops in via geoind::data).
    let dataset = SyntheticCity::austin_like().generate_with_size(50_000, 5_000);
    let domain = dataset.domain();
    println!(
        "dataset: {} check-ins from {} users over a {:.0} km square",
        dataset.len(),
        dataset.num_users(),
        domain.side()
    );

    // 2. The adversary's assumed prior: a grid histogram of past check-ins.
    let prior = GridPrior::from_dataset(&dataset, 16);

    // 3. The multi-step mechanism: total budget eps = 0.5, per-level grid
    //    4x4, self-map target rho = 0.8. Budget allocation (the paper's
    //    Algorithm 2) decides the index height.
    let msm = MsmMechanism::builder(domain, prior)
        .epsilon(0.5)
        .granularity(4)
        .rho(0.8)
        .build()
        .expect("valid configuration");
    println!(
        "index height {} (effective {}x{} leaf grid), per-level budgets {:?}",
        msm.height(),
        msm.effective_granularity(),
        msm.effective_granularity(),
        msm.budgets().budgets()
    );

    // 4. Sanitize a location. The same mechanism object serves any number
    //    of queries; per-node channels are solved once and cached.
    let mut rng = SeededRng::from_seed(42);
    let user = dataset.checkins()[17].location;
    let reported = msm.report(user, &mut rng);
    println!(
        "true location  ({:.3}, {:.3}) km\nreported as    ({:.3}, {:.3}) km\nutility loss   {:.3} km",
        user.x,
        user.y,
        reported.x,
        reported.y,
        user.dist(reported)
    );

    // 5. Compare against the planar-Laplace baseline over 1,000 queries.
    let metric = QualityMetric::Euclidean;
    let evaluator = Evaluator::sample_from(&dataset, 1_000, 7);
    let pl =
        PlanarLaplace::new(0.5).with_grid_remap(Grid::new(domain, msm.effective_granularity()));
    println!("\n{}", evaluator.measure(&pl, metric, 1).summary());
    println!("{}", evaluator.measure(&msm, metric, 1).summary());
}
