//! Ingesting real check-in files.
//!
//! The experiments run on synthetic cities because the original dumps are
//! not redistributable — but the loaders speak the genuine formats. This
//! example writes a miniature SNAP-Gowalla file, loads it through the same
//! pipeline, builds a prior and protects a query; point `load_gowalla` at
//! the real `loc-gowalla_totalCheckins.txt` and everything downstream is
//! identical.
//!
//! ```text
//! cargo run --release --example real_data
//! ```

use geoind::data::loader::{load_gowalla, AUSTIN};
use geoind::prelude::*;
use geoind_rng::SeededRng;
use std::io::Write;

fn main() {
    // A miniature of the SNAP layout: user \t time \t lat \t lon \t poi.
    let sample = "\
0\t2010-10-19T23:55:27Z\t30.2357\t-97.7947\t22847
0\t2010-10-18T22:17:43Z\t30.2691\t-97.7494\t420315
1\t2010-10-17T23:42:03Z\t30.2557\t-97.7633\t16516
1\t2010-10-16T18:50:42Z\t30.2634\t-97.7571\t153505
2\t2010-10-14T18:23:55Z\t30.2742\t-97.7405\t420315
2\t2010-10-12T23:58:03Z\t30.2611\t-97.7551\t23261
3\t2010-10-11T20:21:20Z\t30.2691\t-97.7494\t420315
3\t2010-10-09T23:51:22Z\t40.7580\t-73.9855\t999999
";
    let path = std::env::temp_dir().join("geoind-example-gowalla.txt");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(sample.as_bytes()))
        .expect("write sample file");

    // Load, clip to the paper's Austin window, project to the km-plane.
    let dataset = load_gowalla(&path, AUSTIN).expect("parse sample");
    std::fs::remove_file(&path).ok();
    println!(
        "loaded {} check-ins / {} users (1 Times-Square check-in clipped away)",
        dataset.len(),
        dataset.num_users()
    );
    for c in dataset.checkins().iter().take(3) {
        println!(
            "  user {} at ({:.3}, {:.3}) km",
            c.user, c.location.x, c.location.y
        );
    }

    // The rest of the pipeline is dataset-agnostic.
    let prior = GridPrior::from_dataset(&dataset, 8);
    let msm = MsmMechanism::builder(dataset.domain(), prior)
        .epsilon(0.6)
        .granularity(2)
        .build()
        .expect("valid configuration");
    let mut rng = SeededRng::from_seed(1);
    let x = dataset.checkins()[0].location;
    let z = msm.report(x, &mut rng);
    println!(
        "\nprotected the first check-in: ({:.2}, {:.2}) -> ({:.2}, {:.2}), loss {:.2} km",
        x.x,
        x.y,
        z.x,
        z.y,
        x.dist(z)
    );
}
