//! Bayesian adversary attack: what does a curious service actually learn?
//!
//! GeoInd's promise is a bound on *relative* knowledge gain. This example
//! makes that concrete: an adversary with the full check-in prior observes
//! a reported cell and runs the Bayes-optimal remapping attack against the
//! optimal mechanism's (public) channel. We show the expected localization
//! error before and after the observation for several privacy budgets — as
//! ε shrinks, the posterior attack degenerates toward the prior guess.
//!
//! ```text
//! cargo run --release --example adversary_attack
//! ```

use geoind::mechanisms::adversary::BayesianAdversary;
use geoind::prelude::*;

fn main() {
    let dataset = SyntheticCity::austin_like().generate_with_size(60_000, 6_000);
    let domain = dataset.domain();
    let g = 5;
    let grid = Grid::new(domain, g);
    let prior = GridPrior::from_dataset(&dataset, g);
    let metric = QualityMetric::Euclidean;

    println!("Bayes-optimal remapping attack vs OPT on a {g}x{g} grid\n");
    println!(
        "{:>6}  {:>14}  {:>14}  {:>9}",
        "eps", "prior_err(km)", "attack_err(km)", "leak"
    );
    for eps in [0.05, 0.1, 0.3, 0.5, 1.0, 2.0] {
        let opt = OptimalMechanism::on_grid(eps, &grid, &prior, metric).expect("OPT is feasible");
        let adversary = BayesianAdversary::new(prior.probs().to_vec());
        let before = adversary.prior_error(opt.channel(), metric);
        let after = adversary.expected_error(opt.channel(), metric);
        // "leak" = fraction of the adversary's prior uncertainty removed.
        let leak = 1.0 - after / before;
        println!(
            "{eps:>6}  {before:>14.3}  {after:>14.3}  {:>8.1}%",
            leak * 100.0
        );
    }

    println!(
        "\nReading: at tight budgets the observation barely improves the adversary's\n\
         estimate over the prior; at loose budgets the channel gives the location away.\n\
         Either way the GeoInd constraint caps the per-pair posterior/prior ratio at\n\
         e^(eps*d) — background knowledge cannot break the bound, only exploit it."
    );
}
