//! POI finder: the workload from the paper's introduction — "find the
//! nearest restaurant without telling the service where you are".
//!
//! A service indexes POIs in a k-d tree. The client sanitizes its location
//! (PL vs MSM at the same budget), sends the reported point, and receives
//! the nearest POI *to the reported point*. We measure the detour: how much
//! farther that POI is than the true nearest one — exactly the Euclidean
//! utility-loss semantics of the paper — and how often the answer is still
//! the true nearest POI.
//!
//! ```text
//! cargo run --release --example poi_finder
//! ```

use geoind::mechanisms::Mechanism;
use geoind::prelude::*;
use geoind::spatial::kdtree::KdTree;
use geoind_rng::{Rng, SeededRng};

fn main() {
    let dataset = SyntheticCity::vegas_like().generate_with_size(40_000, 4_000);
    let domain = dataset.domain();
    let mut rng = SeededRng::from_seed(2024);

    // The service's POI directory: 400 venues sampled from the check-in
    // distribution (restaurants cluster where people go).
    let pois: Vec<Point> = (0..400)
        .map(|_| dataset.checkins()[rng.gen_range(0..dataset.len())].location)
        .collect();
    let directory = KdTree::build(pois.iter().copied().enumerate().map(|(i, p)| (p, i)));

    // Client-side mechanisms at the same budget.
    let eps = 0.4;
    let prior = GridPrior::from_dataset(&dataset, 16);
    let msm = MsmMechanism::builder(domain, prior)
        .epsilon(eps)
        .granularity(4)
        .build()
        .expect("valid configuration");
    let pl = PlanarLaplace::new(eps);

    println!(
        "nearest-POI retrieval with {} venues, eps = {eps}\n",
        pois.len()
    );
    let queries: Vec<Point> = (0..2_000)
        .map(|_| dataset.checkins()[rng.gen_range(0..dataset.len())].location)
        .collect();

    report("planar Laplace", &pl, &queries, &directory, &mut rng);
    report("multi-step mechanism", &msm, &queries, &directory, &mut rng);
}

fn report<M: Mechanism>(
    label: &str,
    mechanism: &M,
    queries: &[Point],
    directory: &KdTree,
    rng: &mut SeededRng,
) {
    let mut detour = 0.0;
    let mut hits = 0usize;
    for &x in queries {
        let (true_poi, _, true_dist) = directory.nearest(x).expect("non-empty directory");
        let z = mechanism.report(x, rng);
        let (got_poi, _, _) = directory.nearest(z).expect("non-empty directory");
        // The user walks to the POI the service returned.
        detour += x.dist(got_poi) - true_dist;
        if got_poi == true_poi {
            hits += 1;
        }
    }
    let n = queries.len() as f64;
    println!(
        "{label:22}  mean detour {:>6.3} km   exact-nearest hit rate {:>5.1}%",
        detour / n,
        100.0 * hits as f64 / n
    );
}
