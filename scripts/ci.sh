#!/usr/bin/env sh
# Tier-1 verification: everything a clean checkout must pass, fully offline.
#
# The workspace is hermetic by policy (see DESIGN.md §6): every dependency is
# a path crate inside this repository, so `--offline` must always succeed.
# If a build here reaches for the network, a forbidden external dependency
# slipped into a Cargo.toml.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (library code panic-free: unwrap_used denied in lp/core)"
# The lints are declared in the crates themselves
# (`#![cfg_attr(not(test), warn(clippy::unwrap_used))]`); -D warnings
# promotes them (and everything else) to errors here.
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo clippy (production configuration: failpoints compiled out)"
# Without --all-targets no dev-dependency activates the testkit's
# `failpoints` feature, so this lints the exact code a deployment ships:
# failpoint::hit() is a constant false and GEOIND_FAILPOINTS is inert.
cargo clippy --workspace --offline -- -D warnings

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "== fault injection sweep (degradation ladder stays total per armed site)"
# Arm each failpoint site in rotation (see geoind_testkit::failpoint) and
# drive the env-facing resilience binary. Global arming is process-wide,
# hence the dedicated single-test binary and --test-threads=1.
for fp in lp.refactor.singular lp.iterations.exhausted cache.import.corrupt \
          cache.lock.poisoned alloc.budget.infeasible data.loader.truncated \
          certify.channel.violation certify.repair.fail; do
    echo "   -- GEOIND_FAILPOINTS=$fp=*"
    GEOIND_FAILPOINTS="$fp=*" cargo test -q -p geoind-core --offline \
        --test resilience_env -- --test-threads=1
done

echo "== journal crash sweep (ledger recovers >= served spend per armed site)"
# Same rotation for the serving layer's write-ahead journal: fault each
# journal step mid-workload (skip 3 hits, then fire once), crash without a
# checkpoint, and recover — the fail-closed budget invariant must hold.
for fp in serve.journal.append serve.journal.torn serve.journal.flush \
          serve.snapshot.write serve.snapshot.commit serve.wal.reset; do
    echo "   -- GEOIND_FAILPOINTS=$fp=3:1"
    GEOIND_FAILPOINTS="$fp=3:1" cargo test -q -p geoind-serve --offline \
        --test journal_env -- --test-threads=1
done

echo "== closed-loop serve run (seeded workload, books must balance exactly)"
# The release binary drives itself: a bounded-queue worker pool serves a
# seeded workload with per-user budgets, pre-expired deadlines, and a
# graceful drain; any client/server count mismatch exits nonzero.
target/release/geoind serve --self-drive 400 --users 24 --cap 1.6 \
    --eps 0.4 --g 2 --synthetic-size 5000 --workers 4 --queue 32 --seed 7

echo "== doctor run (precompute a bundle, then re-certify every channel)"
# The certification invariant end to end on the release binary: precompute
# a fresh channel bundle, import it through the certify-on-load gate, and
# re-certify every cached channel at the strict tolerance. Any quarantine
# or out-of-bounds LP residual exits nonzero.
DOCTOR_CACHE="$(mktemp /tmp/geoind-ci-cache.XXXXXX)"
trap 'rm -f "$DOCTOR_CACHE"' EXIT
target/release/geoind precompute --out "$DOCTOR_CACHE" \
    --eps 0.4 --g 2 --synthetic-size 5000
target/release/geoind doctor --cache "$DOCTOR_CACHE" \
    --eps 0.4 --g 2 --synthetic-size 5000 --requests 64 --seed 7

echo "== ci: all checks passed"
