#!/usr/bin/env sh
# Tier-1 verification: everything a clean checkout must pass, fully offline.
#
# The workspace is hermetic by policy (see DESIGN.md §6): every dependency is
# a path crate inside this repository, so `--offline` must always succeed.
# If a build here reaches for the network, a forbidden external dependency
# slipped into a Cargo.toml.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (library code panic-free: unwrap_used denied in lp/core)"
# The lints are declared in the crates themselves
# (`#![cfg_attr(not(test), warn(clippy::unwrap_used))]`); -D warnings
# promotes them (and everything else) to errors here.
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo clippy (production configuration: failpoints compiled out)"
# Without --all-targets no dev-dependency activates the testkit's
# `failpoints` feature, so this lints the exact code a deployment ships:
# failpoint::hit() is a constant false and GEOIND_FAILPOINTS is inert.
cargo clippy --workspace --offline -- -D warnings

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "== fault injection sweep (degradation ladder stays total per armed site)"
# Arm each failpoint site in rotation (see geoind_testkit::failpoint) and
# drive the env-facing resilience binary. Global arming is process-wide,
# hence the dedicated single-test binary and --test-threads=1. GEOIND_JOBS=2
# routes the binary's precompute section through the parallel fan-out, so
# each fault is also exercised against the worker pool and the sharded
# single-flight cache.
for fp in lp.refactor.singular lp.iterations.exhausted cache.import.corrupt \
          cache.lock.poisoned alloc.budget.infeasible data.loader.truncated \
          certify.channel.violation certify.repair.fail sample.alias.build; do
    echo "   -- GEOIND_FAILPOINTS=$fp=* GEOIND_JOBS=2"
    GEOIND_FAILPOINTS="$fp=*" GEOIND_JOBS=2 cargo test -q -p geoind-core --offline \
        --test resilience_env -- --test-threads=1
done

echo "== journal crash sweep (ledger recovers >= served spend per armed site)"
# Same rotation for the serving layer's write-ahead journal: fault each
# journal step mid-workload (skip 3 hits, then fire once), crash without a
# checkpoint, and recover — the fail-closed budget invariant must hold.
for fp in serve.journal.append serve.journal.torn serve.journal.flush \
          serve.journal.enospc serve.journal.eio \
          serve.snapshot.write serve.snapshot.commit serve.snapshot.enospc \
          serve.wal.reset; do
    echo "   -- GEOIND_FAILPOINTS=$fp=3:1"
    GEOIND_FAILPOINTS="$fp=3:1" cargo test -q -p geoind-serve --offline \
        --test journal_env -- --test-threads=1
done

echo "== closed-loop serve run (seeded workload, books must balance exactly)"
# The release binary drives itself: a bounded-queue worker pool serves a
# seeded workload with per-user budgets, pre-expired deadlines, and a
# graceful drain; any client/server count mismatch exits nonzero.
target/release/geoind serve --self-drive 400 --users 24 --cap 1.6 \
    --eps 0.4 --g 2 --synthetic-size 5000 --workers 4 --queue 32 --batch 8 \
    --seed 7

echo "== doctor run (precompute a bundle, then re-certify every channel)"
# The certification invariant end to end on the release binary: precompute
# a fresh channel bundle, import it through the certify-on-load gate, and
# re-certify every cached channel at the strict tolerance. Any quarantine
# or out-of-bounds LP residual exits nonzero.
DOCTOR_CACHE="$(mktemp /tmp/geoind-ci-cache.XXXXXX)"
JOBS4_CACHE="$(mktemp /tmp/geoind-ci-cache4.XXXXXX)"
CUTGEN_CACHE="$(mktemp /tmp/geoind-ci-cutgen.XXXXXX)"
trap 'rm -f "$DOCTOR_CACHE" "$JOBS4_CACHE" "$CUTGEN_CACHE"' EXIT
target/release/geoind precompute --out "$DOCTOR_CACHE" \
    --eps 0.4 --g 2 --synthetic-size 5000 --jobs 1
target/release/geoind doctor --cache "$DOCTOR_CACHE" \
    --eps 0.4 --g 2 --synthetic-size 5000 --requests 64 --seed 7

echo "== parallel precompute determinism (--jobs 4 bundle is byte-identical)"
# The donor-first warm-start schedule is the same at every worker count,
# so the exported bundle must not depend on --jobs.
target/release/geoind precompute --out "$JOBS4_CACHE" \
    --eps 0.4 --g 2 --synthetic-size 5000 --jobs 4
cmp "$DOCTOR_CACHE" "$JOBS4_CACHE"

echo "== cutgen doctor run (g=6 spanner cut-generation precompute, wall-budgeted)"
# The cut-generation tentpole end to end on the release binary at a real
# node size (g=6: each node is a 36-location OPT over a 1296-row dual):
# precompute with delayed constraint generation against a spanner target,
# then re-certify the bundle through the certify-on-load gate under the
# same spanner spec — doctor must be told the spec or it would apply the
# full-set tolerance and false-quarantine every channel. `timeout`
# enforces the wall budget: before cut generation this grid cost minutes
# per node, so blowing the budget is a perf regression, not flake.
timeout 300 target/release/geoind precompute --out "$CUTGEN_CACHE" \
    --eps 0.4 --g 6 --synthetic-size 5000 --jobs 1 \
    --constraints spanner:1.2 --cutgen on
timeout 120 target/release/geoind doctor --cache "$CUTGEN_CACHE" \
    --eps 0.4 --g 6 --synthetic-size 5000 --requests 64 --seed 7 \
    --constraints spanner:1.2 --cutgen on

echo "== statistical equivalence suite (seeded chi-square, cannot flake)"
# The flattened-sampling equivalence claims (DESIGN.md §12): exact alias
# row marginals, chi-square fits for the alias/CDF/fused/Laplace paths.
# Every draw is seeded, so the statistics are constants — a failure is a
# real distribution change, never sampling noise.
cargo test -q --offline --test sampling_equiv -- --test-threads=1

echo "== socket smoke (serve --listen + loadgen over loopback, wire faults armed)"
# The networked wire end to end on the release binary: a server with live
# failpoint sites serves a retrying loadgen client while each socket fault
# fires in rotation (skip 2 hits, then fire twice). GEOIND_FAILPOINTS is
# set on the server process only; the client retries through every fault
# and still must reconcile exactly with the server's gate counters.
# NOTE: this rebuild clobbers target/release/geoind with a failpoints
# build, so it must stay after every plain-release gate above.
cargo build --release --offline --features failpoints
WIRE_LOG="$(mktemp /tmp/geoind-ci-wire.XXXXXX)"
WIRE_DIR="/tmp/geoind-ci-wire-ledger.$$"
trap 'rm -f "$DOCTOR_CACHE" "$JOBS4_CACHE" "$CUTGEN_CACHE" "$WIRE_LOG"; rm -rf "$WIRE_DIR"' EXIT
for fp in serve.net.accept serve.net.read_torn serve.net.write_short serve.net.stall; do
    echo "   -- GEOIND_FAILPOINTS=$fp=2:2 (server side only)"
    rm -rf "$WIRE_DIR"
    : > "$WIRE_LOG"
    GEOIND_FAILPOINTS="$fp=2:2" target/release/geoind serve \
        --listen 127.0.0.1:0 --shards 4 --cap 100.0 \
        --eps 0.4 --g 2 --synthetic-size 3000 \
        --workers 2 --queue 16 --read-timeout-ms 300 --seed 7 \
        --ledger-dir "$WIRE_DIR" > "$WIRE_LOG" &
    WIRE_PID=$!
    ADDR=""
    i=0
    while [ "$i" -lt 100 ]; do
        ADDR="$(sed -n 's/^# listening on //p' "$WIRE_LOG")"
        [ -n "$ADDR" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$ADDR" ] || { echo "server never announced its port"; cat "$WIRE_LOG"; exit 1; }
    target/release/geoind loadgen --connect "$ADDR" \
        --requests 60 --connections 3 --users 6 --seed 9 \
        --max-attempts 20 --backoff-ms 5 --shutdown on
    wait "$WIRE_PID"
    grep -q "shed_net=" "$WIRE_LOG" || {
        echo "server report missing wire counters"; cat "$WIRE_LOG"; exit 1;
    }
done

echo "== replication smoke (primary+follower pair, serve.repl.* faults armed in rotation)"
# Warm-standby replication end to end on the release binary: every spend the
# primary serves must first be acked durable by the follower, so the
# retrying client reconciles exactly no matter which replication step
# faults. Each serve.repl.* site fires mid-run (skip 2 hits, then fire
# twice): ship_torn and ack_lost on the primary's shipper, stale_gen in the
# follower's applier.
REPL_P_LOG="$(mktemp /tmp/geoind-ci-repl-p.XXXXXX)"
REPL_F_LOG="$(mktemp /tmp/geoind-ci-repl-f.XXXXXX)"
REPL_P_DIR="/tmp/geoind-ci-repl-primary.$$"
REPL_F_DIR="/tmp/geoind-ci-repl-follower.$$"
trap 'rm -f "$DOCTOR_CACHE" "$JOBS4_CACHE" "$CUTGEN_CACHE" "$WIRE_LOG" "$REPL_P_LOG" "$REPL_F_LOG"; rm -rf "$WIRE_DIR" "$REPL_P_DIR" "$REPL_F_DIR"' EXIT
for fp in serve.repl.ship_torn serve.repl.ack_lost serve.repl.stale_gen; do
    if [ "$fp" = "serve.repl.stale_gen" ]; then
        P_FP=""; F_FP="$fp=2:2"
    else
        P_FP="$fp=2:2"; F_FP=""
    fi
    echo "   -- primary GEOIND_FAILPOINTS='$P_FP' follower GEOIND_FAILPOINTS='$F_FP'"
    rm -rf "$REPL_P_DIR" "$REPL_F_DIR"
    : > "$REPL_P_LOG"
    : > "$REPL_F_LOG"
    GEOIND_FAILPOINTS="$P_FP" target/release/geoind serve \
        --listen 127.0.0.1:0 --shards 4 --cap 100.0 --max-replica-lag 8 \
        --eps 0.4 --g 2 --synthetic-size 3000 \
        --workers 2 --queue 16 --read-timeout-ms 300 --seed 7 \
        --ledger-dir "$REPL_P_DIR" > "$REPL_P_LOG" &
    REPL_P_PID=$!
    P_ADDR=""
    i=0
    while [ "$i" -lt 100 ]; do
        P_ADDR="$(sed -n 's/^# listening on //p' "$REPL_P_LOG")"
        [ -n "$P_ADDR" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$P_ADDR" ] || { echo "replication primary never announced its port"; cat "$REPL_P_LOG"; exit 1; }
    GEOIND_FAILPOINTS="$F_FP" target/release/geoind serve \
        --listen 127.0.0.1:0 --shards 4 --cap 100.0 --follow "$P_ADDR" \
        --eps 0.4 --g 2 --synthetic-size 3000 \
        --workers 2 --queue 16 --read-timeout-ms 300 --seed 7 \
        --ledger-dir "$REPL_F_DIR" > "$REPL_F_LOG" &
    REPL_F_PID=$!
    i=0
    while [ "$i" -lt 100 ]; do
        grep -q "registered: true" "$REPL_F_LOG" && break
        sleep 0.1
        i=$((i + 1))
    done
    grep -q "registered: true" "$REPL_F_LOG" || { echo "follower never registered"; cat "$REPL_F_LOG"; exit 1; }
    target/release/geoind loadgen --connect "$P_ADDR" \
        --requests 60 --connections 3 --users 6 --seed 9 \
        --max-attempts 20 --backoff-ms 5 --shutdown on
    wait "$REPL_P_PID"
    kill -TERM "$REPL_F_PID" 2>/dev/null || true
    wait "$REPL_F_PID" || true
    grep -q "replica_lag=" "$REPL_P_LOG" || {
        echo "primary report missing replication counters"; cat "$REPL_P_LOG"; exit 1;
    }
done

echo "== failover drill (kill -9 the primary mid-load; fenced revival proven)"
# The warm-standby tentpole end to end: a replicating primary is killed -9
# under live load; the client detects the loss, promotes the follower and
# re-points (SIGUSR1 doubles as the operator fallback for the race where
# the load finishes first), and the run must still reconcile — exact
# against live endpoints, provable bounds for the counters the dead
# primary took with it. Then the stale primary is revived on its old
# ledger: its first spend must be refused fenced, proven by fenced= in its
# own final report line.
DRILL_P_LOG="$(mktemp /tmp/geoind-ci-drill-p.XXXXXX)"
DRILL_F_LOG="$(mktemp /tmp/geoind-ci-drill-f.XXXXXX)"
DRILL_P_DIR="/tmp/geoind-ci-drill-primary.$$"
DRILL_F_DIR="/tmp/geoind-ci-drill-follower.$$"
trap 'rm -f "$DOCTOR_CACHE" "$JOBS4_CACHE" "$CUTGEN_CACHE" "$WIRE_LOG" "$REPL_P_LOG" "$REPL_F_LOG" "$DRILL_P_LOG" "$DRILL_F_LOG"; rm -rf "$WIRE_DIR" "$REPL_P_DIR" "$REPL_F_DIR" "$DRILL_P_DIR" "$DRILL_F_DIR"' EXIT
target/release/geoind serve \
    --listen 127.0.0.1:0 --shards 4 --cap 400.0 --max-replica-lag 16 \
    --eps 0.4 --g 2 --synthetic-size 3000 \
    --workers 2 --queue 16 --read-timeout-ms 300 --seed 7 \
    --ledger-dir "$DRILL_P_DIR" > "$DRILL_P_LOG" &
DRILL_P_PID=$!
DRILL_P_ADDR=""
i=0
while [ "$i" -lt 100 ]; do
    DRILL_P_ADDR="$(sed -n 's/^# listening on //p' "$DRILL_P_LOG")"
    [ -n "$DRILL_P_ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
[ -n "$DRILL_P_ADDR" ] || { echo "drill primary never announced its port"; cat "$DRILL_P_LOG"; exit 1; }
target/release/geoind serve \
    --listen 127.0.0.1:0 --shards 4 --cap 400.0 --follow "$DRILL_P_ADDR" \
    --eps 0.4 --g 2 --synthetic-size 3000 \
    --workers 2 --queue 16 --read-timeout-ms 300 --seed 7 \
    --ledger-dir "$DRILL_F_DIR" > "$DRILL_F_LOG" &
DRILL_F_PID=$!
DRILL_F_ADDR=""
i=0
while [ "$i" -lt 100 ]; do
    DRILL_F_ADDR="$(sed -n 's/^# listening on //p' "$DRILL_F_LOG")"
    [ -n "$DRILL_F_ADDR" ] && grep -q "registered: true" "$DRILL_F_LOG" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q "registered: true" "$DRILL_F_LOG" || { echo "drill follower never registered"; cat "$DRILL_F_LOG"; exit 1; }
target/release/geoind loadgen --connect "$DRILL_P_ADDR" --failover "$DRILL_F_ADDR" \
    --requests 4000 --connections 4 --users 8 --seed 11 \
    --max-attempts 40 --backoff-ms 5 --retry-budget 8000 &
DRILL_LOAD_PID=$!
sleep 1
kill -9 "$DRILL_P_PID" 2>/dev/null || true
kill -USR1 "$DRILL_F_PID" 2>/dev/null || true
wait "$DRILL_LOAD_PID" || { echo "failover load did not reconcile"; cat "$DRILL_F_LOG"; exit 1; }
wait "$DRILL_P_PID" 2>/dev/null || true
# Revive the stale primary on its crashed ledger: it recovers, resumes
# shipping to its persisted peer, and the promoted follower's newer fence
# generation must refuse it before a single stale record lands.
: > "$DRILL_P_LOG"
target/release/geoind serve \
    --listen 127.0.0.1:0 --shards 4 --cap 400.0 --max-replica-lag 16 \
    --eps 0.4 --g 2 --synthetic-size 3000 \
    --workers 2 --queue 16 --read-timeout-ms 300 --seed 7 \
    --ledger-dir "$DRILL_P_DIR" > "$DRILL_P_LOG" &
DRILL_P_PID=$!
STALE_ADDR=""
i=0
while [ "$i" -lt 100 ]; do
    STALE_ADDR="$(sed -n 's/^# listening on //p' "$DRILL_P_LOG")"
    [ -n "$STALE_ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
[ -n "$STALE_ADDR" ] || { echo "revived primary never announced its port"; cat "$DRILL_P_LOG"; exit 1; }
if target/release/geoind loadgen --connect "$STALE_ADDR" \
    --requests 6 --connections 1 --users 2 --seed 3 \
    --max-attempts 3 --backoff-ms 5; then
    echo "revived stale primary served a spend"; cat "$DRILL_P_LOG"; exit 1
fi
kill -TERM "$DRILL_P_PID" 2>/dev/null || true
wait "$DRILL_P_PID" || true
grep -Eq "fenced=[1-9]" "$DRILL_P_LOG" || {
    echo "stale primary was never fenced"; cat "$DRILL_P_LOG"; exit 1;
}
kill -TERM "$DRILL_F_PID" 2>/dev/null || true
wait "$DRILL_F_PID" || true
grep -q "served=" "$DRILL_F_LOG" || {
    echo "promoted follower report missing"; cat "$DRILL_F_LOG"; exit 1;
}

echo "== chaos soak (~60s of rotating disk faults; books balance, shards self-heal)"
# Rotating randomized disk-fault specs against the auto-repair server: each
# round arms a fresh combination of ENOSPC / transient-EIO sites, drives a
# retrying load, and requires *exact* reconciliation (loadgen exits nonzero
# on any mismatch). Across the soak at least one shard must prove the full
# quarantine -> scavenge -> verified re-admission round trip, observable as
# repaired_shards >= 1 in a server's final report. SOAK_SEED reproduces a
# run exactly.
SOAK_SEED="${SOAK_SEED:-$(date +%s)}"
echo "   -- SOAK_SEED=$SOAK_SEED (export SOAK_SEED to reproduce)"
SOAK_LOG="$(mktemp /tmp/geoind-ci-soak.XXXXXX)"
SOAK_DIR="/tmp/geoind-ci-soak-ledger.$$"
trap 'rm -f "$DOCTOR_CACHE" "$JOBS4_CACHE" "$CUTGEN_CACHE" "$WIRE_LOG" "$REPL_P_LOG" "$REPL_F_LOG" "$DRILL_P_LOG" "$DRILL_F_LOG" "$SOAK_LOG"; rm -rf "$WIRE_DIR" "$REPL_P_DIR" "$REPL_F_DIR" "$DRILL_P_DIR" "$DRILL_F_DIR" "$SOAK_DIR"' EXIT
SOAK_END=$(( $(date +%s) + 60 ))
SOAK_STATE=$SOAK_SEED
SOAK_ROUNDS=0
SOAK_REPAIRED=0
while [ "$(date +%s)" -lt "$SOAK_END" ]; do
    SOAK_ROUNDS=$((SOAK_ROUNDS + 1))
    SOAK_STATE=$(( (SOAK_STATE * 1103515245 + 12345) % 2147483648 ))
    case $((SOAK_STATE % 3)) in
        # A burst of consecutive ENOSPC appends: strikes out (quarantines)
        # every shard it lands on three times in a row; auto-repair must
        # scavenge it back while the load keeps retrying.
        0) SOAK_FP="serve.journal.enospc=$((SOAK_STATE % 7 + 4)):40" ;;
        # Transient EIO: absorbed by the bounded in-place retry, at most a
        # bounded tail of typed refusals the client retries through.
        1) SOAK_FP="serve.journal.eio=$((SOAK_STATE % 11)):6" ;;
        # Transient EIO layered on an ENOSPC burst: the bounded in-place
        # retry and the quarantine/repair path fire in the same run.
        2) SOAK_FP="serve.journal.eio=$((SOAK_STATE % 5)):4,serve.journal.enospc=$((SOAK_STATE % 9 + 8)):40" ;;
    esac
    echo "   -- round $SOAK_ROUNDS: GEOIND_FAILPOINTS=$SOAK_FP"
    rm -rf "$SOAK_DIR"
    : > "$SOAK_LOG"
    GEOIND_FAILPOINTS="$SOAK_FP" target/release/geoind serve \
        --listen 127.0.0.1:0 --shards 4 --cap 100.0 --repair auto \
        --eps 0.4 --g 2 --synthetic-size 3000 \
        --workers 2 --queue 16 --read-timeout-ms 300 --seed 7 \
        --ledger-dir "$SOAK_DIR" > "$SOAK_LOG" &
    SOAK_PID=$!
    ADDR=""
    i=0
    while [ "$i" -lt 100 ]; do
        ADDR="$(sed -n 's/^# listening on //p' "$SOAK_LOG")"
        [ -n "$ADDR" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$ADDR" ] || { echo "soak server never announced its port"; cat "$SOAK_LOG"; exit 1; }
    target/release/geoind loadgen --connect "$ADDR" \
        --requests 80 --connections 4 --users 8 --seed "$((SOAK_STATE % 1000))" \
        --max-attempts 40 --backoff-ms 5 --shutdown on
    wait "$SOAK_PID"
    grep -Eq "repaired_shards=[1-9]" "$SOAK_LOG" && SOAK_REPAIRED=1
done
echo "   -- soak rounds: $SOAK_ROUNDS"
[ "$SOAK_REPAIRED" -eq 1 ] || {
    echo "chaos soak never round-tripped a shard repair"; cat "$SOAK_LOG"; exit 1;
}

echo "== bench smoke (bench.sh artifacts parse and report speedup >= 1.0)"
# The full benchmarks are generated by scripts/bench.sh; here we only
# check the committed artifacts still parse and their headlines never
# regress below break-even, so this gate cannot flake on machine load.
sh scripts/check_bench.sh BENCH_precompute.json
sh scripts/check_bench.sh BENCH_sample.json
sh scripts/check_bench.sh BENCH_serve.json

echo "== ci: all checks passed"
