#!/usr/bin/env sh
# Tier-1 verification: everything a clean checkout must pass, fully offline.
#
# The workspace is hermetic by policy (see DESIGN.md §6): every dependency is
# a path crate inside this repository, so `--offline` must always succeed.
# If a build here reaches for the network, a forbidden external dependency
# slipped into a Cargo.toml.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "== ci: all checks passed"
