#!/usr/bin/env sh
# Tier-1 verification: everything a clean checkout must pass, fully offline.
#
# The workspace is hermetic by policy (see DESIGN.md §6): every dependency is
# a path crate inside this repository, so `--offline` must always succeed.
# If a build here reaches for the network, a forbidden external dependency
# slipped into a Cargo.toml.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (library code panic-free: unwrap_used denied in lp/core)"
# The lints are declared in the crates themselves
# (`#![cfg_attr(not(test), warn(clippy::unwrap_used))]`); -D warnings
# promotes them (and everything else) to errors here.
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo clippy (production configuration: failpoints compiled out)"
# Without --all-targets no dev-dependency activates the testkit's
# `failpoints` feature, so this lints the exact code a deployment ships:
# failpoint::hit() is a constant false and GEOIND_FAILPOINTS is inert.
cargo clippy --workspace --offline -- -D warnings

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "== fault injection sweep (degradation ladder stays total per armed site)"
# Arm each failpoint site in rotation (see geoind_testkit::failpoint) and
# drive the env-facing resilience binary. Global arming is process-wide,
# hence the dedicated single-test binary and --test-threads=1.
for fp in lp.refactor.singular lp.iterations.exhausted cache.import.corrupt \
          cache.lock.poisoned alloc.budget.infeasible data.loader.truncated; do
    echo "   -- GEOIND_FAILPOINTS=$fp=*"
    GEOIND_FAILPOINTS="$fp=*" cargo test -q -p geoind-core --offline \
        --test resilience_env -- --test-threads=1
done

echo "== ci: all checks passed"
