#!/usr/bin/env sh
# Regenerate the committed bench artifacts:
#
#   BENCH_precompute.json — wall-clock and simplex pivot counts for the
#   parallel precompute path, over the four-cell grid
#   {--jobs 1, --jobs max} x {cold, warm-started}.
#   BENCH_sample.json — ns/op for the served sampling hot path: the
#   pre-flattening seed walk vs the fused flattened-tree walk, single
#   and batched.
#
# The headline `speedup` compares the old sequential cold implementation
# (jobs=1, cold) against the full new path (jobs=max, warm) — the upgrade a
# user actually experiences. On a single-core box the thread fan-out
# contributes nothing, so the speedup there is the warm-start pivot saving
# alone; the JSON records `cores` so readers can tell which regime produced
# it. `pivot_reduction` isolates the warm-start effect at jobs=1.
#
# Knobs (env): BENCH_G (granularity, default 5), BENCH_H (height, 2),
# BENCH_EPS (0.5), BENCH_JOBS (all cores). The defaults keep a full run in
# the order of a couple of minutes on one core: height 2 gives 1 + g^2
# internal nodes (each level fans g^2 warm-started siblings off one donor),
# while height 3 multiplies the node count by g^2 again and larger grids
# scale the per-node LP as ~g^6 per pivot — raise either only on real
# hardware.
set -eu

cd "$(dirname "$0")/.."

G="${BENCH_G:-5}"
H="${BENCH_H:-2}"
EPS="${BENCH_EPS:-0.5}"
JOBS="${BENCH_JOBS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)}"

echo "== build bench harness (release, offline)"
cargo build -p geoind-bench --release --offline

echo "== precompute grid: g=$G height=$H eps=$EPS jobs-max=$JOBS"
target/release/bench_precompute precompute \
    --g "$G" --height "$H" --eps "$EPS" --jobs-max "$JOBS" \
    > BENCH_precompute.json
cat BENCH_precompute.json

echo "== smoke-check the artifact"
sh scripts/check_bench.sh BENCH_precompute.json

# The sampling bench wants the failpoints feature so it can reconstruct
# the pre-flattening seed path as its baseline cell (arming
# sample.alias.build during admission); rebuilding here is cheap and the
# precompute artifact above is already captured.
SG="${BENCH_SAMPLE_G:-4}"
SH="${BENCH_SAMPLE_H:-3}"
SEPS="${BENCH_SAMPLE_EPS:-0.5}"
SREQ="${BENCH_SAMPLE_REQUESTS:-400000}"
SBATCH="${BENCH_SAMPLE_BATCH:-256}"

echo "== build sampling bench (release, offline, failpoints)"
cargo build -p geoind-bench --release --offline --features failpoints

echo "== sampling hot path: g=$SG height=$SH eps=$SEPS requests=$SREQ batch=$SBATCH"
target/release/bench_sample \
    --g "$SG" --height "$SH" --eps "$SEPS" \
    --requests "$SREQ" --batch "$SBATCH" \
    > BENCH_sample.json
cat BENCH_sample.json

echo "== smoke-check the artifact"
sh scripts/check_bench.sh BENCH_sample.json
