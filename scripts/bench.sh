#!/usr/bin/env sh
# Regenerate the committed bench artifacts:
#
#   BENCH_precompute.json — wall-clock and simplex pivot counts for the
#   parallel precompute path, over the four-cell grid
#   {--jobs 1, --jobs max} x {cold, warm-started}.
#   BENCH_sample.json — ns/op for the served sampling hot path: the
#   pre-flattening seed walk vs the fused flattened-tree walk, single
#   and batched.
#   BENCH_serve.json — throughput and latency percentiles for the
#   networked wire (serve --listen + loadgen over loopback), one steady
#   phase and one deliberate-overload phase; both must reconcile exactly.
#
# The headline `speedup` compares the old sequential cold implementation
# (jobs=1, cold) against the full new path (jobs=max, warm) — the upgrade a
# user actually experiences. On a single-core box the thread fan-out
# contributes nothing, so the speedup there is the warm-start pivot saving
# alone; the JSON records `cores` so readers can tell which regime produced
# it. `pivot_reduction` isolates the warm-start effect at jobs=1.
#
# Knobs (env): BENCH_G (granularity, default 5), BENCH_H (height, 2),
# BENCH_EPS (0.5), BENCH_JOBS (all cores). The defaults keep a full run in
# the order of a couple of minutes on one core: height 2 gives 1 + g^2
# internal nodes (each level fans g^2 warm-started siblings off one donor),
# while height 3 multiplies the node count by g^2 again and larger grids
# scale the per-node LP as ~g^6 per pivot — raise either only on real
# hardware.
set -eu

cd "$(dirname "$0")/.."

G="${BENCH_G:-5}"
H="${BENCH_H:-2}"
EPS="${BENCH_EPS:-0.5}"
JOBS="${BENCH_JOBS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)}"

echo "== build bench harness (release, offline)"
cargo build -p geoind-bench --release --offline

echo "== precompute grid: g=$G height=$H eps=$EPS jobs-max=$JOBS"
target/release/bench_precompute precompute \
    --g "$G" --height "$H" --eps "$EPS" --jobs-max "$JOBS" \
    > BENCH_precompute.json
cat BENCH_precompute.json

echo "== smoke-check the artifact"
sh scripts/check_bench.sh BENCH_precompute.json

# precompute-cutgen: single-node OPT wall time across constraint
# strategies — the full materialized set vs delayed constraint
# generation at a tractable grid, then cut generation at the headline
# grid (the node that DNF'd before cut generation existed) under both
# the exact Full target and the Spanner (δ·ε) target. The rows merge
# into BENCH_precompute.json next to the jobs grid so one committed
# artifact carries the whole precompute story.
CG="${BENCH_CUTGEN_G:-8}"
CGS="${BENCH_CUTGEN_G_SMALL:-6}"
CGEPS="${BENCH_CUTGEN_EPS:-0.7}"
CGD="${BENCH_CUTGEN_DILATION:-1.2}"

echo "== precompute-cutgen: headline g=$CG, on/off comparison g=$CGS, spanner dilation=$CGD"
target/release/bench_precompute cutgen \
    --g "$CG" --g-small "$CGS" --eps "$CGEPS" --dilation "$CGD" \
    > /tmp/geoind-bench-cutgen.json

python3 - BENCH_precompute.json /tmp/geoind-bench-cutgen.json <<'EOF' > /tmp/geoind-bench-merged.json
import json, sys
pre = json.load(open(sys.argv[1]))
cut = json.load(open(sys.argv[2]))
pre["cells"].extend(cut["cells"])
pre["cutgen_g"] = cut["g"]
pre["cutgen_eps"] = cut["eps"]
pre["cutgen_speedup"] = cut["cutgen_speedup"]
pre["spanner_speedup"] = cut["spanner_speedup"]
json.dump(pre, sys.stdout, indent=1)
print()
EOF
mv /tmp/geoind-bench-merged.json BENCH_precompute.json
rm -f /tmp/geoind-bench-cutgen.json
cat BENCH_precompute.json

echo "== smoke-check the merged artifact"
sh scripts/check_bench.sh BENCH_precompute.json

# The sampling bench wants the failpoints feature so it can reconstruct
# the pre-flattening seed path as its baseline cell (arming
# sample.alias.build during admission); rebuilding here is cheap and the
# precompute artifact above is already captured.
SG="${BENCH_SAMPLE_G:-4}"
SH="${BENCH_SAMPLE_H:-3}"
SEPS="${BENCH_SAMPLE_EPS:-0.5}"
SREQ="${BENCH_SAMPLE_REQUESTS:-400000}"
SBATCH="${BENCH_SAMPLE_BATCH:-256}"

echo "== build sampling bench (release, offline, failpoints)"
cargo build -p geoind-bench --release --offline --features failpoints

echo "== sampling hot path: g=$SG height=$SH eps=$SEPS requests=$SREQ batch=$SBATCH"
target/release/bench_sample \
    --g "$SG" --height "$SH" --eps "$SEPS" \
    --requests "$SREQ" --batch "$SBATCH" \
    > BENCH_sample.json
cat BENCH_sample.json

echo "== smoke-check the artifact"
sh scripts/check_bench.sh BENCH_sample.json

# BENCH_serve.json — the networked wire under a steady closed loop and
# under deliberate overload (tiny admission queue, more connections than
# workers). Each phase is a full serve --listen + loadgen exchange whose
# tallies must reconcile exactly, so the artifact is only ever produced
# from a balanced run. Failpoints stay compiled out here: this measures
# the deployment configuration.
WREQ="${BENCH_SERVE_REQUESTS:-2000}"

echo "== build CLI (release, offline, production configuration)"
cargo build --release --offline

run_serve_phase() {
    # $1 label  $2 queue  $3 workers  $4 batch  $5 connections  $6 out.json
    _log="$(mktemp /tmp/geoind-bench-serve.XXXXXX)"
    _dir="$(mktemp -d /tmp/geoind-bench-ledger.XXXXXX)"
    rm -rf "$_dir"
    target/release/geoind serve --listen 127.0.0.1:0 \
        --shards 4 --cap 1000000 --eps 0.4 --g 2 --synthetic-size 3000 \
        --queue "$2" --workers "$3" --batch "$4" --seed 7 \
        --ledger-dir "$_dir" > "$_log" &
    _pid=$!
    _addr=""
    _i=0
    while [ "$_i" -lt 200 ]; do
        _addr="$(sed -n 's/^# listening on //p' "$_log")"
        [ -n "$_addr" ] && break
        sleep 0.1
        _i=$((_i + 1))
    done
    [ -n "$_addr" ] || { echo "serve --listen never announced its port"; cat "$_log"; exit 1; }
    target/release/geoind loadgen --connect "$_addr" \
        --requests "$WREQ" --connections "$5" --users 64 --seed 9 \
        --max-attempts 40 --backoff-ms 2 --shutdown on \
        --json-out "$6" --label "$1"
    wait "$_pid"
    rm -f "$_log"
    rm -rf "$_dir"
}

echo "== serve wire: steady phase ($WREQ requests, roomy queue)"
run_serve_phase steady 64 4 8 4 /tmp/geoind-bench-steady.json

echo "== serve wire: overload phase ($WREQ requests, queue=2, 8 connections)"
run_serve_phase overload 2 1 1 8 /tmp/geoind-bench-overload.json

python3 - /tmp/geoind-bench-steady.json /tmp/geoind-bench-overload.json <<'EOF' > BENCH_serve.json
import json, sys
cells = [json.load(open(p)) for p in sys.argv[1:3]]
overload = next(c for c in cells if c["label"] == "overload")
# Shed responses per terminal request under overload; a request can be
# shed more than once before landing, so this is a rate, not a fraction.
shed_rate = overload["shed_seen"] / overload["requests"]
json.dump({"bench": "serve", "overload_shed_rate": shed_rate, "cells": cells},
          sys.stdout, indent=1)
print()
EOF
rm -f /tmp/geoind-bench-steady.json /tmp/geoind-bench-overload.json
cat BENCH_serve.json

echo "== smoke-check the artifact"
sh scripts/check_bench.sh BENCH_serve.json
