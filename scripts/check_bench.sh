#!/usr/bin/env sh
# CI smoke for BENCH_precompute.json: the file must parse as JSON and its
# headline speedup must not regress below break-even. Deliberately nothing
# else — wall-clock numbers depend on machine load, so any threshold
# tighter than ">= 1.0 vs the old sequential implementation" would flake.
set -eu

FILE="${1:-BENCH_precompute.json}"

python3 - "$FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    data = json.load(f)

cells = data["cells"]
assert isinstance(cells, list) and cells, "bench artifact has no cells"
for cell in cells:
    assert cell["wall_s"] > 0, f"non-positive wall clock: {cell}"
    assert cell["pivots"] >= 0, f"negative pivot count: {cell}"
speedup = float(data["speedup"])
assert speedup >= 1.0, f"speedup regressed below break-even: {speedup}"
print(
    f"bench ok ({path}): speedup {speedup:.2f}x over sequential cold, "
    f"pivot reduction {float(data['pivot_reduction']) * 100:.1f}% "
    f"warm vs cold, {int(data['cores'])} core(s)"
)
EOF
