#!/usr/bin/env sh
# CI smoke for committed bench artifacts (BENCH_precompute.json,
# BENCH_sample.json): the file must parse as JSON and its headline speedup
# must not regress below break-even. Deliberately nothing else —
# wall-clock numbers depend on machine load, so any threshold tighter
# than ">= 1.0 vs the pre-optimization path" would flake.
set -eu

FILE="${1:-BENCH_precompute.json}"

python3 - "$FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    data = json.load(f)

cells = data["cells"]
assert isinstance(cells, list) and cells, "bench artifact has no cells"

if data.get("bench") == "sample":
    # bench_sample: ns/op cells over the serving hot path.
    paths = [cell["path"] for cell in cells]
    for cell in cells:
        assert cell["wall_s"] > 0, f"non-positive wall clock: {cell}"
        assert cell["ns_per_op"] > 0, f"non-positive ns/op: {cell}"
        assert cell["requests"] > 0, f"no requests timed: {cell}"
    for required in ("unfused_alias", "fused", "fused_batched"):
        assert required in paths, f"missing bench cell: {required}"
    baseline = data["baseline"]
    assert baseline in paths, f"baseline {baseline!r} has no cell"
    speedup = float(data["speedup"])
    batched = float(data["batched_speedup"])
    assert speedup >= 1.0, f"fused speedup regressed below break-even: {speedup}"
    assert batched >= 1.0, f"batched speedup regressed below break-even: {batched}"
    by_path = {cell["path"]: cell for cell in cells}
    print(
        f"bench ok ({path}): fused {by_path['fused']['ns_per_op']:.0f} ns/op, "
        f"{speedup:.2f}x over {baseline}, batched {batched:.2f}x, "
        f"{int(data['cores'])} core(s)"
    )
elif data.get("bench") == "serve":
    # bench.sh serve phases: loadgen artifacts over the networked wire.
    # Only invariants that cannot flake on machine load: a reconciled
    # loadgen run accounts for every request exactly once, latency
    # percentiles are ordered, and the steady phase actually serves.
    by_label = {cell["label"]: cell for cell in cells}
    for required in ("steady", "overload"):
        assert required in by_label, f"missing serve phase: {required}"
    for cell in cells:
        assert cell["wall_s"] > 0, f"non-positive wall clock: {cell}"
        assert cell["requests"] > 0, f"no requests driven: {cell}"
        assert cell["req_per_s"] > 0, f"non-positive throughput: {cell}"
        assert 0 <= cell["p50_ms"] <= cell["p99_ms"], f"latency percentiles out of order: {cell}"
        terminal = (
            cell["served"] + cell["refused"] + cell["expired"] + cell["journal_faults"]
        )
        assert terminal == cell["requests"], (
            f"reconciled run must account for every request exactly once: {cell}"
        )
        for key in ("retries", "shed_seen", "torn_seen", "server_retried"):
            assert cell[key] >= 0, f"negative counter {key}: {cell}"
    assert by_label["steady"]["served"] > 0, "steady phase served nothing"
    shed_rate = float(data["overload_shed_rate"])
    assert shed_rate >= 0, f"negative shed rate: {shed_rate}"
    print(
        f"bench ok ({path}): steady {by_label['steady']['req_per_s']:.0f} req/s "
        f"p99 {by_label['steady']['p99_ms']:.1f} ms, overload "
        f"{by_label['overload']['req_per_s']:.0f} req/s shedding "
        f"{shed_rate:.2f} refusals/request, all retried to terminal"
    )
else:
    # bench=precompute (and legacy artifacts without a "bench" tag): the
    # jobs×warm grid plus, since the cut-generation work, single-node
    # OPT rows keyed by constraint strategy. Only load-independent
    # invariants — structural row accounting, certified losses, and the
    # two headline speedups at break-even (the same bar the jobs grid
    # has always used; the measured ratios sit far above it).
    jobs_cells = [cell for cell in cells if "jobs" in cell]
    cut_cells = [cell for cell in cells if "constraints" in cell]
    assert jobs_cells, "precompute artifact lost its jobs grid"
    for cell in cells:
        assert cell["wall_s"] > 0, f"non-positive wall clock: {cell}"
        assert cell["pivots"] >= 0, f"negative pivot count: {cell}"
    for cell in cut_cells:
        strategy = cell["constraints"].split(":")[0]
        assert strategy in ("full", "spanner"), f"unknown strategy: {cell}"
        assert isinstance(cell["cutgen"], bool), f"cutgen must be a bool: {cell}"
        assert cell["g"] >= 2, f"degenerate grid: {cell}"
        assert 0 < cell["rows_active"] <= cell["rows_total"], (
            f"working set must be a nonempty subset of the target rows: {cell}"
        )
        if cell["cutgen"]:
            assert cell["cut_rounds"] >= 1, f"cutgen solve took no rounds: {cell}"
        else:
            assert cell["cut_rounds"] == 0, f"eager solve reported rounds: {cell}"
        assert cell["loss"] > 0, f"non-positive expected loss: {cell}"
    speedup = float(data["speedup"])
    assert speedup >= 1.0, f"speedup regressed below break-even: {speedup}"
    line = (
        f"bench ok ({path}): speedup {speedup:.2f}x over sequential cold, "
        f"pivot reduction {float(data['pivot_reduction']) * 100:.1f}% "
        f"warm vs cold, {int(data['cores'])} core(s)"
    )
    if cut_cells:
        strategies = {(cell["constraints"].split(":")[0], cell["cutgen"]) for cell in cut_cells}
        assert ("full", True) in strategies, "missing full-target cutgen row"
        assert any(s == "spanner" for s, _ in strategies), "missing spanner row"
        # cutgen_speedup is eager/cutgen wall at the headline grid — a
        # *finding*, not a gate: the engine-level work made the eager
        # build competitive again, so the honest ratio can sit below 1
        # (see DESIGN.md §16). Only the spanner ratio is structural
        # (strictly smaller program, same solve path) and must not
        # regress below break-even.
        cutgen_speedup = float(data["cutgen_speedup"])
        spanner_speedup = float(data["spanner_speedup"])
        assert cutgen_speedup > 0, f"non-positive cutgen ratio: {cutgen_speedup}"
        assert spanner_speedup >= 1.0, (
            f"spanner sparsification regressed below break-even: {spanner_speedup}"
        )
        headline = max(
            (c for c in cut_cells if c["constraints"] == "full" and c["cutgen"]),
            key=lambda c: c["g"],
        )
        line += (
            f"; g={headline['g']} exact optimum via cutgen in "
            f"{headline['wall_s']:.0f}s "
            f"({headline['rows_active']}/{headline['rows_total']} rows, "
            f"eager/cutgen {cutgen_speedup:.2f}x), "
            f"spanner {spanner_speedup:.2f}x on top"
        )
    print(line)
EOF
