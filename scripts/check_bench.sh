#!/usr/bin/env sh
# CI smoke for committed bench artifacts (BENCH_precompute.json,
# BENCH_sample.json): the file must parse as JSON and its headline speedup
# must not regress below break-even. Deliberately nothing else —
# wall-clock numbers depend on machine load, so any threshold tighter
# than ">= 1.0 vs the pre-optimization path" would flake.
set -eu

FILE="${1:-BENCH_precompute.json}"

python3 - "$FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    data = json.load(f)

cells = data["cells"]
assert isinstance(cells, list) and cells, "bench artifact has no cells"

if data.get("bench") == "sample":
    # bench_sample: ns/op cells over the serving hot path.
    paths = [cell["path"] for cell in cells]
    for cell in cells:
        assert cell["wall_s"] > 0, f"non-positive wall clock: {cell}"
        assert cell["ns_per_op"] > 0, f"non-positive ns/op: {cell}"
        assert cell["requests"] > 0, f"no requests timed: {cell}"
    for required in ("unfused_alias", "fused", "fused_batched"):
        assert required in paths, f"missing bench cell: {required}"
    baseline = data["baseline"]
    assert baseline in paths, f"baseline {baseline!r} has no cell"
    speedup = float(data["speedup"])
    batched = float(data["batched_speedup"])
    assert speedup >= 1.0, f"fused speedup regressed below break-even: {speedup}"
    assert batched >= 1.0, f"batched speedup regressed below break-even: {batched}"
    by_path = {cell["path"]: cell for cell in cells}
    print(
        f"bench ok ({path}): fused {by_path['fused']['ns_per_op']:.0f} ns/op, "
        f"{speedup:.2f}x over {baseline}, batched {batched:.2f}x, "
        f"{int(data['cores'])} core(s)"
    )
else:
    for cell in cells:
        assert cell["wall_s"] > 0, f"non-positive wall clock: {cell}"
        assert cell["pivots"] >= 0, f"negative pivot count: {cell}"
    speedup = float(data["speedup"])
    assert speedup >= 1.0, f"speedup regressed below break-even: {speedup}"
    print(
        f"bench ok ({path}): speedup {speedup:.2f}x over sequential cold, "
        f"pivot reduction {float(data['pivot_reduction']) * 100:.1f}% "
        f"warm vs cold, {int(data['cores'])} core(s)"
    )
EOF
