//! Minimal JSON used by the wire protocol — parse, navigate, render.
//!
//! Zero-dependency by policy: the wire format needs exactly objects,
//! arrays, strings, numbers, booleans and null, so this module
//! implements exactly that (RFC 8259 subset: no `\u` surrogate pairs
//! beyond the BMP, numbers parsed through `f64`). Input size is bounded
//! by the wire layer's body cap before parsing ever starts; a recursion
//! depth cap bounds adversarially nested input.

use std::fmt::Write as _;

/// Nesting deeper than this is refused — bounds stack use on abusive
/// input like `[[[[…`.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs (duplicate keys keep
    /// the last occurrence on lookup, matching common parser behavior).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse `text` as one JSON value (trailing whitespace allowed,
    /// trailing garbage refused).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render to compact JSON text. Non-finite numbers render as `null`
    /// (JSON has no NaN/Inf); `{}` formatting gives floats their
    /// shortest round-trip form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("raw control byte in string".into()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8")?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_wire_shapes() {
        let text = r#"{"user":7,"x":-1.5,"y":2.25,"id":12,"ok":true,"note":"a\"b\\c","tags":[1,2,3],"none":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("user").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(-1.5));
        assert_eq!(v.get("note").and_then(Json::as_str), Some("a\"b\\c"));
        match v.get("tags") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("tags parsed as {other:?}"),
        }
        assert_eq!(v.get("none"), Some(&Json::Null));
        // Render → reparse is identity.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1e-300, 123456.789012345, f64::MAX, -0.0] {
            let rendered = Json::Num(v).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {rendered}");
        }
    }

    #[test]
    fn refuses_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
            "nul",
            "[1]]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb is refused, not stack-overflowed.
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn escapes_control_characters_on_render() {
        let v = Json::Str("line\nbreak\u{1}".into());
        assert_eq!(v.render(), "\"line\\nbreak\\u0001\"");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
    }
}
