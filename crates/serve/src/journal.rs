//! Crash-safe persistence for the per-user spend ledger: a write-ahead
//! journal plus checksummed snapshots, in the offline-cache-v2 style
//! (magic + version + FNV-1a checksums, atomic temp-file + rename
//! commits).
//!
//! ## The invariant everything here serves
//!
//! **Recovered spend ≥ actual (served) spend, per user.** A crash may
//! waste budget — a journaled request whose response never went out is
//! still counted — but it must never forget budget, because forgotten
//! spend would let a user's composed ε exceed their cap after a restart.
//! Every protocol decision below is the fail-closed direction of that
//! inequality:
//!
//! * a spend is acknowledged (and the request served) only **after** its
//!   WAL record is fully written *and* fsynced;
//! * a torn or flush-failed append is refused, and the journal repairs
//!   its tail (truncate back to the last acknowledged record) before any
//!   later append is acknowledged — so an acknowledged record is never
//!   ordered after unsynced bytes;
//! * snapshot commits are atomic (temp file + rename); the rename is the
//!   commit point, and a generation number ties the WAL to its snapshot
//!   so replay never double-applies or misses a fold.
//!
//! ## On-disk layout
//!
//! Two files in the journal directory, both little-endian, both carrying
//! FNV-1a 64 checksums:
//!
//! ```text
//! ledger.snap                       ledger.wal
//!   magic    8B "GEOINDSN"            magic    8B "GEOINDWL"
//!   version  u32 = 1                  version  u32 = 1
//!   gen      u64                      gen      u64
//!   epoch    u64                      epoch    u64
//!   count    u64                      header_sum u64 (over the 20 bytes above)
//!   header_sum u64 (over the 28      record × N (32B each):
//!     bytes above)                      user    u64
//!   entry × count:                      eps     f64 bits
//!     user   u64                        seq     u64 (1-based since snapshot)
//!     spent  f64 bits                   rec_sum u64 (over the 24 bytes above)
//!   body_sum u64 (over all entries)
//! ```
//!
//! The snapshot holds the folded state as of generation `gen`; the WAL
//! holds the deltas since. On recovery the WAL is replayed **only if its
//! generation matches the snapshot's** — a stale WAL (crash between
//! snapshot commit and WAL reset) is discarded because its records are
//! already folded in. Replay stops at the first torn, checksum-failed, or
//! out-of-sequence record and truncates the tail there; everything before
//! it is applied.
//!
//! Every journal step carries a deterministic failpoint site
//! (`serve.journal.*`, `serve.snapshot.*`, `serve.wal.reset` — see
//! [`geoind_testkit::failpoint::SITES`]); the crash-replay suite in
//! `tests/crash_replay.rs` proves the invariant holds with a crash forced
//! at each of them.

use geoind_testkit::failpoint;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Snapshot file magic.
const SNAP_MAGIC: &[u8; 8] = b"GEOINDSN";
/// WAL file magic.
const WAL_MAGIC: &[u8; 8] = b"GEOINDWL";
/// On-disk format version of both files.
const FORMAT_VERSION: u32 = 1;
/// Bytes of a WAL header: magic 8 + version 4 + gen 8 + epoch 8 + sum 8.
const WAL_HEADER_LEN: u64 = 36;
/// Bytes of one WAL record: user 8 + eps 8 + seq 8 + sum 8.
const RECORD_LEN: u64 = 32;
/// Bytes of a snapshot header: magic 8 + version 4 + gen 8 + epoch 8 +
/// count 8 + sum 8.
const SNAP_HEADER_LEN: u64 = 44;
/// Refuse snapshots claiming more users than any sane deployment shard
/// holds — bounds the replay allocation exactly like the offline cache
/// bounds its entry count.
const MAX_SNAP_ENTRIES: u64 = 50_000_000;

/// FNV-1a 64-bit — the workspace's standard corruption check (integrity,
/// not authenticity), matching the offline channel-cache format. Also the
/// shard router's hash ([`crate::shard::shard_of`]): user-to-shard
/// placement must be stable across restarts, so it reuses the journal's
/// pinned hash rather than anything process-seeded.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a journal operation failed. Every variant is fail-closed: the
/// caller must refuse the request (or refuse to open), never serve
/// unaccounted ε.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O operation failed; `step` names which journal step.
    Io {
        /// The journal step that failed (`"wal append"`, `"snapshot commit"`, …).
        step: &'static str,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A committed (checksummed) region failed validation — not a normal
    /// crash artifact, so recovery refuses rather than guessing.
    Corrupt {
        /// Which file/section failed (`"snapshot header"`, `"wal header"`, …).
        section: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A deterministic failpoint forced this step to fail (tests/CI only;
    /// production builds compile the sites out).
    Injected(&'static str),
    /// The journal on disk belongs to a *later* epoch than the one
    /// requested — the caller's epoch source went backwards. Serving
    /// against stale budget caps could over-spend, so the open is refused.
    EpochRegression {
        /// The epoch persisted in the journal.
        persisted: u64,
        /// The (older) epoch the caller asked to open.
        requested: u64,
    },
    /// The device refused the write with `ENOSPC`: the disk is full, so
    /// no spend can be made durable. The request must be refused (never
    /// served unjournaled) — a full disk is a capacity outage, not a
    /// privacy leak.
    DiskFull {
        /// The journal step that hit the full disk.
        step: &'static str,
    },
}

impl Clone for JournalError {
    fn clone(&self) -> Self {
        match self {
            // io::Error is not Clone; rebuild from the OS code when there
            // is one, else carry kind + message.
            JournalError::Io { step, source } => JournalError::Io {
                step,
                source: match source.raw_os_error() {
                    Some(code) => io::Error::from_raw_os_error(code),
                    None => io::Error::new(source.kind(), source.to_string()),
                },
            },
            JournalError::Corrupt { section, detail } => JournalError::Corrupt {
                section: section.clone(),
                detail: detail.clone(),
            },
            JournalError::Injected(site) => JournalError::Injected(site),
            JournalError::EpochRegression {
                persisted,
                requested,
            } => JournalError::EpochRegression {
                persisted: *persisted,
                requested: *requested,
            },
            JournalError::DiskFull { step } => JournalError::DiskFull { step },
        }
    }
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { step, .. } => write!(f, "journal i/o failed at {step}"),
            JournalError::Corrupt { section, detail } => {
                write!(f, "journal corrupt at {section}: {detail}")
            }
            JournalError::Injected(site) => write!(f, "injected journal fault ({site})"),
            JournalError::EpochRegression {
                persisted,
                requested,
            } => write!(
                f,
                "epoch regression: journal is at epoch {persisted}, caller requested {requested}"
            ),
            JournalError::DiskFull { step } => {
                write!(f, "journal disk full at {step}; refusing unjournaled spend")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// `ENOSPC` as the kernel reports it (errno 28 on every unix this
/// workspace targets) — detected without a libc dependency.
const ENOSPC: i32 = 28;
/// `EIO`: a transient device-level read/write error worth retrying.
const EIO: i32 = 5;

fn io_err(step: &'static str) -> impl FnOnce(io::Error) -> JournalError {
    move |source| {
        if source.raw_os_error() == Some(ENOSPC) {
            JournalError::DiskFull { step }
        } else {
            JournalError::Io { step, source }
        }
    }
}

/// Whether this error is a transient device fault (`EIO`) that a bounded
/// retry may clear — as opposed to a full disk or corruption, which it
/// cannot.
pub fn is_transient_io(err: &JournalError) -> bool {
    matches!(err, JournalError::Io { source, .. } if source.raw_os_error() == Some(EIO))
}

fn corrupt(section: impl Into<String>, detail: impl Into<String>) -> JournalError {
    JournalError::Corrupt {
        section: section.into(),
        detail: detail.into(),
    }
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the destination, best-effort directory sync. A
/// crash at any point leaves either the old file or the new one — never a
/// truncated hybrid. (Also the crash-safe export primitive for the CLI.)
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// `<path>.tmp` in the same directory (same filesystem, so the rename is
/// atomic).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Durability of the rename itself requires fsyncing the directory; not
/// all platforms allow opening a directory, so this is best-effort.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// The state a [`Journal::open`] recovered from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredState {
    /// The epoch the recovered spends belong to.
    pub epoch: u64,
    /// Per-user recovered spend (snapshot fold + WAL replay).
    pub spent: BTreeMap<u64, f64>,
}

/// The write-ahead journal for one ledger directory. See the module docs
/// for the format and the recovery rules.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    wal: File,
    gen: u64,
    epoch: u64,
    /// Records acknowledged since the last snapshot; also the next
    /// record's `seq - 1`.
    records: u64,
    /// File length covering exactly the acknowledged records. The tail
    /// beyond it is repaired (truncated) before any further append.
    committed_len: u64,
    /// Generation stamped in the WAL file currently on disk. Falls behind
    /// `gen` when a snapshot committed but the fresh-WAL swap failed; the
    /// next append then swaps in a fresh WAL (safe: a stale-generation
    /// WAL's records are already folded into the snapshot).
    wal_file_gen: u64,
    /// True when a failed append left unacknowledged bytes that could not
    /// be truncated away. Appends must strictly repair the tail first —
    /// never reset the file, which still holds acknowledged records.
    tail_dirty: bool,
}

impl Journal {
    /// Open (or create) the journal in `dir` and recover its state.
    ///
    /// `epoch` is the caller's current epoch: a journal persisted at an
    /// older epoch is reset (budgets renew across epochs — the old spends
    /// are intentionally dropped *with* a fresh committed snapshot); a
    /// journal at a newer epoch refuses with
    /// [`JournalError::EpochRegression`].
    ///
    /// # Errors
    /// [`JournalError`] on I/O failure, committed-region corruption, or
    /// epoch regression. Never panics on any on-disk state.
    pub fn open(dir: &Path, epoch: u64) -> Result<(Self, RecoveredState), JournalError> {
        fs::create_dir_all(dir).map_err(io_err("journal dir create"))?;
        let snap_path = dir.join("ledger.snap");
        let wal_path = dir.join("ledger.wal");
        // Leftover temp files are uncommitted by definition.
        let _ = fs::remove_file(tmp_sibling(&snap_path));
        let _ = fs::remove_file(tmp_sibling(&wal_path));

        if !snap_path.exists() {
            if wal_path.exists() {
                return Err(corrupt(
                    "journal dir",
                    "WAL present without a snapshot (snapshots are written first); \
                     refusing to guess at the missing committed state",
                ));
            }
            // Fresh directory: commit an empty snapshot, then a fresh WAL.
            write_snapshot_file(&snap_path, 1, epoch, &BTreeMap::new())?;
            let wal = create_wal_file(&wal_path, 1, epoch)?;
            let journal = Self {
                dir: dir.to_path_buf(),
                wal,
                gen: 1,
                epoch,
                records: 0,
                committed_len: WAL_HEADER_LEN,
                wal_file_gen: 1,
                tail_dirty: false,
            };
            return Ok((
                journal,
                RecoveredState {
                    epoch,
                    spent: BTreeMap::new(),
                },
            ));
        }

        let (snap_gen, snap_epoch, mut spent) = read_snapshot_file(&snap_path)?;
        if snap_epoch > epoch {
            return Err(JournalError::EpochRegression {
                persisted: snap_epoch,
                requested: epoch,
            });
        }

        // Recover the WAL against the snapshot's generation.
        let (wal, records, committed_len) =
            recover_wal(&wal_path, snap_gen, snap_epoch, &mut spent)?;

        let mut journal = Self {
            dir: dir.to_path_buf(),
            wal,
            gen: snap_gen,
            epoch: snap_epoch,
            records,
            committed_len,
            wal_file_gen: snap_gen,
            tail_dirty: false,
        };

        if snap_epoch < epoch {
            // New epoch: budgets renew. Commit the reset before returning
            // so a crash right after open cannot resurrect old spends into
            // the new epoch.
            journal.epoch = epoch;
            journal.snapshot(&BTreeMap::new())?;
            return Ok((
                journal,
                RecoveredState {
                    epoch,
                    spent: BTreeMap::new(),
                },
            ));
        }

        Ok((journal, RecoveredState { epoch, spent }))
    }

    /// The journal's current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The generation of the committed snapshot (bumped by every
    /// [`Self::snapshot`]). The WAL on disk carries the same number, which
    /// is how recovery proves a stale WAL is already folded in.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Records acknowledged since the last committed snapshot.
    pub fn records_since_snapshot(&self) -> u64 {
        self.records
    }

    /// Durably append one spend record. On `Ok`, the record is fully
    /// written **and fsynced** — only then may the caller serve the
    /// request. On `Err` nothing is acknowledged: the caller must refuse
    /// the request, and the journal repairs its tail so the failed bytes
    /// can never be ordered ahead of a later acknowledged record.
    ///
    /// # Errors
    /// [`JournalError`] on any step failure (including injected faults).
    pub fn append(&mut self, user: u64, eps: f64) -> Result<(), JournalError> {
        // Self-heal before acknowledging anything. The two failure modes
        // need opposite treatments: a stale-generation WAL is *replaced*
        // (its records are already folded into the committed snapshot),
        // while a dirty tail is *truncated* — the file still holds
        // acknowledged records that a reset would forget.
        if self.wal_file_gen != self.gen {
            self.reset_wal()?;
        } else if self.tail_dirty {
            self.wal
                .set_len(self.committed_len)
                .and_then(|()| self.wal.sync_data())
                .and_then(|()| self.wal.seek(SeekFrom::Start(self.committed_len)))
                .map_err(io_err("wal tail repair"))?;
            self.tail_dirty = false;
        }
        if failpoint::hit("serve.journal.append") {
            return Err(JournalError::Injected("serve.journal.append"));
        }
        if failpoint::hit("serve.journal.enospc") {
            // Injected full disk: the write is refused before any byte
            // lands, exactly as a real ENOSPC from write_all would be
            // classified. Nothing to repair, nothing acknowledged.
            return Err(JournalError::DiskFull { step: "wal append" });
        }
        if failpoint::hit("serve.journal.eio") {
            // Injected transient device error: bytes may or may not have
            // landed, so the tail is repaired like any failed write. The
            // typed error carries the real EIO code so the shard layer's
            // bounded retry recognizes it as transient.
            self.repair_tail();
            return Err(JournalError::Io {
                step: "wal append",
                source: io::Error::from_raw_os_error(EIO),
            });
        }
        let record = encode_record(user, eps, self.records + 1);

        if failpoint::hit("serve.journal.torn") {
            // Simulate a write cut mid-record: a prefix lands, the rest
            // does not. The repair below truncates it away.
            let _ = self.wal.write_all(&record[0..13]);
            let _ = self.wal.sync_data();
            self.repair_tail();
            return Err(JournalError::Injected("serve.journal.torn"));
        }
        if let Err(e) = self.wal.write_all(&record) {
            self.repair_tail();
            return Err(JournalError::Io {
                step: "wal append",
                source: e,
            });
        }
        let flush_fault = failpoint::hit("serve.journal.flush");
        let synced = if flush_fault {
            Err(JournalError::Injected("serve.journal.flush"))
        } else {
            self.wal.sync_data().map_err(io_err("wal flush"))
        };
        if let Err(e) = synced {
            // The record's bytes may or may not be durable; either way it
            // was not acknowledged, so truncate it back out. If the
            // truncation itself cannot be confirmed, recovery may count
            // the record — the safe direction.
            self.repair_tail();
            return Err(e);
        }
        self.records += 1;
        self.committed_len += RECORD_LEN;
        Ok(())
    }

    /// Truncate the WAL back to the last acknowledged record. On failure
    /// the tail is marked dirty and every later append strictly retries
    /// the repair before acknowledging anything.
    fn repair_tail(&mut self) {
        let repaired = self
            .wal
            .set_len(self.committed_len)
            .and_then(|()| self.wal.sync_data())
            .and_then(|()| self.wal.seek(SeekFrom::Start(self.committed_len)))
            .is_ok();
        self.tail_dirty = !repaired;
    }

    /// Fold `state` into a new committed snapshot (generation `gen + 1`)
    /// and start a fresh WAL. The snapshot rename is the commit point: a
    /// crash before it keeps the old snapshot + WAL, a crash after it
    /// leaves a stale-generation WAL that recovery discards as already
    /// folded.
    ///
    /// # Errors
    /// [`JournalError`] on any step failure. If the failure happens
    /// *after* the commit point (the fresh-WAL swap failed), the
    /// snapshot stands and appends self-heal on the next call.
    pub fn snapshot(&mut self, state: &BTreeMap<u64, f64>) -> Result<(), JournalError> {
        if failpoint::hit("serve.snapshot.write") {
            return Err(JournalError::Injected("serve.snapshot.write"));
        }
        let snap_path = self.dir.join("ledger.snap");
        let next_gen = self.gen + 1;
        let bytes = encode_snapshot(next_gen, self.epoch, state);
        let tmp = tmp_sibling(&snap_path);
        {
            let mut f = File::create(&tmp).map_err(io_err("snapshot temp create"))?;
            if failpoint::hit("serve.snapshot.enospc") {
                // Injected full disk at the temp-file write boundary: the
                // old committed snapshot is untouched, only the fold is
                // refused — spends stay durable in the WAL.
                let _ = fs::remove_file(&tmp);
                return Err(JournalError::DiskFull {
                    step: "snapshot temp write",
                });
            }
            f.write_all(&bytes).map_err(io_err("snapshot temp write"))?;
            f.sync_all().map_err(io_err("snapshot temp sync"))?;
        }
        if failpoint::hit("serve.snapshot.commit") {
            let _ = fs::remove_file(&tmp);
            return Err(JournalError::Injected("serve.snapshot.commit"));
        }
        fs::rename(&tmp, &snap_path).map_err(io_err("snapshot commit"))?;
        sync_parent_dir(&snap_path);
        // Commit point passed: the old WAL is now stale whatever happens
        // (wal_file_gen lags self.gen until the swap below succeeds, and
        // appends self-heal by retrying it).
        self.gen = next_gen;
        self.reset_wal()
    }

    /// Swap in a fresh empty WAL at the current generation (atomic:
    /// temp + rename). On success `wal_file_gen` catches up to `gen`.
    fn reset_wal(&mut self) -> Result<(), JournalError> {
        let wal_path = self.dir.join("ledger.wal");
        let tmp = tmp_sibling(&wal_path);
        {
            let mut f = File::create(&tmp).map_err(io_err("wal reset create"))?;
            f.write_all(&encode_wal_header(self.gen, self.epoch))
                .map_err(io_err("wal reset write"))?;
            f.sync_all().map_err(io_err("wal reset sync"))?;
        }
        if failpoint::hit("serve.wal.reset") {
            let _ = fs::remove_file(&tmp);
            return Err(JournalError::Injected("serve.wal.reset"));
        }
        fs::rename(&tmp, &wal_path).map_err(io_err("wal reset commit"))?;
        sync_parent_dir(&wal_path);
        let mut wal = OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .map_err(io_err("wal reopen"))?;
        wal.seek(SeekFrom::Start(WAL_HEADER_LEN))
            .map_err(io_err("wal reopen seek"))?;
        self.wal = wal;
        self.records = 0;
        self.committed_len = WAL_HEADER_LEN;
        self.wal_file_gen = self.gen;
        self.tail_dirty = false;
        Ok(())
    }
}

/// Encode one 32-byte spend record — the WAL on-disk format *and* the
/// replication wire format share these bytes, so a shipped record is
/// checksummed end to end by the same FNV-1a the journal verifies.
pub(crate) fn encode_record(user: u64, eps: f64, seq: u64) -> [u8; RECORD_LEN as usize] {
    let mut record = [0u8; RECORD_LEN as usize];
    record[0..8].copy_from_slice(&user.to_le_bytes());
    record[8..16].copy_from_slice(&eps.to_bits().to_le_bytes());
    record[16..24].copy_from_slice(&seq.to_le_bytes());
    let sum = fnv1a64(&record[0..24]);
    record[24..32].copy_from_slice(&sum.to_le_bytes());
    record
}

/// Decode and verify one 32-byte spend record: checksum, finite
/// non-negative ε. `None` means the record cannot be trusted.
pub(crate) fn decode_record(rec: &[u8]) -> Option<(u64, f64, u64)> {
    if rec.len() != RECORD_LEN as usize {
        return None;
    }
    let word = |at: usize| -> u64 {
        u64::from_le_bytes(
            rec[at..at + 8]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        )
    };
    if word(24) != fnv1a64(&rec[0..24]) {
        return None;
    }
    let eps = f64::from_bits(word(8));
    if !eps.is_finite() || eps < 0.0 {
        return None;
    }
    Some((word(0), eps, word(16)))
}

/// Magic of the replication fence-generation file (`repl.gen`).
const FENCE_MAGIC: &[u8; 8] = b"GIREPLGN";

/// Read the replication fence generation persisted in `dir`, if a
/// verifiable one exists. `None` (missing or unverifiable) is treated by
/// callers as "no fence recorded", which is the safe direction on the
/// primary side: a primary that lost its generation ships at the floor
/// generation and gets fenced, never the other way around.
pub fn read_fence_gen(dir: &Path) -> Option<u64> {
    let bytes = fs::read(dir.join("repl.gen")).ok()?;
    if bytes.len() != 24 || &bytes[0..8] != FENCE_MAGIC {
        return None;
    }
    let word = |at: usize| -> u64 {
        u64::from_le_bytes(
            bytes[at..at + 8]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        )
    };
    (word(16) == fnv1a64(&bytes[8..16])).then(|| word(8))
}

/// Durably persist the replication fence generation in `dir` (atomic
/// temp + rename, same discipline as every other committed file here).
///
/// # Errors
/// [`JournalError`] when the write cannot be made durable.
pub fn write_fence_gen(dir: &Path, gen: u64) -> Result<(), JournalError> {
    let mut bytes = Vec::with_capacity(24);
    bytes.extend_from_slice(FENCE_MAGIC);
    bytes.extend_from_slice(&gen.to_le_bytes());
    let sum = fnv1a64(&bytes[8..16]);
    bytes.extend_from_slice(&sum.to_le_bytes());
    atomic_write(&dir.join("repl.gen"), &bytes).map_err(io_err("fence gen write"))
}

fn encode_wal_header(gen: u64, epoch: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(WAL_HEADER_LEN as usize);
    bytes.extend_from_slice(WAL_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&gen.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    let sum = fnv1a64(&bytes[8..28]);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

fn encode_snapshot(gen: u64, epoch: u64, state: &BTreeMap<u64, f64>) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(SNAP_HEADER_LEN as usize + state.len() * 16 + 8);
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&gen.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&(state.len() as u64).to_le_bytes());
    let header_sum = fnv1a64(&bytes[8..36]);
    bytes.extend_from_slice(&header_sum.to_le_bytes());
    let body_start = bytes.len();
    for (&user, &spent) in state {
        bytes.extend_from_slice(&user.to_le_bytes());
        bytes.extend_from_slice(&spent.to_bits().to_le_bytes());
    }
    let body_sum = fnv1a64(&bytes[body_start..]);
    bytes.extend_from_slice(&body_sum.to_le_bytes());
    bytes
}

fn write_snapshot_file(
    path: &Path,
    gen: u64,
    epoch: u64,
    state: &BTreeMap<u64, f64>,
) -> Result<(), JournalError> {
    if failpoint::hit("serve.snapshot.write") {
        return Err(JournalError::Injected("serve.snapshot.write"));
    }
    atomic_write(path, &encode_snapshot(gen, epoch, state)).map_err(io_err("snapshot commit"))
}

fn create_wal_file(path: &Path, gen: u64, epoch: u64) -> Result<File, JournalError> {
    atomic_write(path, &encode_wal_header(gen, epoch)).map_err(io_err("wal create"))?;
    let mut wal = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(io_err("wal reopen"))?;
    wal.seek(SeekFrom::Start(WAL_HEADER_LEN))
        .map_err(io_err("wal reopen seek"))?;
    Ok(wal)
}

fn read_snapshot_file(path: &Path) -> Result<(u64, u64, BTreeMap<u64, f64>), JournalError> {
    let bytes = fs::read(path).map_err(io_err("snapshot read"))?;
    if bytes.len() < SNAP_HEADER_LEN as usize + 8 {
        return Err(corrupt("snapshot header", "file shorter than its header"));
    }
    if &bytes[0..8] != SNAP_MAGIC {
        return Err(corrupt("snapshot header", "bad magic"));
    }
    let word_u32 = |at: usize| {
        u32::from_le_bytes(
            bytes[at..at + 4]
                .try_into()
                .expect("4-byte slice of a checked buffer"),
        )
    };
    let word = |at: usize| {
        u64::from_le_bytes(
            bytes[at..at + 8]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        )
    };
    let version = word_u32(8);
    if version != FORMAT_VERSION {
        return Err(corrupt(
            "snapshot header",
            format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
        ));
    }
    let (gen, epoch, count) = (word(12), word(20), word(28));
    if word(36) != fnv1a64(&bytes[8..36]) {
        return Err(corrupt("snapshot header", "header checksum mismatch"));
    }
    if count > MAX_SNAP_ENTRIES {
        return Err(corrupt("snapshot header", "implausible entry count"));
    }
    let body_start = SNAP_HEADER_LEN as usize;
    let body_len = (count as usize)
        .checked_mul(16)
        .ok_or_else(|| corrupt("snapshot header", "entry count overflows"))?;
    let expect_len = body_start + body_len + 8;
    if bytes.len() != expect_len {
        return Err(corrupt(
            "snapshot body",
            format!("file is {} bytes, header implies {expect_len}", bytes.len()),
        ));
    }
    let body = &bytes[body_start..body_start + body_len];
    let declared = word(body_start + body_len);
    if declared != fnv1a64(body) {
        return Err(corrupt("snapshot body", "body checksum mismatch"));
    }
    let mut spent = BTreeMap::new();
    for i in 0..count as usize {
        let user = u64::from_le_bytes(
            body[16 * i..16 * i + 8]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        );
        let amount = f64::from_bits(u64::from_le_bytes(
            body[16 * i + 8..16 * i + 16]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        ));
        if !amount.is_finite() || amount < 0.0 {
            return Err(corrupt(
                format!("snapshot entry {i}"),
                "non-finite or negative spend",
            ));
        }
        if spent.insert(user, amount).is_some() {
            return Err(corrupt(
                format!("snapshot entry {i}"),
                format!("duplicate user {user}"),
            ));
        }
    }
    Ok((gen, epoch, spent))
}

/// Validate and replay the WAL onto `spent`, truncating any unreplayable
/// tail, and return the file reopened for append plus the replayed record
/// count and committed length.
fn recover_wal(
    path: &Path,
    snap_gen: u64,
    snap_epoch: u64,
    spent: &mut BTreeMap<u64, f64>,
) -> Result<(File, u64, u64), JournalError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        // Only reachable by a crash during initial creation (the snapshot
        // commits first, before any record was ever acknowledged) — a
        // fresh WAL loses nothing.
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let wal = create_wal_file(path, snap_gen, snap_epoch)?;
            return Ok((wal, 0, WAL_HEADER_LEN));
        }
        Err(e) => return Err(io_err("wal read")(e)),
    };

    if bytes.len() < WAL_HEADER_LEN as usize {
        // Torn header: the file was being created when the process died,
        // so no record in it was ever acknowledged. Start fresh.
        let wal = create_wal_file(path, snap_gen, snap_epoch)?;
        return Ok((wal, 0, WAL_HEADER_LEN));
    }
    if &bytes[0..8] != WAL_MAGIC {
        return Err(corrupt("wal header", "bad magic"));
    }
    let version = u32::from_le_bytes(
        bytes[8..12]
            .try_into()
            .expect("4-byte slice of a checked buffer"),
    );
    if version != FORMAT_VERSION {
        return Err(corrupt(
            "wal header",
            format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
        ));
    }
    let word = |at: usize| {
        u64::from_le_bytes(
            bytes[at..at + 8]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        )
    };
    let (wal_gen, wal_epoch) = (word(12), word(20));
    if word(28) != fnv1a64(&bytes[8..28]) {
        return Err(corrupt("wal header", "header checksum mismatch"));
    }
    if wal_gen > snap_gen {
        return Err(corrupt(
            "wal header",
            format!("WAL generation {wal_gen} is ahead of snapshot generation {snap_gen}"),
        ));
    }
    if wal_gen < snap_gen {
        // Stale WAL: the crash hit between snapshot commit and WAL reset.
        // Its records are already folded into the snapshot — discard it.
        let wal = create_wal_file(path, snap_gen, snap_epoch)?;
        return Ok((wal, 0, WAL_HEADER_LEN));
    }
    if wal_epoch != snap_epoch {
        return Err(corrupt(
            "wal header",
            format!("WAL epoch {wal_epoch} disagrees with snapshot epoch {snap_epoch}"),
        ));
    }

    // Replay: apply every valid record, stop at the first torn/corrupt/
    // out-of-sequence one and truncate the tail there.
    let mut offset = WAL_HEADER_LEN as usize;
    let mut records = 0u64;
    while bytes.len() - offset >= RECORD_LEN as usize {
        let rec = &bytes[offset..offset + RECORD_LEN as usize];
        let sum = u64::from_le_bytes(
            rec[24..32]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        );
        if sum != fnv1a64(&rec[0..24]) {
            break;
        }
        let user = u64::from_le_bytes(
            rec[0..8]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        );
        let eps = f64::from_bits(u64::from_le_bytes(
            rec[8..16]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        ));
        let seq = u64::from_le_bytes(
            rec[16..24]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        );
        if seq != records + 1 || !eps.is_finite() || eps < 0.0 {
            break;
        }
        *spent.entry(user).or_insert(0.0) += eps;
        records += 1;
        offset += RECORD_LEN as usize;
    }
    let committed_len = offset as u64;

    let mut wal = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(io_err("wal reopen"))?;
    if (bytes.len() as u64) > committed_len {
        // Torn or corrupt tail from the crash: truncate it so new appends
        // extend a clean, fully-replayable file.
        wal.set_len(committed_len).map_err(io_err("wal truncate"))?;
        wal.sync_data().map_err(io_err("wal truncate sync"))?;
    }
    wal.seek(SeekFrom::Start(committed_len))
        .map_err(io_err("wal reopen seek"))?;
    Ok((wal, records, committed_len))
}

/// What a successful [`scavenge`] salvaged and committed.
#[derive(Debug, Clone)]
pub struct ScavengeReport {
    /// Per-user salvaged spend, now folded into the fresh snapshot.
    pub salvaged: BTreeMap<u64, f64>,
    /// WAL records whose checksum verified and were folded in.
    pub wal_records: u64,
    /// Checksum-valid records applied despite an unverifiable context
    /// (corrupt WAL header, out-of-sequence position, or a gap left by a
    /// checksum-failed neighbour). Each may already be folded into the
    /// snapshot — applying it anyway over-counts, which is the safe
    /// direction: recovered spend ≥ served spend stays provable.
    pub ambiguous_records: u64,
    /// True when a provably stale (already-folded) WAL was discarded —
    /// the one case where *not* applying records is provably safe.
    pub stale_wal_discarded: bool,
}

/// Parse a WAL header if — and only if — every one of its integrity
/// checks passes. `None` means the header cannot be trusted, not that
/// the file holds no records.
fn parse_wal_header(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() < WAL_HEADER_LEN as usize || &bytes[0..8] != WAL_MAGIC {
        return None;
    }
    let word = |at: usize| -> u64 {
        u64::from_le_bytes(
            bytes[at..at + 8]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        )
    };
    let version = u32::from_le_bytes(
        bytes[8..12]
            .try_into()
            .expect("4-byte slice of a checked buffer"),
    );
    if version != FORMAT_VERSION || word(28) != fnv1a64(&bytes[8..28]) {
        return None;
    }
    Some((word(12), word(20)))
}

/// Salvage a damaged journal directory into a fresh committed snapshot,
/// resolving every ambiguity **upward** so the fail-closed invariant
/// (recovered spend ≥ served spend, per user) stays provable:
///
/// * the committed snapshot is the base — if it is missing-with-a-WAL or
///   fails its checksums, the served base is unknowable and the scavenge
///   **abandons** (typed error; the shard stays refused);
/// * a WAL whose header verifies at a generation *behind* the snapshot
///   is provably already folded in and is discarded (the only downward
///   resolution, because it is proven);
/// * otherwise every checksum-valid record is applied — even when the
///   WAL header is corrupt or a record is out of sequence. An applied
///   record can at worst double-count spend that the snapshot already
///   folded; skipping it could forget an acknowledged serve;
/// * torn tails and checksum-failed records are skipped (they were never
///   acknowledged, or their content cannot be trusted at all);
/// * the salvaged state is committed via the standard atomic temp+rename
///   snapshot, with a fresh empty WAL — ready for a normal
///   [`Journal::open`] to verify.
///
/// An epoch ahead of `epoch` abandons ([`JournalError::EpochRegression`]);
/// an epoch behind it salvages to an empty state (budgets renewed).
///
/// # Errors
/// Any [`JournalError`] that makes the salvage unprovable or the commit
/// impossible; the directory is left no worse than it was found.
pub fn scavenge(dir: &Path, epoch: u64) -> Result<ScavengeReport, JournalError> {
    let snap_path = dir.join("ledger.snap");
    let wal_path = dir.join("ledger.wal");
    // Leftover temp files are uncommitted by definition.
    let _ = fs::remove_file(tmp_sibling(&snap_path));
    let _ = fs::remove_file(tmp_sibling(&wal_path));

    let (snap_gen, snap_epoch, mut salvaged) = if snap_path.exists() {
        // Abandons on any committed-region corruption: without a trusted
        // base the salvage cannot bound what was served.
        read_snapshot_file(&snap_path)?
    } else if wal_path.exists() {
        return Err(corrupt(
            "journal dir",
            "WAL present without a snapshot; the committed base is unknowable",
        ));
    } else {
        (0, epoch, BTreeMap::new())
    };
    if snap_epoch > epoch {
        return Err(JournalError::EpochRegression {
            persisted: snap_epoch,
            requested: epoch,
        });
    }

    let mut wal_records = 0u64;
    let mut ambiguous_records = 0u64;
    let mut stale_wal_discarded = false;
    if snap_epoch < epoch {
        // Budgets renew across epochs: the old spends (snapshot and WAL
        // alike) are intentionally dropped.
        salvaged = BTreeMap::new();
    } else {
        match fs::read(&wal_path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("scavenge wal read")(e)),
            Ok(bytes) => {
                let header = parse_wal_header(&bytes);
                if matches!(header, Some((gen, ep)) if gen < snap_gen && ep == snap_epoch) {
                    // Provably stale: the snapshot at a later generation
                    // already folded these records in.
                    stale_wal_discarded = true;
                } else {
                    let trusted =
                        matches!(header, Some((gen, ep)) if gen == snap_gen && ep == snap_epoch);
                    // Acknowledged records always sit at fixed 32-byte
                    // strides (the tail-repair discipline guarantees it),
                    // so scan every slot and apply whatever verifies.
                    let mut offset = WAL_HEADER_LEN as usize;
                    let mut slot = 0u64;
                    while bytes.len() >= offset + RECORD_LEN as usize {
                        let rec = &bytes[offset..offset + RECORD_LEN as usize];
                        offset += RECORD_LEN as usize;
                        slot += 1;
                        let sum = u64::from_le_bytes(
                            rec[24..32]
                                .try_into()
                                .expect("8-byte slice of a checked buffer"),
                        );
                        if sum != fnv1a64(&rec[0..24]) {
                            continue; // never acknowledged, or untrustable
                        }
                        let user = u64::from_le_bytes(
                            rec[0..8]
                                .try_into()
                                .expect("8-byte slice of a checked buffer"),
                        );
                        let eps = f64::from_bits(u64::from_le_bytes(
                            rec[8..16]
                                .try_into()
                                .expect("8-byte slice of a checked buffer"),
                        ));
                        let seq = u64::from_le_bytes(
                            rec[16..24]
                                .try_into()
                                .expect("8-byte slice of a checked buffer"),
                        );
                        if !eps.is_finite() || eps < 0.0 {
                            continue; // checksum collision artifact
                        }
                        if !trusted || seq != slot {
                            ambiguous_records += 1;
                        }
                        *salvaged.entry(user).or_insert(0.0) += eps;
                        wal_records += 1;
                    }
                }
            }
        }
    }

    // Commit the salvage: fresh snapshot one generation past the base,
    // fresh empty WAL — exactly the state a standard open verifies.
    let next_gen = snap_gen.saturating_add(1);
    write_snapshot_file(&snap_path, next_gen, epoch, &salvaged)?;
    drop(create_wal_file(&wal_path, next_gen, epoch)?);
    Ok(ScavengeReport {
        salvaged,
        wal_records,
        ambiguous_records,
        stale_wal_discarded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "geoind-journal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spends(journal: &mut Journal, items: &[(u64, f64)]) {
        for &(user, eps) in items {
            journal.append(user, eps).expect("append");
        }
    }

    #[test]
    fn fresh_open_then_reopen_roundtrips_spend() {
        let dir = temp_dir("roundtrip");
        let (mut j, rec) = Journal::open(&dir, 0).expect("open");
        assert!(rec.spent.is_empty());
        spends(&mut j, &[(1, 0.5), (2, 0.25), (1, 0.5)]);
        drop(j); // crash: no checkpoint
        let (_, rec) = Journal::open(&dir, 0).expect("reopen");
        assert!((rec.spent[&1] - 1.0).abs() < 1e-12);
        assert!((rec.spent[&2] - 0.25).abs() < 1e-12);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_folds_and_wal_restarts() {
        let dir = temp_dir("fold");
        let (mut j, _) = Journal::open(&dir, 3).expect("open");
        spends(&mut j, &[(7, 0.3), (7, 0.3)]);
        let state = BTreeMap::from([(7u64, 0.6f64)]);
        j.snapshot(&state).expect("snapshot");
        assert_eq!(j.records_since_snapshot(), 0);
        spends(&mut j, &[(7, 0.1)]);
        drop(j);
        let (j2, rec) = Journal::open(&dir, 3).expect("reopen");
        assert!((rec.spent[&7] - 0.7).abs() < 1e-12);
        assert_eq!(j2.records_since_snapshot(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_prior_records_kept() {
        let dir = temp_dir("torn");
        let (mut j, _) = Journal::open(&dir, 0).expect("open");
        spends(&mut j, &[(4, 0.2), (5, 0.4)]);
        drop(j);
        // Simulate a crash mid-append: garbage partial record at the tail.
        let wal_path = dir.join("ledger.wal");
        let mut f = OpenOptions::new().append(true).open(&wal_path).unwrap();
        f.write_all(&[0xAB; 17]).unwrap();
        drop(f);
        let (mut j2, rec) = Journal::open(&dir, 0).expect("recover");
        assert!((rec.spent[&4] - 0.2).abs() < 1e-12);
        assert!((rec.spent[&5] - 0.4).abs() < 1e-12);
        // The repaired file accepts and round-trips further appends.
        spends(&mut j2, &[(4, 0.3)]);
        drop(j2);
        let (_, rec) = Journal::open(&dir, 0).expect("reopen");
        assert!((rec.spent[&4] - 0.5).abs() < 1e-12);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newer_epoch_resets_spend_older_epoch_refused() {
        let dir = temp_dir("epoch");
        let (mut j, _) = Journal::open(&dir, 5).expect("open");
        spends(&mut j, &[(9, 1.0)]);
        drop(j);
        let (_, rec) = Journal::open(&dir, 6).expect("advance epoch");
        assert!(rec.spent.is_empty(), "old-epoch spend leaked: {rec:?}");
        let err = Journal::open(&dir, 5).expect_err("regression must refuse");
        assert!(matches!(
            err,
            JournalError::EpochRegression {
                persisted: 6,
                requested: 5
            }
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_region_corruption_is_refused_not_guessed() {
        let dir = temp_dir("corrupt");
        let (mut j, _) = Journal::open(&dir, 0).expect("open");
        spends(&mut j, &[(1, 0.5)]);
        drop(j);
        // Flip a bit inside the snapshot header (committed region).
        let snap = dir.join("ledger.snap");
        let mut bytes = fs::read(&snap).unwrap();
        bytes[9] ^= 0x40;
        fs::write(&snap, &bytes).unwrap();
        let err = Journal::open(&dir, 0).expect_err("corrupt snapshot admitted");
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_without_snapshot_is_refused() {
        let dir = temp_dir("nosnap");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("ledger.wal"), encode_wal_header(1, 0)).unwrap();
        let err = Journal::open(&dir, 0).expect_err("orphan WAL admitted");
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_or_keeps_never_mixes() {
        let dir = temp_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        atomic_write(&path, b"first version").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!tmp_sibling(&path).exists(), "temp file left behind");
        fs::remove_dir_all(&dir).ok();
    }
}
