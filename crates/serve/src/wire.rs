//! Networked front door: a std-only HTTP/1.1 listener over the
//! admission-controlled [`Server`].
//!
//! ## Wire format
//!
//! Three endpoints, all JSON bodies:
//!
//! * `POST /protect` — one request object
//!   `{"user":7,"id":3,"x":1.0,"y":2.0}` or an array of them (an array
//!   is submitted as one pipelined burst, so it drains into the worker
//!   pool's batched [`geoind_core::ResilientMechanism::report_many`]
//!   path). Terminal outcomes answer `200` with a `status` field
//!   (`served`, `budget_exhausted`, `expired`, `journal_fault`);
//!   retryable refusals answer `503` (`overloaded`, `draining`,
//!   `in_flight`, `shard_unavailable`, `disk_full`). `id` is the
//!   client's idempotency key, scoped per user: retrying `(user, id)`
//!   after a torn response replays the already-journaled outcome
//!   instead of spending again. A `shard_unavailable`/`disk_full`
//!   refusal releases the key — the retry re-attempts against the
//!   (possibly repaired) shard rather than replaying the refusal.
//! * `GET /report` — counters snapshot plus the pinned
//!   [`ServeReport::log_line`]; control traffic, not counted.
//! * `GET /healthz` — readiness: `200` while every ledger shard serves
//!   (ready or probation), `503` with per-state counts and repair
//!   progress while any shard is quarantined, scavenging, or failed.
//! * `POST /repair` — spawn repair tasks for every quarantined/failed
//!   shard (a no-op under `RepairMode::Off`); answers how many started.
//! * `POST /replicate` — binary replication batch from the primary's
//!   [`crate::replica::Shipper`]; applied by the [`crate::replica::Applier`]
//!   and answered with a durable-seq ack or a fenced/shape nack.
//! * `POST /promote` — fenced failover: bump and persist the fence
//!   generation, checkpoint, and start serving (`SIGUSR1` does the
//!   same out-of-band).
//! * `POST /follow` — a follower registering `{"addr":...}` as this
//!   primary's replication peer.
//! * `POST /shutdown` — requests a graceful drain; the process that
//!   owns the [`WireServer`] observes
//!   [`WireServer::shutdown_requested`] and calls
//!   [`WireServer::shutdown`]. The same drain runs when the process
//!   catches `SIGTERM`/`SIGINT` (see [`crate::signal`]): the accept
//!   loop observes the flag and stops accepting on its own.
//!
//! ## Overload and abuse
//!
//! Every refusal is explicit and counted, never a hang: connections
//! beyond the accept cap get a best-effort `503` and `shed_net`;
//! malformed or oversized frames get `400`/`413` and `shed_net`; a
//! frame cut mid-read burns **no budget** and counts `torn`; a
//! response cut after the spend was journaled counts `torn` and is
//! replayed verbatim on retry (at-most-once server-side). Socket
//! faults are injectable at the `serve.net.*` failpoint sites for
//! deterministic abuse testing.
//!
//! With [`WireConfig::auth_token`] set, every endpoint but `/healthz`
//! requires `Authorization: Bearer <token>` (compared in constant
//! time); failures answer `401` and count `unauthorized`. The retry
//! table is bounded per user ([`WireConfig::idem_max_per_user`]) and
//! by TTL ([`WireConfig::idem_ttl_ms`]); evictions count
//! `idem_evicted`.
//!
//! ## Drain ordering
//!
//! [`WireServer::shutdown`] stops accepting, joins the connection
//! handlers (finishing their in-flight exchanges), then drains the
//! admission queue and flushes the journals via [`Server::shutdown`],
//! and only then snapshots the final [`ServeReport`] — so the report
//! reconciles exactly with what clients observed.

use crate::json::Json;
use crate::server::{Request, Response, ServeConfig, ServeReport, Server, SubmitError};
use crate::shard::ShardedLedger;
use geoind_core::ResilientMechanism;
use geoind_testkit::clock::Clock;
use geoind_testkit::failpoint;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// The inner worker pool's configuration.
    pub serve: ServeConfig,
    /// Concurrent connections beyond this are refused with a counted
    /// `503` at accept time (clamped to at least 1).
    pub max_connections: usize,
    /// Per-connection socket read deadline. A connection idle longer
    /// than this is closed; a frame stalled mid-read longer than this
    /// counts `torn`.
    pub read_timeout_ms: u64,
    /// Per-connection socket write deadline.
    pub write_timeout_ms: u64,
    /// Request bodies beyond this answer `413` and close (bounds parse
    /// memory per connection).
    pub max_body_bytes: usize,
    /// Keep-alive idle cap: a pipelined connection with no frame in
    /// progress for this long is reaped. Responses are written before
    /// the next read begins, so reaping never drops an in-flight
    /// response. The default (5000 ms) sits three orders of magnitude
    /// above the measured steady-state p99 request latency
    /// (`BENCH_serve.json`: ~2.4 ms), so only genuinely abandoned
    /// connections are reaped.
    pub idle_timeout_ms: u64,
    /// When set, every protect request gets an absolute deadline this
    /// many milliseconds from its dispatch ([`Clock`] time), enforced by
    /// the worker's deadline gate.
    pub deadline_ms: Option<u64>,
    /// Start as a warm standby: `/protect` answers `503 standby` until
    /// a promotion (`POST /promote` or `SIGUSR1`) clears the flag;
    /// `/replicate` applies the primary's shipped records meanwhile.
    pub standby: bool,
    /// When set, every endpoint except `GET /healthz` requires
    /// `Authorization: Bearer <token>` (constant-time compare);
    /// failures answer `401` and count `unauthorized`.
    pub auth_token: Option<String>,
    /// Settled idempotency outcomes retained per user; the oldest
    /// settled entry is evicted (counted `idem_evicted`) when a new
    /// outcome would exceed the cap. In-flight entries are never
    /// evicted. Clamped to at least 1.
    pub idem_max_per_user: usize,
    /// Settled idempotency outcomes older than this are reaped by the
    /// idle-connection sweep (counted `idem_evicted`). `0` disables
    /// the TTL (the per-user cap still bounds the table).
    pub idem_ttl_ms: u64,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            max_connections: 64,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            max_body_bytes: 64 * 1024,
            idle_timeout_ms: 5_000,
            deadline_ms: None,
            standby: false,
            auth_token: None,
            idem_max_per_user: 256,
            idem_ttl_ms: 60_000,
        }
    }
}

/// Idempotency bookkeeping for one `(user, id)` key.
enum IdemState {
    /// The request is being gated/served right now; a concurrent retry
    /// gets `503 in_flight` rather than a double submit.
    Pending,
    /// Terminal outcome already produced (and any spend journaled); a
    /// retry replays this body verbatim without touching the gate. The
    /// second field is the [`Clock`] time the outcome settled, for the
    /// TTL sweep.
    Done(String, u64),
}

/// The retry table, bounded two ways so keep-alive clients minting
/// unique ids cannot grow memory without limit: a per-user cap on
/// *settled* outcomes (oldest evicted first; in-flight entries are
/// never evicted — they are bounded by the admission queue) and a TTL
/// sweep driven from the idle-connection reaper. Evictions trade the
/// replay guarantee for that key: a retry after eviction re-attempts
/// instead of replaying, which at worst double-*refuses* — a spend is
/// only re-attempted if the client violated the retry contract by
/// waiting past the TTL.
struct IdemTable {
    entries: HashMap<(u64, u64), IdemState>,
    /// Per-user settled ids, oldest first. May hold stale ids (keys
    /// released on retryable refusals or reaped by TTL); those are
    /// skipped on pop and purged by the sweep.
    done_order: HashMap<u64, VecDeque<u64>>,
    /// Live settled entries per user (stale queue ids excluded).
    done_counts: HashMap<u64, usize>,
    /// Last TTL sweep ([`Clock`] nanos); sweeps are rate-limited so
    /// every idle tick does not rescan the table.
    last_sweep_nanos: u64,
}

impl IdemTable {
    fn new() -> Self {
        Self {
            entries: HashMap::new(),
            done_order: HashMap::new(),
            done_counts: HashMap::new(),
            last_sweep_nanos: 0,
        }
    }

    /// Remove `key` without settling (retryable refusal / worker loss).
    fn release(&mut self, key: (u64, u64)) {
        if let Some(IdemState::Done(..)) = self.entries.remove(&key) {
            self.drop_done_count(key.0);
        }
    }

    /// Record the terminal outcome for `key`, evicting the user's
    /// oldest settled entries beyond `cap`. Returns how many were
    /// evicted.
    fn settle(&mut self, key: (u64, u64), body: String, now: u64, cap: usize) -> u64 {
        let (user, id) = key;
        if !matches!(
            self.entries.insert(key, IdemState::Done(body, now)),
            Some(IdemState::Done(..))
        ) {
            *self.done_counts.entry(user).or_insert(0) += 1;
        }
        self.done_order.entry(user).or_default().push_back(id);
        let mut evicted = 0u64;
        while self.done_counts.get(&user).copied().unwrap_or(0) > cap.max(1) {
            let Some(queue) = self.done_order.get_mut(&user) else {
                break;
            };
            let Some(old_id) = queue.pop_front() else {
                break;
            };
            if matches!(self.entries.get(&(user, old_id)), Some(IdemState::Done(..))) {
                self.entries.remove(&(user, old_id));
                self.drop_done_count(user);
                evicted += 1;
            }
            // A stale id (already released) is simply discarded.
        }
        evicted
    }

    /// Reap settled outcomes older than `ttl_nanos` and purge stale
    /// queue ids. Returns how many settled entries were evicted.
    fn sweep(&mut self, now: u64, ttl_nanos: u64) -> u64 {
        let mut evicted = 0u64;
        if ttl_nanos > 0 {
            let expired: Vec<(u64, u64)> = self
                .entries
                .iter()
                .filter_map(|(key, state)| match state {
                    IdemState::Done(_, at) if now.saturating_sub(*at) >= ttl_nanos => Some(*key),
                    _ => None,
                })
                .collect();
            for key in expired {
                self.entries.remove(&key);
                self.drop_done_count(key.0);
                evicted += 1;
            }
        }
        // Purge stale ids so the order queues stay proportional to the
        // live table even when TTL (not the cap) does the evicting.
        self.done_order.retain(|user, queue| {
            queue.retain(|id| matches!(self.entries.get(&(*user, *id)), Some(IdemState::Done(..))));
            !queue.is_empty()
        });
        self.done_counts.retain(|_, count| *count > 0);
        evicted
    }

    fn drop_done_count(&mut self, user: u64) {
        if let Some(count) = self.done_counts.get_mut(&user) {
            *count = count.saturating_sub(1);
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

struct WireShared {
    server: Server,
    applier: crate::replica::Applier,
    clock: Arc<dyn Clock>,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    shed_net: AtomicU64,
    torn: AtomicU64,
    retried: AtomicU64,
    idem_evicted: AtomicU64,
    unauthorized: AtomicU64,
    active_connections: AtomicU64,
    idem: Mutex<IdemTable>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    config: WireConfig,
}

/// The networked serving front-end. See the module docs for the wire
/// format and the drain contract.
pub struct WireServer {
    shared: Arc<WireShared>,
    accept_handle: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.local_addr)
            .field("report", &self.report())
            .finish()
    }
}

/// What a graceful [`WireServer::shutdown`] left behind.
#[derive(Debug)]
pub struct WireShutdownOutcome {
    /// Final counters with the wire-level `shed_net`/`torn` folded in —
    /// this is the report clients reconcile against.
    pub report: ServeReport,
    /// The degradation ladder's per-tier accounting.
    pub degradation: geoind_core::DegradationReport,
    /// Outcome of the final per-shard ledger checkpoint.
    pub checkpoint: Result<(), crate::journal::JournalError>,
    /// Idempotent replays served from the retry table.
    pub retried: u64,
}

impl WireServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`), start the inner worker pool,
    /// and begin accepting connections.
    ///
    /// # Errors
    /// Any I/O error from binding the listener.
    pub fn start(
        mechanism: ResilientMechanism,
        ledger: ShardedLedger,
        clock: Arc<dyn Clock>,
        config: WireConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let applier = crate::replica::Applier::new(&ledger, config.standby);
        let server = Server::start(mechanism, ledger, Arc::clone(&clock), config.serve);
        let shared = Arc::new(WireShared {
            server,
            applier,
            clock,
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            shed_net: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            idem_evicted: AtomicU64::new(0),
            unauthorized: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            idem: Mutex::new(IdemTable::new()),
            handlers: Mutex::new(Vec::new()),
            config,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || accept_loop(&accept_shared, listener));
        Ok(Self {
            shared,
            accept_handle: Some(accept_handle),
            local_addr,
        })
    }

    /// The bound address (resolves the port when started with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a client has posted `/shutdown`. The owner polls this and
    /// calls [`Self::shutdown`]; handlers never tear the server down
    /// from inside a connection.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Counters so far, with wire-level `shed_net`/`torn` folded in.
    pub fn report(&self) -> ServeReport {
        self.shared.report()
    }

    /// Idempotent replays served from the retry table so far.
    pub fn retried(&self) -> u64 {
        self.shared.retried.load(Ordering::Relaxed)
    }

    /// Live idempotency-table entries (test/ops visibility for the
    /// per-user cap and TTL sweep).
    pub fn idem_entries(&self) -> usize {
        self.shared
            .idem
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether this server is still a warm standby (refusing `/protect`
    /// with `503 standby` while applying the primary's records).
    pub fn standby(&self) -> bool {
        self.shared.applier.standby()
    }

    /// The fence generation this server enforces on `/replicate`.
    pub fn fence_gen(&self) -> u64 {
        self.shared.applier.fence_gen()
    }

    /// Promote this standby to primary: bump and persist the fence
    /// generation past everything ever seen, checkpoint every shard,
    /// and start serving `/protect`. Idempotent (a second promotion
    /// just bumps the generation again). Same effect as `POST
    /// /promote` or `SIGUSR1`.
    ///
    /// # Errors
    /// [`crate::ledger::SpendError::Journal`] when persisting the
    /// generation or checkpointing fails — the standby stays fenced-off
    /// rather than serving with an unpersisted generation.
    pub fn promote(&self) -> Result<u64, crate::ledger::SpendError> {
        self.shared.applier.promote(self.shared.server.ledger())
    }

    /// Total ε spent across all users this epoch (healthy shards).
    pub fn ledger_total_spent(&self) -> f64 {
        self.shared.server.ledger_total_spent()
    }

    /// Ledger shards refusing their users fail-closed after a failed
    /// recovery.
    pub fn failed_shards(&self) -> Vec<(usize, String)> {
        self.shared.server.failed_shards()
    }

    /// Graceful drain: stop accepting → join connection handlers (their
    /// in-flight exchanges finish) → drain the admission queue → flush
    /// the journals → snapshot the final report. See the module docs.
    pub fn shutdown(mut self) -> WireShutdownOutcome {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self
            .shared
            .handlers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            // A panicked handler must not hide the remaining drain.
            let _ = handle.join();
        }
        let Ok(shared) = Arc::try_unwrap(self.shared) else {
            // Accept loop and every handler are joined; no other clone
            // can exist.
            unreachable!("wire shared state still referenced after joining all threads");
        };
        let shed_net = shared.shed_net.load(Ordering::Relaxed);
        let torn = shared.torn.load(Ordering::Relaxed);
        let retried = shared.retried.load(Ordering::Relaxed);
        let idem_evicted = shared.idem_evicted.load(Ordering::Relaxed);
        let unauthorized = shared.unauthorized.load(Ordering::Relaxed);
        let fenced_nacks = shared.applier.fenced_total();
        // Ship any still-pending replication records before the journals
        // close: a graceful drain must leave the follower caught up.
        if let Some(shipper) = shared.server.ledger().shipper() {
            shipper.flush_all();
        }
        let inner = shared.server.shutdown();
        let mut report = inner.report;
        report.shed_net = shed_net;
        report.torn = torn;
        report.idem_evicted = idem_evicted;
        report.unauthorized = unauthorized;
        report.fenced += fenced_nacks;
        WireShutdownOutcome {
            report,
            degradation: inner.degradation,
            checkpoint: inner.checkpoint,
            retried,
        }
    }
}

impl WireShared {
    fn report(&self) -> ServeReport {
        let mut report = self.server.report();
        report.shed_net = self.shed_net.load(Ordering::Relaxed);
        report.torn = self.torn.load(Ordering::Relaxed);
        report.idem_evicted = self.idem_evicted.load(Ordering::Relaxed);
        report.unauthorized = self.unauthorized.load(Ordering::Relaxed);
        // `fenced` folds both sides of the fence: spends the gate
        // refused because the local shipper is fenced, and stale-
        // generation batches this applier nacked.
        report.fenced += self.applier.fenced_total();
        report
    }
}

fn accept_loop(shared: &Arc<WireShared>, listener: TcpListener) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        if crate::signal::termination_requested() {
            // SIGTERM/SIGINT landed: stop accepting immediately and let
            // the owner (which polls the same flag) run the graceful
            // drain — accept-stop is the first step of the ordering.
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if failpoint::hit("serve.net.accept") {
                    // Injected accept fault: the connection vanishes
                    // before a byte is read — the client sees a reset
                    // and retries.
                    shared.shed_net.fetch_add(1, Ordering::Relaxed);
                    drop(stream);
                    continue;
                }
                let active = shared.active_connections.load(Ordering::Relaxed);
                if active >= shared.config.max_connections.max(1) as u64 {
                    // Over the accept cap: explicit counted refusal,
                    // never a hang. Best-effort write; the shed is
                    // counted either way.
                    shared.shed_net.fetch_add(1, Ordering::Relaxed);
                    refuse_connection(stream);
                    continue;
                }
                shared.active_connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || handle_connection(&conn_shared, stream));
                shared
                    .handlers
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept error (e.g. EMFILE): back off and keep
                // listening rather than killing the server.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn refuse_connection(mut stream: TcpStream) {
    let body = r#"{"status":"too_many_connections"}"#;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = stream.write_all(render_http(503, body).as_bytes());
}

/// One parsed HTTP frame.
struct Frame {
    method: String,
    path: String,
    /// `Authorization` header value, verbatim, when present.
    auth: Option<String>,
    body: Vec<u8>,
}

enum ReadOutcome {
    /// A complete frame arrived (leftover pipelined bytes stay buffered).
    Request(Frame),
    /// Read deadline passed with no frame in progress — idle connection.
    Idle,
    /// Clean close with nothing buffered.
    Closed,
    /// The peer vanished or stalled mid-frame: the request is torn and
    /// must burn no budget.
    Torn,
    /// The declared body exceeds the cap.
    TooLarge,
    /// The head is not parseable HTTP.
    BadHead,
}

fn read_frame(stream: &mut TcpStream, pending: &mut Vec<u8>, max_body: usize) -> ReadOutcome {
    let mut buf = [0u8; 4096];
    loop {
        match try_extract_frame(pending, max_body) {
            Extract::Frame(frame) => return ReadOutcome::Request(frame),
            Extract::Bad => return ReadOutcome::BadHead,
            Extract::TooLarge => return ReadOutcome::TooLarge,
            Extract::Need => {}
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                return if pending.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Torn
                };
            }
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return if pending.is_empty() {
                    ReadOutcome::Idle
                } else {
                    ReadOutcome::Torn
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                return if pending.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Torn
                };
            }
        }
    }
}

enum Extract {
    Frame(Frame),
    Need,
    Bad,
    TooLarge,
}

fn try_extract_frame(pending: &mut Vec<u8>, max_body: usize) -> Extract {
    let Some(head_end) = pending.windows(4).position(|w| w == b"\r\n\r\n") else {
        // Bound the head: a peer streaming garbage without ever sending
        // CRLFCRLF must not grow the buffer unboundedly.
        if pending.len() > max_body + 4096 {
            return Extract::Bad;
        }
        return Extract::Need;
    };
    let Ok(head) = std::str::from_utf8(&pending[..head_end]) else {
        return Extract::Bad;
    };
    let mut lines = head.split("\r\n");
    let Some(request_line) = lines.next() else {
        return Extract::Bad;
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Extract::Bad;
    };
    if method.is_empty() || path.is_empty() {
        return Extract::Bad;
    }
    let mut content_length = 0usize;
    let mut auth = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                match value.trim().parse::<usize>() {
                    Ok(n) => content_length = n,
                    Err(_) => return Extract::Bad,
                }
            } else if name.eq_ignore_ascii_case("authorization") {
                auth = Some(value.trim().to_string());
            }
        }
    }
    if content_length > max_body {
        return Extract::TooLarge;
    }
    let total = head_end + 4 + content_length;
    if pending.len() < total {
        return Extract::Need;
    }
    let method = method.to_string();
    let path = path.to_string();
    let body = pending[head_end + 4..total].to_vec();
    // Keep any pipelined follow-on bytes for the next frame.
    pending.drain(..total);
    Extract::Frame(Frame {
        method,
        path,
        auth,
        body,
    })
}

/// Constant-time bearer-token check: the comparison XOR-folds every
/// byte so a mismatch at byte 0 takes as long as one at byte N (no
/// early exit an attacker could time). The length itself is not
/// secret.
fn authorized(header: Option<&str>, token: &str) -> bool {
    let Some(value) = header else {
        return false;
    };
    let Some(presented) = value.strip_prefix("Bearer ") else {
        return false;
    };
    let (a, b) = (presented.trim().as_bytes(), token.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

fn render_http(status: u16, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len()
    )
}

fn handle_connection(shared: &Arc<WireShared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let read_timeout = Duration::from_millis(shared.config.read_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.config.write_timeout_ms.max(1),
    )));
    let mut pending = Vec::new();
    let idle_cap = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    let mut last_activity = std::time::Instant::now();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match read_frame(&mut stream, &mut pending, shared.config.max_body_bytes) {
            ReadOutcome::Idle => {
                // No frame in progress and nothing in flight (responses
                // are written before the next read begins): reap the
                // connection once it has idled past the cap. The same
                // tick drives the idempotency-table TTL sweep — idle
                // read deadlines are the one periodic pulse every
                // serving process already has.
                sweep_idem(shared);
                if last_activity.elapsed() >= idle_cap {
                    break;
                }
                continue;
            }
            ReadOutcome::Closed => break,
            ReadOutcome::Torn => {
                // Cut mid-frame: nothing was parsed, no budget burned.
                shared.torn.fetch_add(1, Ordering::Relaxed);
                break;
            }
            ReadOutcome::TooLarge => {
                shared.shed_net.fetch_add(1, Ordering::Relaxed);
                let _ = stream.write_all(render_http(413, r#"{"status":"too_large"}"#).as_bytes());
                break;
            }
            ReadOutcome::BadHead => {
                shared.shed_net.fetch_add(1, Ordering::Relaxed);
                let _ =
                    stream.write_all(render_http(400, r#"{"status":"bad_request"}"#).as_bytes());
                break;
            }
            ReadOutcome::Request(frame) => {
                last_activity = std::time::Instant::now();
                if failpoint::hit("serve.net.read_torn") {
                    // The frame arrived but is treated as torn before any
                    // parse or gate: a torn request burns no budget.
                    shared.torn.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if failpoint::hit("serve.net.stall") {
                    // Simulated peer stall mid-exchange: hold the
                    // connection until the read deadline would have
                    // fired, then drop it without a response.
                    std::thread::sleep(read_timeout);
                    shared.torn.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if let Some(token) = shared.config.auth_token.as_deref() {
                    // `/healthz` stays open: probes and orchestrators
                    // must see readiness without holding the secret.
                    if frame.path != "/healthz" && !authorized(frame.auth.as_deref(), token) {
                        shared.unauthorized.fetch_add(1, Ordering::Relaxed);
                        let rendered = render_http(401, r#"{"status":"unauthorized"}"#);
                        if stream.write_all(rendered.as_bytes()).is_err() {
                            shared.torn.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        continue;
                    }
                }
                let is_protect = frame.method == "POST" && frame.path == "/protect";
                let (status, body) = dispatch(shared, &frame);
                let rendered = render_http(status, &body);
                if is_protect && failpoint::hit("serve.net.write_short") {
                    // The outcome (and any spend) is already journaled
                    // and parked in the idempotency table; cut the
                    // response short so the client must retry — the
                    // retry replays, it does not spend again.
                    let half = rendered.len() / 2;
                    let _ = stream.write_all(&rendered.as_bytes()[..half]);
                    shared.torn.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if stream.write_all(rendered.as_bytes()).is_err() {
                    shared.torn.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
    shared.active_connections.fetch_sub(1, Ordering::Relaxed);
}

/// Rate-limited TTL sweep of the retry table, driven from idle ticks.
fn sweep_idem(shared: &Arc<WireShared>) {
    if shared.config.idem_ttl_ms == 0 {
        return;
    }
    let now = shared.clock.now_nanos();
    let mut idem = shared.idem.lock().unwrap_or_else(PoisonError::into_inner);
    if now.saturating_sub(idem.last_sweep_nanos) < 1_000_000_000 {
        return;
    }
    idem.last_sweep_nanos = now;
    let ttl_nanos = shared.config.idem_ttl_ms.saturating_mul(1_000_000);
    let evicted = idem.sweep(now, ttl_nanos);
    if evicted > 0 {
        shared.idem_evicted.fetch_add(evicted, Ordering::Relaxed);
    }
}

fn dispatch(shared: &Arc<WireShared>, frame: &Frame) -> (u16, String) {
    match (frame.method.as_str(), frame.path.as_str()) {
        ("POST", "/protect") => {
            if shared.applier.standby() {
                // A warm standby never spends on its own: clients that
                // find it before promotion get a counted, retryable
                // refusal (their failover logic decides what next).
                shared.shed_net.fetch_add(1, Ordering::Relaxed);
                (503, r#"{"status":"standby"}"#.to_string())
            } else {
                dispatch_protect(shared, &frame.body)
            }
        }
        ("GET", "/report") => (200, report_body(shared)),
        ("GET", "/healthz") => healthz_body(shared),
        ("POST", "/repair") => {
            let started = shared.server.ledger().repair_now();
            (200, format!(r#"{{"status":"repair","started":{started}}}"#))
        }
        ("POST", "/replicate") => {
            // Always 200 with a JSON verdict: transport-level success,
            // ack/nack decided by the applier (fencing, epoch, shape).
            (
                200,
                shared.applier.handle(shared.server.ledger(), &frame.body),
            )
        }
        ("POST", "/promote") => match shared.applier.promote(shared.server.ledger()) {
            Ok(gen) => (200, format!(r#"{{"status":"promoted","gen":{gen}}}"#)),
            Err(e) => {
                let detail = Json::Str(e.to_string()).render();
                (
                    500,
                    format!(r#"{{"status":"promote_failed","detail":{detail}}}"#),
                )
            }
        },
        ("POST", "/follow") => dispatch_follow(shared, &frame.body),
        ("POST", "/shutdown") => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            (200, r#"{"status":"draining"}"#.to_string())
        }
        _ => (404, r#"{"status":"not_found"}"#.to_string()),
    }
}

/// `POST /follow {"addr":"host:port"}` — a follower registering itself
/// as this primary's replication peer. Refused when the server was not
/// started with a shipper (no `--max-replica-lag` mode).
fn dispatch_follow(shared: &Arc<WireShared>, body: &[u8]) -> (u16, String) {
    let addr = std::str::from_utf8(body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .and_then(|json| json.get("addr").and_then(Json::as_str).map(str::to_string));
    let Some(addr) = addr else {
        return (
            400,
            r#"{"status":"bad_request","detail":"missing addr"}"#.into(),
        );
    };
    let Some(shipper) = shared.server.ledger().shipper() else {
        return (503, r#"{"status":"not_replicating"}"#.into());
    };
    match shipper.set_peer(&addr) {
        Ok(()) => {
            // Push whatever is already pending so the new follower
            // catches up without waiting for the next spend.
            shipper.flush_all();
            (
                200,
                format!(r#"{{"status":"following","gen":{}}}"#, shipper.generation()),
            )
        }
        Err(e) => {
            let detail = Json::Str(e.to_string()).render();
            (
                500,
                format!(r#"{{"status":"follow_failed","detail":{detail}}}"#),
            )
        }
    }
}

fn dispatch_protect(shared: &Arc<WireShared>, body: &[u8]) -> (u16, String) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            shared.shed_net.fetch_add(1, Ordering::Relaxed);
            return (
                400,
                r#"{"status":"bad_request","detail":"body is not utf-8"}"#.into(),
            );
        }
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            shared.shed_net.fetch_add(1, Ordering::Relaxed);
            let detail = Json::Str(format!("bad json: {e}")).render();
            return (
                400,
                format!(r#"{{"status":"bad_request","detail":{detail}}}"#),
            );
        }
    };
    match parsed {
        Json::Arr(items) => {
            // Pipelined burst: submit everything before receiving
            // anything, so the jobs land in the queue together and the
            // workers drain them through the batched sampling path.
            let submitted: Vec<SubmitOutcome> =
                items.iter().map(|item| submit_one(shared, item)).collect();
            let bodies: Vec<String> = submitted
                .into_iter()
                .map(|outcome| settle_one(shared, outcome).1)
                .collect();
            (200, format!("[{}]", bodies.join(",")))
        }
        item => {
            let outcome = submit_one(shared, &item);
            settle_one(shared, outcome)
        }
    }
}

/// A protect element after the submit half: either already terminal
/// (replay, refusal, parse error) or waiting on the worker pool.
enum SubmitOutcome {
    Terminal(u16, String),
    /// Waiting on the worker; the idempotency key (if any) must be
    /// settled when the response arrives.
    InFlight(std::sync::mpsc::Receiver<Response>, Option<(u64, u64)>),
}

fn submit_one(shared: &Arc<WireShared>, item: &Json) -> SubmitOutcome {
    let Some(user) = item.get("user").and_then(Json::as_u64) else {
        shared.shed_net.fetch_add(1, Ordering::Relaxed);
        return SubmitOutcome::Terminal(
            400,
            r#"{"status":"bad_request","detail":"missing user"}"#.into(),
        );
    };
    let (Some(x), Some(y)) = (
        item.get("x").and_then(Json::as_f64),
        item.get("y").and_then(Json::as_f64),
    ) else {
        shared.shed_net.fetch_add(1, Ordering::Relaxed);
        return SubmitOutcome::Terminal(
            400,
            r#"{"status":"bad_request","detail":"missing x/y"}"#.into(),
        );
    };
    let key = item.get("id").and_then(Json::as_u64).map(|id| (user, id));
    if let Some(key) = key {
        let mut idem = shared.idem.lock().unwrap_or_else(PoisonError::into_inner);
        match idem.entries.get(&key) {
            Some(IdemState::Done(body, _)) => {
                // Retry of a settled request: replay the journaled
                // outcome verbatim; the gate is not consulted and no
                // budget is spent — at-most-once server-side.
                let body = body.clone();
                shared.retried.fetch_add(1, Ordering::Relaxed);
                return SubmitOutcome::Terminal(200, body);
            }
            Some(IdemState::Pending) => {
                return SubmitOutcome::Terminal(503, r#"{"status":"in_flight"}"#.into());
            }
            None => {
                idem.entries.insert(key, IdemState::Pending);
            }
        }
    }
    let deadline_nanos = shared.config.deadline_ms.map(|ms| {
        shared
            .clock
            .now_nanos()
            .saturating_add(ms.saturating_mul(1_000_000))
    });
    let request = Request {
        user,
        point: geoind_spatial::geom::Point::new(x, y),
        deadline_nanos,
    };
    match shared.server.submit(request) {
        Ok(rx) => SubmitOutcome::InFlight(rx, key),
        Err(err) => {
            // The submit was refused before the gate: drop the Pending
            // marker so a retry re-attempts instead of seeing in_flight
            // forever.
            if let Some(key) = key {
                shared
                    .idem
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .release(key);
            }
            let body = match err {
                SubmitError::QueueFull => r#"{"status":"overloaded"}"#,
                SubmitError::Closed => r#"{"status":"draining"}"#,
            };
            SubmitOutcome::Terminal(503, body.into())
        }
    }
}

fn settle_one(shared: &Arc<WireShared>, outcome: SubmitOutcome) -> (u16, String) {
    match outcome {
        SubmitOutcome::Terminal(status, body) => (status, body),
        SubmitOutcome::InFlight(rx, key) => match rx.recv() {
            Ok(response) => {
                let body = render_outcome(&response);
                let retryable = matches!(
                    response,
                    Response::ShardUnavailable { .. }
                        | Response::DiskFull
                        | Response::ReplicaLag { .. }
                        | Response::Fenced
                );
                if let Some(key) = key {
                    let mut idem = shared.idem.lock().unwrap_or_else(PoisonError::into_inner);
                    if retryable {
                        // Nothing was journaled and the condition may
                        // clear (repair, freed space, follower caught
                        // up, client failing over): release the key so
                        // the retry re-attempts instead of replaying
                        // the refusal forever.
                        idem.release(key);
                    } else {
                        let evicted = idem.settle(
                            key,
                            body.clone(),
                            shared.clock.now_nanos(),
                            shared.config.idem_max_per_user,
                        );
                        if evicted > 0 {
                            shared.idem_evicted.fetch_add(evicted, Ordering::Relaxed);
                        }
                    }
                }
                (if retryable { 503 } else { 200 }, body)
            }
            Err(_) => {
                // The worker dropped the reply without answering (it
                // panicked). Fail closed and let a retry re-attempt.
                if let Some(key) = key {
                    shared
                        .idem
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .release(key);
                }
                (500, r#"{"status":"internal"}"#.into())
            }
        },
    }
}

fn render_outcome(response: &Response) -> String {
    match response {
        Response::Served { point, tier } => Json::Obj(vec![
            ("status".into(), Json::Str("served".into())),
            ("x".into(), Json::Num(point.x)),
            ("y".into(), Json::Num(point.y)),
            ("tier".into(), Json::Num(tier.index() as f64)),
        ])
        .render(),
        Response::BudgetExhausted { remaining } => Json::Obj(vec![
            ("status".into(), Json::Str("budget_exhausted".into())),
            ("remaining".into(), Json::Num(*remaining)),
        ])
        .render(),
        Response::Expired => r#"{"status":"expired"}"#.to_string(),
        Response::JournalFault(detail) => Json::Obj(vec![
            ("status".into(), Json::Str("journal_fault".into())),
            ("detail".into(), Json::Str(detail.clone())),
        ])
        .render(),
        Response::ShardUnavailable { shard } => {
            format!(r#"{{"status":"shard_unavailable","shard":{shard}}}"#)
        }
        Response::DiskFull => r#"{"status":"disk_full"}"#.to_string(),
        Response::ReplicaLag { lag } => {
            format!(r#"{{"status":"replica_lag","lag":{lag}}}"#)
        }
        Response::Fenced => r#"{"status":"fenced"}"#.to_string(),
    }
}

/// `GET /healthz`: `200` while every shard serves, `503` otherwise,
/// with per-state counts and repair progress either way.
fn healthz_body(shared: &Arc<WireShared>) -> (u16, String) {
    let ledger = shared.server.ledger();
    let counts = ledger.health_counts();
    let serving = counts.all_serving();
    let body = Json::Obj(vec![
        (
            "status".into(),
            Json::Str(if serving { "ready" } else { "degraded" }.into()),
        ),
        ("shards".into(), Json::Num(ledger.shards() as f64)),
        ("ready".into(), Json::Num(counts.ready as f64)),
        ("probation".into(), Json::Num(counts.probation as f64)),
        ("quarantined".into(), Json::Num(counts.quarantined as f64)),
        ("scavenging".into(), Json::Num(counts.scavenging as f64)),
        ("failed".into(), Json::Num(counts.failed as f64)),
        (
            "repairs_running".into(),
            Json::Num(ledger.repairs_running() as f64),
        ),
        (
            "repaired_shards".into(),
            Json::Num(ledger.repaired_shards() as f64),
        ),
        (
            "scavenged".into(),
            Json::Num(ledger.scavenged_records() as f64),
        ),
        (
            "abandoned".into(),
            Json::Num(ledger.abandoned_repairs() as f64),
        ),
        // Failover probes read these without the auth token: a client
        // that lost the primary learns here whether this peer has been
        // promoted (standby=false) before re-pointing its load.
        ("standby".into(), Json::Bool(shared.applier.standby())),
        (
            "fence_gen".into(),
            Json::Num(shared.applier.fence_gen() as f64),
        ),
    ])
    .render();
    (if serving { 200 } else { 503 }, body)
}

fn report_body(shared: &Arc<WireShared>) -> String {
    let report = shared.report();
    let failed: Vec<Json> = shared
        .server
        .failed_shards()
        .into_iter()
        .map(|(k, detail)| {
            Json::Obj(vec![
                ("shard".into(), Json::Num(k as f64)),
                ("detail".into(), Json::Str(detail)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("total".into(), Json::Num(report.total() as f64)),
        ("served".into(), Json::Num(report.served() as f64)),
        (
            "served_by_tier".into(),
            Json::Arr(
                report
                    .served_by_tier
                    .iter()
                    .map(|&n| Json::Num(n as f64))
                    .collect(),
            ),
        ),
        (
            "refused_budget".into(),
            Json::Num(report.refused_budget as f64),
        ),
        ("expired".into(), Json::Num(report.expired as f64)),
        ("shed".into(), Json::Num(report.shed as f64)),
        (
            "journal_faults".into(),
            Json::Num(report.journal_faults as f64),
        ),
        (
            "refused_shard".into(),
            Json::Num(report.refused_shard as f64),
        ),
        ("disk_full".into(), Json::Num(report.disk_full as f64)),
        (
            "repaired_shards".into(),
            Json::Num(report.repaired_shards as f64),
        ),
        ("scavenged".into(), Json::Num(report.scavenged as f64)),
        ("abandoned".into(), Json::Num(report.abandoned as f64)),
        (
            "unaccounted_shards".into(),
            Json::Num(report.unaccounted_shards as f64),
        ),
        ("replica_lag".into(), Json::Num(report.replica_lag as f64)),
        ("fenced".into(), Json::Num(report.fenced as f64)),
        ("idem_evicted".into(), Json::Num(report.idem_evicted as f64)),
        ("unauthorized".into(), Json::Num(report.unauthorized as f64)),
        ("standby".into(), Json::Bool(shared.applier.standby())),
        (
            "fence_gen".into(),
            Json::Num(shared.applier.fence_gen() as f64),
        ),
        (
            "replica_applied".into(),
            Json::Num(shared.applier.applied_total() as f64),
        ),
        ("shed_net".into(), Json::Num(report.shed_net as f64)),
        ("torn".into(), Json::Num(report.torn as f64)),
        ("drained".into(), Json::Num(report.drained as f64)),
        (
            "retried".into(),
            Json::Num(shared.retried.load(Ordering::Relaxed) as f64),
        ),
        ("failed_shards".into(), Json::Arr(failed)),
        ("log_line".into(), Json::Str(report.log_line())),
    ])
    .render()
}
