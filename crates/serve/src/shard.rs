//! User-sharded spend accounting: N independent [`SpendLedger`]s behind
//! one façade, so fsync and compaction in one shard never serialize
//! against spends landing in another.
//!
//! ## Layout and routing
//!
//! Shard `k` journals under `<dir>/shard-<k>/` with the exact on-disk
//! format of a single ledger ([`crate::journal`]). A user's shard is
//! `fnv1a64(user_le_bytes) % shards` ([`shard_of`]) — pinned, so the
//! same user always lands on the same shard across restarts. Changing
//! the shard count of an existing directory is a migration, not a
//! reconfiguration; [`ShardedLedger::open`] refuses a mismatch.
//!
//! ## Fail-closed recovery
//!
//! [`ShardedLedger::open`] recovers every shard independently. A shard
//! whose journal fails recovery (I/O error, corruption of a committed
//! region, epoch regression) is held as *failed* rather than aborting
//! the whole server: healthy shards serve normally, while every spend
//! routed to the failed shard is refused with
//! [`SpendError::ShardUnavailable`]. The per-shard invariant is the
//! single-ledger one — recovered spend is never less than the spend of
//! requests actually served — and refusing the failed shard's users is
//! what keeps it: without the durable record their composed-ε position
//! is unknown, so serving them would risk silent over-spend.

use crate::journal::{fnv1a64, JournalError};
use crate::ledger::{LedgerConfig, SpendError, SpendLedger};
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One shard: either a recovered ledger or the reason it refused to open.
#[derive(Debug)]
pub(crate) enum Slot {
    /// The shard recovered; spends routed here are served normally.
    Open(SpendLedger),
    /// Recovery failed; every spend routed here is refused fail-closed.
    Failed(String),
}

/// The shard index `user` routes to among `shards` shards.
///
/// Pinned to FNV-1a-64 over the user id's little-endian bytes — the same
/// hash the journal uses for record checksums — so placement is stable
/// across restarts and across processes. Public so tests and operators
/// can predict which `shard-<k>/` directory holds a given account.
///
/// # Panics
/// Panics if `shards` is zero (a configuration bug, not a runtime
/// condition).
pub fn shard_of(user: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (fnv1a64(&user.to_le_bytes()) % shards as u64) as usize
}

/// N independent spend ledgers routed by user hash. See the module docs
/// for layout, routing, and the fail-closed recovery contract.
#[derive(Debug)]
pub struct ShardedLedger {
    slots: Vec<Mutex<Slot>>,
    cap_per_user: f64,
    epoch: u64,
}

impl ShardedLedger {
    /// Open (or create) `shards` ledgers under `dir/shard-<k>/`.
    ///
    /// Never fails as a whole: a shard whose recovery errors is recorded
    /// as failed (visible via [`failed_shards`](Self::failed_shards))
    /// and its users are refused fail-closed, while the healthy shards
    /// serve. Callers that want recovery to be all-or-nothing can check
    /// `failed_shards().is_empty()` after opening.
    ///
    /// # Panics
    /// Panics if `shards` is zero or `config.cap_per_user` is invalid
    /// (the latter via [`SpendLedger::open`]).
    pub fn open(dir: &Path, config: LedgerConfig, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let slots = (0..shards)
            .map(|k| {
                let shard_dir = dir.join(format!("shard-{k}"));
                Mutex::new(match SpendLedger::open(&shard_dir, config) {
                    Ok(ledger) => Slot::Open(ledger),
                    Err(e) => Slot::Failed(e.to_string()),
                })
            })
            .collect();
        Self {
            slots,
            cap_per_user: config.cap_per_user,
            epoch: config.epoch,
        }
    }

    /// Wrap one pre-opened ledger as a single-shard instance. Keeps
    /// callers that don't need sharding (unit tests, small deployments)
    /// on the same code path as the sharded server.
    pub fn single(ledger: SpendLedger) -> Self {
        let cap_per_user = ledger.cap_per_user();
        let epoch = ledger.epoch();
        Self {
            slots: vec![Mutex::new(Slot::Open(ledger))],
            cap_per_user,
            epoch,
        }
    }

    fn slot_for(&self, user: u64) -> (u64, MutexGuard<'_, Slot>) {
        let shard = shard_of(user, self.slots.len());
        let guard = self.slots[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (shard as u64, guard)
    }

    /// Spend `eps` from `user`'s budget, durably, holding only the lock
    /// of the shard that owns the account — spends on other shards
    /// proceed concurrently, including through their fsyncs.
    ///
    /// # Errors
    /// Everything [`SpendLedger::try_spend`] returns, plus
    /// [`SpendError::ShardUnavailable`] when the owning shard failed
    /// recovery. Any `Err` means nothing was spent.
    pub fn try_spend(&self, user: u64, eps: f64) -> Result<(), SpendError> {
        let (shard, mut guard) = self.slot_for(user);
        match &mut *guard {
            Slot::Open(ledger) => ledger.try_spend(user, eps),
            Slot::Failed(detail) => Err(SpendError::ShardUnavailable {
                shard,
                detail: detail.clone(),
            }),
        }
    }

    /// Checkpoint every healthy shard (fold WAL into snapshot). All
    /// shards are attempted even if an early one fails; the first error
    /// is returned.
    ///
    /// # Errors
    /// The first [`JournalError`] any shard's checkpoint produced.
    pub fn checkpoint_all(&self) -> Result<(), JournalError> {
        let mut first_err = None;
        for slot in &self.slots {
            let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
            if let Slot::Open(ledger) = &mut *guard {
                if let Err(e) = ledger.checkpoint() {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Composed ε already spent by `user` this epoch (0.0 if unknown or
    /// the owning shard is failed — the *refusal* is what protects a
    /// failed shard's users, not this read).
    pub fn spent(&self, user: u64) -> f64 {
        match &*self.slot_for(user).1 {
            Slot::Open(ledger) => ledger.spent(user),
            Slot::Failed(_) => 0.0,
        }
    }

    /// ε remaining for `user` this epoch (0.0 when the owning shard is
    /// failed: a refused user has nothing to spend).
    pub fn remaining(&self, user: u64) -> f64 {
        match &*self.slot_for(user).1 {
            Slot::Open(ledger) => ledger.remaining(user),
            Slot::Failed(_) => 0.0,
        }
    }

    /// Number of distinct users with recorded spend across healthy
    /// shards.
    pub fn users(&self) -> usize {
        self.fold(0, |acc, l| acc + l.users())
    }

    /// Sum of all spends across healthy shards this epoch.
    pub fn total_spent(&self) -> f64 {
        self.fold(0.0, |acc, l| acc + l.total_spent())
    }

    /// The shard count this instance was opened with.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The per-user ε cap all shards share.
    pub fn cap_per_user(&self) -> f64 {
        self.cap_per_user
    }

    /// The epoch all shards were opened at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shards that failed recovery, with the error that refused
    /// each. Empty when every shard is healthy.
    pub fn failed_shards(&self) -> Vec<(usize, String)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(k, slot)| {
                let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
                match &*guard {
                    Slot::Open(_) => None,
                    Slot::Failed(detail) => Some((k, detail.clone())),
                }
            })
            .collect()
    }

    fn fold<T>(&self, init: T, mut f: impl FnMut(T, &SpendLedger) -> T) -> T {
        let mut acc = init;
        for slot in &self.slots {
            let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
            if let Slot::Open(ledger) = &*guard {
                acc = f(acc, ledger);
            }
        }
        acc
    }

    /// Hold the lock of the shard owning `user` — lets tests stall the
    /// serving path exactly where a slow fsync would.
    #[cfg(test)]
    pub(crate) fn lock_shard(&self, user: u64) -> MutexGuard<'_, Slot> {
        self.slot_for(user).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "geoind-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config(cap: f64) -> LedgerConfig {
        LedgerConfig {
            cap_per_user: cap,
            epoch: 0,
            compact_after: 0,
        }
    }

    #[test]
    fn routing_is_stable_and_covers_every_shard() {
        // Pinned hash: the same user must land on the same shard in
        // every process, ever.
        for user in 0..256u64 {
            assert_eq!(shard_of(user, 8), shard_of(user, 8));
        }
        // And the router must actually spread load: with 256 users and
        // 8 shards, every shard owns someone.
        let mut seen = [false; 8];
        for user in 0..256u64 {
            seen[shard_of(user, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "a shard owns no users: {seen:?}");
    }

    #[test]
    fn spends_split_by_shard_and_survive_reopen() {
        let dir = temp_dir("reopen");
        let ledger = ShardedLedger::open(&dir, config(1.0), 4);
        for user in 0..20u64 {
            ledger.try_spend(user, 0.25).unwrap();
        }
        assert_eq!(ledger.users(), 20);
        assert!((ledger.total_spent() - 5.0).abs() < 1e-12);
        ledger.checkpoint_all().unwrap();
        drop(ledger);

        // Each populated shard directory exists with the single-ledger
        // on-disk format.
        let populated = (0..4)
            .filter(|&k| dir.join(format!("shard-{k}")).join("ledger.snap").exists())
            .count();
        assert!(populated >= 1);

        let reopened = ShardedLedger::open(&dir, config(1.0), 4);
        assert!(reopened.failed_shards().is_empty());
        for user in 0..20u64 {
            assert!((reopened.spent(user) - 0.25).abs() < 1e-12, "user {user}");
        }
    }

    #[test]
    fn failed_shard_refuses_its_users_while_others_serve() {
        let dir = temp_dir("failclosed");
        let ledger = ShardedLedger::open(&dir, config(1.0), 4);
        for user in 0..20u64 {
            ledger.try_spend(user, 0.25).unwrap();
        }
        ledger.checkpoint_all().unwrap();
        drop(ledger);

        // Corrupt one shard's snapshot so its recovery fails.
        let bad = 1usize;
        let snap = dir.join(format!("shard-{bad}")).join("ledger.snap");
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();

        let reopened = ShardedLedger::open(&dir, config(1.0), 4);
        let failed = reopened.failed_shards();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, bad);

        for user in 0..20u64 {
            let on_bad = shard_of(user, 4) == bad;
            match reopened.try_spend(user, 0.25) {
                Ok(()) => assert!(!on_bad, "user {user} served from a failed shard"),
                Err(SpendError::ShardUnavailable { shard, .. }) => {
                    assert!(on_bad, "user {user} refused by a healthy shard");
                    assert_eq!(shard, bad as u64);
                }
                Err(e) => panic!("unexpected refusal for user {user}: {e}"),
            }
        }
    }

    #[test]
    fn single_wraps_one_ledger_unchanged() {
        let dir = temp_dir("single");
        let inner = SpendLedger::open(&dir, config(0.5)).unwrap();
        let ledger = ShardedLedger::single(inner);
        assert_eq!(ledger.shards(), 1);
        assert!((ledger.cap_per_user() - 0.5).abs() < 1e-12);
        ledger.try_spend(7, 0.5).unwrap();
        assert!(matches!(
            ledger.try_spend(7, 0.5),
            Err(SpendError::Exhausted { user: 7, .. })
        ));
        assert!((ledger.remaining(7)).abs() < 1e-12);
    }

    #[test]
    fn open_refuses_a_zero_shard_count() {
        let result = std::panic::catch_unwind(|| shard_of(3, 0));
        assert!(result.is_err());
    }
}
