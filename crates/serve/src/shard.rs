//! User-sharded spend accounting: N independent [`SpendLedger`]s behind
//! one façade, so fsync and compaction in one shard never serialize
//! against spends landing in another.
//!
//! ## Layout and routing
//!
//! Shard `k` journals under `<dir>/shard-<k>/` with the exact on-disk
//! format of a single ledger ([`crate::journal`]). A user's shard is
//! `fnv1a64(user_le_bytes) % shards` ([`shard_of`]) — pinned, so the
//! same user always lands on the same shard across restarts. Changing
//! the shard count of an existing directory is a migration, not a
//! reconfiguration; [`ShardedLedger::open`] refuses a mismatch.
//!
//! ## Fail-closed recovery and self-healing repair
//!
//! [`ShardedLedger::open`] recovers every shard independently. A shard
//! whose journal fails recovery (I/O error, corruption of a committed
//! region, epoch regression) refuses its users with
//! [`SpendError::ShardUnavailable`] rather than aborting the whole
//! server. With repair enabled ([`RepairMode::Auto`] or
//! [`RepairMode::Manual`]) the shard is not terminal: it walks a typed
//! state machine
//!
//! ```text
//! Quarantined → Scavenging → Open{probation} → Open (Ready)
//!       ↘ (salvage unprovable) → Failed
//! ```
//!
//! A background repair task [`crate::journal::scavenge`]s the damaged
//! directory — salvaging every record whose checksum and generation
//! chain verify, resolving ambiguity *upward* so recovered spend ≥
//! served spend stays provable — commits a fresh snapshot atomically,
//! re-runs the standard [`SpendLedger::open`] against it, verifies the
//! recovered totals cover the salvage, and only then swaps the slot
//! back in. A freshly repaired shard serves on *probation* until its
//! first durable append proves the device writes again; a shard whose
//! salvage cannot be proven stays refused with the real typed
//! [`JournalError`] (never a stringified copy).
//!
//! A live shard that hits a persistent write fault (three consecutive
//! journal refusals, e.g. a full disk) self-quarantines and enters the
//! same repair loop rather than serving unjournaled spends; transient
//! `EIO` appends are retried in place with seeded exponential backoff
//! first. The per-shard invariant is always the single-ledger one —
//! recovered spend is never less than the spend of requests actually
//! served — and refusing an unhealthy shard's users is what keeps it.

use crate::journal::{self, fnv1a64, JournalError};
use crate::ledger::{LedgerConfig, SpendError, SpendLedger};
use crate::replica::Shipper;
use geoind_rng::{Rng, SeededRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Consecutive journal refusals after which a shard self-quarantines
/// (repair enabled) instead of refusing request-by-request forever.
const QUARANTINE_STRIKES: u32 = 3;
/// In-place retries of a transient-`EIO` append before the refusal is
/// surfaced (each retry backs off exponentially with seeded jitter).
const EIO_RETRY_LIMIT: u32 = 3;
/// Scavenge attempts per repair task before the shard is abandoned to
/// `Failed` (corruption abandons immediately; only transient refusals —
/// full disk, device errors, injected faults — are retried).
const REPAIR_ATTEMPTS: u32 = 5;
/// Base backoff between repair attempts / EIO retries, milliseconds.
const BACKOFF_BASE_MS: u64 = 1;

/// One shard's slot in the repair state machine.
#[derive(Debug)]
pub(crate) enum Slot {
    /// The shard serves. `probation` is true after a repair until the
    /// first durable append proves the device writes again; `strikes`
    /// counts consecutive journal refusals toward self-quarantine.
    Open {
        /// The recovered (or repaired) ledger.
        ledger: SpendLedger,
        /// Repaired but not yet re-proven by a durable append.
        probation: bool,
        /// Consecutive journal refusals (reset by any success).
        strikes: u32,
    },
    /// Refusing fail-closed, waiting for a repair task to pick it up.
    Quarantined {
        /// The typed error that took the shard down.
        error: JournalError,
    },
    /// A repair task owns the shard's files right now.
    Scavenging {
        /// The typed error that took the shard down.
        error: JournalError,
    },
    /// Salvage could not prove the fail-closed invariant (or repair is
    /// disabled); refusing with the real typed reason.
    Failed {
        /// The typed error that refused recovery or repair.
        error: JournalError,
    },
}

/// Externally visible health of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Ready,
    /// Repaired and serving, not yet re-proven by a durable append.
    Probation,
    /// Refusing, waiting for repair.
    Quarantined,
    /// Refusing, repair in progress.
    Scavenging,
    /// Refusing terminally (salvage unprovable or repair disabled).
    Failed,
}

/// Per-state shard counts, the `GET /healthz` payload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardHealthCounts {
    /// Shards serving normally.
    pub ready: u64,
    /// Shards serving on post-repair probation.
    pub probation: u64,
    /// Shards quarantined awaiting repair.
    pub quarantined: u64,
    /// Shards being scavenged right now.
    pub scavenging: u64,
    /// Shards refused terminally.
    pub failed: u64,
}

impl ShardHealthCounts {
    /// True when every shard is serving (ready or probation).
    pub fn all_serving(&self) -> bool {
        self.quarantined == 0 && self.scavenging == 0 && self.failed == 0
    }
}

/// When damaged shards are repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairMode {
    /// Quarantined shards (at open or live) spawn a repair task
    /// immediately.
    Auto,
    /// Damaged shards quarantine and wait for
    /// [`ShardedLedger::repair_now`] (`POST /repair` on the wire).
    Manual,
    /// Legacy terminal behavior: a damaged shard is `Failed` forever.
    Off,
}

impl RepairMode {
    /// Parse the CLI grammar `auto|manual|off`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Self::Auto),
            "manual" => Ok(Self::Manual),
            "off" => Ok(Self::Off),
            other => Err(format!("unknown repair mode {other:?} (auto|manual|off)")),
        }
    }
}

/// The shard index `user` routes to among `shards` shards.
///
/// Pinned to FNV-1a-64 over the user id's little-endian bytes — the same
/// hash the journal uses for record checksums — so placement is stable
/// across restarts and across processes. Public so tests and operators
/// can predict which `shard-<k>/` directory holds a given account.
///
/// # Panics
/// Panics if `shards` is zero (a configuration bug, not a runtime
/// condition).
pub fn shard_of(user: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (fnv1a64(&user.to_le_bytes()) % shards as u64) as usize
}

/// Shared state behind the façade: the slots plus everything a
/// background repair task needs to swap one back in.
#[derive(Debug)]
struct ShardSet {
    slots: Vec<Mutex<Slot>>,
    /// `shard-<k>/` directory per slot (empty for [`ShardedLedger::single`],
    /// which cannot be repaired).
    dirs: Vec<PathBuf>,
    config: LedgerConfig,
    repair_mode: RepairMode,
    /// Completed quarantine→repair→serving round trips.
    repaired_shards: AtomicU64,
    /// WAL records + snapshot accounts salvaged by completed repairs.
    scavenged: AtomicU64,
    /// Repair tasks that ended with the shard still refused (`Failed`).
    abandoned: AtomicU64,
    /// Repair tasks currently running.
    repairs_running: AtomicU64,
    repair_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Warm-standby replication, when this node is a primary with a
    /// lag bound (see [`crate::replica`]). Set once at startup.
    shipper: OnceLock<Arc<Shipper>>,
}

/// N independent spend ledgers routed by user hash. See the module docs
/// for layout, routing, and the fail-closed repair contract.
#[derive(Debug)]
pub struct ShardedLedger {
    inner: Arc<ShardSet>,
}

impl ShardedLedger {
    /// Open (or create) `shards` ledgers under `dir/shard-<k>/` with
    /// repair disabled ([`RepairMode::Off`]): a shard whose recovery
    /// errors is held `Failed` and its users are refused fail-closed,
    /// while the healthy shards serve. Callers that want recovery to be
    /// all-or-nothing can check `failed_shards().is_empty()` after
    /// opening; callers that want self-healing use
    /// [`Self::open_with_repair`].
    ///
    /// # Panics
    /// Panics if `shards` is zero or `config.cap_per_user` is invalid
    /// (the latter via [`SpendLedger::open`]).
    pub fn open(dir: &Path, config: LedgerConfig, shards: usize) -> Self {
        Self::open_with_repair(dir, config, shards, RepairMode::Off)
    }

    /// [`Self::open`] with an explicit [`RepairMode`]. Under `Auto` a
    /// shard that fails recovery is quarantined and a repair task starts
    /// immediately; under `Manual` it quarantines and waits for
    /// [`Self::repair_now`].
    ///
    /// # Panics
    /// Panics if `shards` is zero or `config.cap_per_user` is invalid.
    pub fn open_with_repair(
        dir: &Path,
        config: LedgerConfig,
        shards: usize,
        repair_mode: RepairMode,
    ) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let dirs: Vec<PathBuf> = (0..shards)
            .map(|k| dir.join(format!("shard-{k}")))
            .collect();
        let slots = dirs
            .iter()
            .map(|shard_dir| {
                Mutex::new(match SpendLedger::open(shard_dir, config) {
                    Ok(ledger) => Slot::Open {
                        ledger,
                        probation: false,
                        strikes: 0,
                    },
                    Err(error) => match repair_mode {
                        RepairMode::Off => Slot::Failed { error },
                        _ => Slot::Quarantined { error },
                    },
                })
            })
            .collect();
        let this = Self {
            inner: Arc::new(ShardSet {
                slots,
                dirs,
                config,
                repair_mode,
                repaired_shards: AtomicU64::new(0),
                scavenged: AtomicU64::new(0),
                abandoned: AtomicU64::new(0),
                repairs_running: AtomicU64::new(0),
                repair_handles: Mutex::new(Vec::new()),
                shipper: OnceLock::new(),
            }),
        };
        if repair_mode == RepairMode::Auto {
            this.repair_now();
        }
        this
    }

    /// Wrap one pre-opened ledger as a single-shard instance. Keeps
    /// callers that don't need sharding (unit tests, small deployments)
    /// on the same code path as the sharded server. Repair is disabled:
    /// the wrapped ledger's directory is not known here.
    pub fn single(ledger: SpendLedger) -> Self {
        let config = LedgerConfig {
            cap_per_user: ledger.cap_per_user(),
            epoch: ledger.epoch(),
            compact_after: 0,
        };
        Self {
            inner: Arc::new(ShardSet {
                slots: vec![Mutex::new(Slot::Open {
                    ledger,
                    probation: false,
                    strikes: 0,
                })],
                dirs: vec![PathBuf::new()],
                config,
                repair_mode: RepairMode::Off,
                repaired_shards: AtomicU64::new(0),
                scavenged: AtomicU64::new(0),
                abandoned: AtomicU64::new(0),
                repairs_running: AtomicU64::new(0),
                repair_handles: Mutex::new(Vec::new()),
                shipper: OnceLock::new(),
            }),
        }
    }

    /// Attach warm-standby replication: every subsequent spend is
    /// admitted against the shipper's lag bound and served only after
    /// the follower acks it durably. Returns false (and changes
    /// nothing) when a shipper was already attached.
    pub fn attach_shipper(&self, shipper: Arc<Shipper>) -> bool {
        self.inner.shipper.set(shipper).is_ok()
    }

    /// The attached shipper, if this node replicates to a standby.
    pub fn shipper(&self) -> Option<Arc<Shipper>> {
        self.inner.shipper.get().map(Arc::clone)
    }

    /// The directory the `shard-<k>/` subdirectories live under, or
    /// `None` for a [`Self::single`] wrap (no directory known).
    pub(crate) fn base_dir(&self) -> Option<PathBuf> {
        let first = self.inner.dirs.first()?;
        if first.as_os_str().is_empty() {
            return None;
        }
        first.parent().map(Path::to_path_buf)
    }

    fn slot_for(&self, user: u64) -> (u64, MutexGuard<'_, Slot>) {
        let shard = shard_of(user, self.inner.slots.len());
        let guard = self.inner.slots[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (shard as u64, guard)
    }

    /// Spend `eps` from `user`'s budget, durably, holding only the lock
    /// of the shard that owns the account — spends on other shards
    /// proceed concurrently, including through their fsyncs.
    ///
    /// A transient-`EIO` append is retried in place (bounded, seeded
    /// exponential backoff) before the refusal is surfaced. With repair
    /// enabled, [`QUARANTINE_STRIKES`] consecutive journal refusals
    /// self-quarantine the shard — it stops serving unjournaled spends
    /// and enters the repair loop.
    ///
    /// # Errors
    /// Everything [`SpendLedger::try_spend`] returns, plus
    /// [`SpendError::ShardUnavailable`] while the owning shard is
    /// quarantined, scavenging, or failed; with a shipper attached,
    /// also [`SpendError::ReplicaLag`] / [`SpendError::Fenced`]
    /// (nothing was spent on the pre-spend refusals; a post-spend
    /// replication refusal leaves the spend journaled and queued —
    /// refusing anyway over-counts at worst, never under).
    pub fn try_spend(&self, user: u64, eps: f64) -> Result<(), SpendError> {
        let shipper = self.shipper();
        let shard_index = shard_of(user, self.inner.slots.len());
        if let Some(shipper) = shipper.as_deref() {
            shipper.admit(shard_index)?;
        }
        let published = {
            let (shard, mut guard) = self.slot_for(user);
            match &mut *guard {
                Slot::Open {
                    ledger,
                    probation,
                    strikes,
                } => {
                    let mut rng = SeededRng::from_seed(0x5eed ^ user ^ (shard << 32));
                    let mut attempt = 0u32;
                    let result = loop {
                        match ledger.try_spend(user, eps) {
                            Err(SpendError::Journal(e))
                                if journal::is_transient_io(&e) && attempt < EIO_RETRY_LIMIT =>
                            {
                                attempt += 1;
                                backoff_sleep(&mut rng, attempt);
                            }
                            other => break other,
                        }
                    };
                    match result {
                        Ok(()) => {
                            *strikes = 0;
                            // First durable append after a repair: probation
                            // is over, the device provably writes again.
                            *probation = false;
                            // Publish under the slot lock so the pending
                            // queue's order matches journal order.
                            Ok(shipper
                                .as_deref()
                                .map(|s| s.publish(shard_index, user, eps)))
                        }
                        Err(SpendError::Journal(error)) => {
                            *strikes += 1;
                            if self.inner.repair_mode != RepairMode::Off
                                && *strikes >= QUARANTINE_STRIKES
                            {
                                // Persistent write fault: stop fielding (and
                                // refusing) requests one by one and hand the
                                // shard to the repair loop.
                                *guard = Slot::Quarantined {
                                    error: error.clone(),
                                };
                                drop(guard);
                                if self.inner.repair_mode == RepairMode::Auto {
                                    spawn_repair(&self.inner, shard as usize);
                                }
                            }
                            Err(SpendError::Journal(error))
                        }
                        Err(other) => Err(other),
                    }
                }
                Slot::Quarantined { error } => Err(SpendError::ShardUnavailable {
                    shard,
                    detail: format!("quarantined for repair: {error}"),
                }),
                Slot::Scavenging { error } => Err(SpendError::ShardUnavailable {
                    shard,
                    detail: format!("repair in progress: {error}"),
                }),
                Slot::Failed { error } => Err(SpendError::ShardUnavailable {
                    shard,
                    detail: error.to_string(),
                }),
            }
        };
        // Ship outside the slot lock: the spend is durable locally;
        // now it must be durable on the follower before it is served.
        match (shipper.as_deref(), published) {
            (Some(shipper), Ok(Some(seq))) => shipper.wait_acked(shard_index, seq),
            (Some(shipper), Err(e)) => {
                // Admitted but never journaled: give the reserved
                // pending-queue slot back so the lag bound does not
                // leak capacity on refused spends.
                shipper.release(shard_index);
                Err(e)
            }
            (_, other) => other.map(|_| ()),
        }
    }

    /// Apply one replicated spend from the primary through the owning
    /// shard's verified ledger path (see
    /// [`SpendLedger::apply_replicated`] — no cap probe, the primary
    /// already served it).
    ///
    /// # Errors
    /// [`SpendError::ShardUnavailable`] while the owning shard is not
    /// serving, otherwise whatever the single-ledger apply returns.
    /// Any `Err` means the record is not durable here and must not be
    /// acked.
    pub fn apply_replicated(&self, user: u64, eps: f64) -> Result<(), SpendError> {
        let (shard, mut guard) = self.slot_for(user);
        match &mut *guard {
            Slot::Open {
                ledger, probation, ..
            } => {
                ledger.apply_replicated(user, eps)?;
                // A durable replicated append proves the device writes.
                *probation = false;
                Ok(())
            }
            Slot::Quarantined { error } => Err(SpendError::ShardUnavailable {
                shard,
                detail: format!("quarantined for repair: {error}"),
            }),
            Slot::Scavenging { error } => Err(SpendError::ShardUnavailable {
                shard,
                detail: format!("repair in progress: {error}"),
            }),
            Slot::Failed { error } => Err(SpendError::ShardUnavailable {
                shard,
                detail: error.to_string(),
            }),
        }
    }

    /// Spawn repair tasks for every quarantined or failed shard and
    /// return how many were started. Under [`RepairMode::Off`] this is a
    /// no-op (returns 0) — terminal means terminal.
    pub fn repair_now(&self) -> usize {
        if self.inner.repair_mode == RepairMode::Off {
            return 0;
        }
        let mut started = 0;
        for shard in 0..self.inner.slots.len() {
            if spawn_repair(&self.inner, shard) {
                started += 1;
            }
        }
        started
    }

    /// Block until every outstanding repair task finishes. Called during
    /// shutdown so the final report reflects settled slots; tests use it
    /// to await a deterministic post-repair state.
    pub fn await_repairs(&self) {
        loop {
            let handles: Vec<JoinHandle<()>> = self
                .inner
                .repair_handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .drain(..)
                .collect();
            if handles.is_empty() {
                return;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }

    /// Checkpoint every serving shard (fold WAL into snapshot). All
    /// shards are attempted even if an early one fails; the first error
    /// is returned.
    ///
    /// # Errors
    /// The first [`JournalError`] any shard's checkpoint produced.
    pub fn checkpoint_all(&self) -> Result<(), JournalError> {
        let mut first_err = None;
        for slot in &self.inner.slots {
            let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
            if let Slot::Open { ledger, .. } = &mut *guard {
                if let Err(e) = ledger.checkpoint() {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Composed ε already spent by `user` this epoch, or `None` when the
    /// owning shard is not serving — an unavailable shard's accounts are
    /// *unknown*, not zero (the refusal is what protects its users; this
    /// read is what keeps fleet-wide sums honest).
    pub fn spent(&self, user: u64) -> Option<f64> {
        match &*self.slot_for(user).1 {
            Slot::Open { ledger, .. } => Some(ledger.spent(user)),
            _ => None,
        }
    }

    /// ε remaining for `user` this epoch, or `None` when the owning
    /// shard is not serving.
    pub fn remaining(&self, user: u64) -> Option<f64> {
        match &*self.slot_for(user).1 {
            Slot::Open { ledger, .. } => Some(ledger.remaining(user)),
            _ => None,
        }
    }

    /// Number of distinct users with recorded spend across serving
    /// shards — a partial sum when [`Self::unaccounted_shards`] is
    /// nonzero.
    pub fn users(&self) -> usize {
        self.fold(0, |acc, l| acc + l.users())
    }

    /// Sum of all spends across serving shards this epoch — a partial
    /// sum when [`Self::unaccounted_shards`] is nonzero.
    pub fn total_spent(&self) -> f64 {
        self.fold(0.0, |acc, l| acc + l.total_spent())
    }

    /// Shards whose accounts are *not* included in [`Self::users`] /
    /// [`Self::total_spent`] right now (quarantined, scavenging, or
    /// failed). Surfaced in the serve report so a partial sum is never
    /// mistaken for the fleet total.
    pub fn unaccounted_shards(&self) -> u64 {
        self.inner
            .slots
            .iter()
            .filter(|slot| {
                !matches!(
                    &*slot.lock().unwrap_or_else(PoisonError::into_inner),
                    Slot::Open { .. }
                )
            })
            .count() as u64
    }

    /// The shard count this instance was opened with.
    pub fn shards(&self) -> usize {
        self.inner.slots.len()
    }

    /// The per-user ε cap all shards share.
    pub fn cap_per_user(&self) -> f64 {
        self.inner.config.cap_per_user
    }

    /// The epoch all shards were opened at.
    pub fn epoch(&self) -> u64 {
        self.inner.config.epoch
    }

    /// The repair mode this instance was opened with.
    pub fn repair_mode(&self) -> RepairMode {
        self.inner.repair_mode
    }

    /// Health of every shard, indexed by shard number.
    pub fn shard_states(&self) -> Vec<ShardHealth> {
        self.inner
            .slots
            .iter()
            .map(
                |slot| match &*slot.lock().unwrap_or_else(PoisonError::into_inner) {
                    Slot::Open {
                        probation: false, ..
                    } => ShardHealth::Ready,
                    Slot::Open {
                        probation: true, ..
                    } => ShardHealth::Probation,
                    Slot::Quarantined { .. } => ShardHealth::Quarantined,
                    Slot::Scavenging { .. } => ShardHealth::Scavenging,
                    Slot::Failed { .. } => ShardHealth::Failed,
                },
            )
            .collect()
    }

    /// Per-state shard counts (the `GET /healthz` payload).
    pub fn health_counts(&self) -> ShardHealthCounts {
        let mut counts = ShardHealthCounts::default();
        for state in self.shard_states() {
            match state {
                ShardHealth::Ready => counts.ready += 1,
                ShardHealth::Probation => counts.probation += 1,
                ShardHealth::Quarantined => counts.quarantined += 1,
                ShardHealth::Scavenging => counts.scavenging += 1,
                ShardHealth::Failed => counts.failed += 1,
            }
        }
        counts
    }

    /// The shards refused terminally, with the error that refused each
    /// (rendered; the typed error lives in the slot). Empty when every
    /// shard is serving or repairable.
    pub fn failed_shards(&self) -> Vec<(usize, String)> {
        self.inner
            .slots
            .iter()
            .enumerate()
            .filter_map(|(k, slot)| {
                let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
                match &*guard {
                    Slot::Failed { error } => Some((k, error.to_string())),
                    _ => None,
                }
            })
            .collect()
    }

    /// Completed quarantine→repair→serving round trips.
    pub fn repaired_shards(&self) -> u64 {
        self.inner.repaired_shards.load(Ordering::Relaxed)
    }

    /// WAL records + snapshot accounts salvaged by completed repairs.
    pub fn scavenged_records(&self) -> u64 {
        self.inner.scavenged.load(Ordering::Relaxed)
    }

    /// Repair tasks that ended with the shard still refused.
    pub fn abandoned_repairs(&self) -> u64 {
        self.inner.abandoned.load(Ordering::Relaxed)
    }

    /// Repair tasks running right now.
    pub fn repairs_running(&self) -> u64 {
        self.inner.repairs_running.load(Ordering::Relaxed)
    }

    fn fold<T>(&self, init: T, mut f: impl FnMut(T, &SpendLedger) -> T) -> T {
        let mut acc = init;
        for slot in &self.inner.slots {
            let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
            if let Slot::Open { ledger, .. } = &*guard {
                acc = f(acc, ledger);
            }
        }
        acc
    }

    /// Hold the lock of the shard owning `user` — lets tests stall the
    /// serving path exactly where a slow fsync would.
    #[cfg(test)]
    pub(crate) fn lock_shard(&self, user: u64) -> MutexGuard<'_, Slot> {
        self.slot_for(user).1
    }
}

/// Seeded exponential backoff: `base·2^min(attempt,6)` plus jitter in
/// `[0, base)` milliseconds — deterministic per (user, shard) seed.
fn backoff_sleep(rng: &mut SeededRng, attempt: u32) {
    let exp = BACKOFF_BASE_MS.saturating_mul(1u64 << attempt.min(6));
    let jitter = (rng.gen_f64() * BACKOFF_BASE_MS as f64) as u64;
    std::thread::sleep(Duration::from_millis(exp + jitter));
}

/// Claim `shard` for repair (Quarantined/Failed → Scavenging) and spawn
/// the background task. Returns false when the slot is not claimable
/// (already serving, already being scavenged, or a single-ledger wrap
/// with no directory).
fn spawn_repair(inner: &Arc<ShardSet>, shard: usize) -> bool {
    if inner.dirs[shard].as_os_str().is_empty() {
        return false;
    }
    {
        let mut guard = inner.slots[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Two-step move: the placeholder below is overwritten before the
        // lock drops, whichever way the match goes.
        let prev = std::mem::replace(
            &mut *guard,
            Slot::Scavenging {
                error: JournalError::Injected("repair claim in progress"),
            },
        );
        match prev {
            Slot::Quarantined { error } | Slot::Failed { error } => {
                *guard = Slot::Scavenging { error };
            }
            serving => {
                *guard = serving;
                return false;
            }
        }
    }
    inner.repairs_running.fetch_add(1, Ordering::SeqCst);
    let set = Arc::clone(inner);
    let handle = std::thread::spawn(move || {
        repair_shard(&set, shard);
        set.repairs_running.fetch_sub(1, Ordering::SeqCst);
    });
    inner
        .repair_handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(handle);
    true
}

/// The repair task: scavenge the shard's directory (retrying transient
/// refusals with seeded backoff), re-run the standard open against the
/// salvage, verify recovered ≥ salvaged per user, and swap the slot back
/// to serving-on-probation. The slot is `Scavenging` for the duration,
/// so no other thread touches the files; the lock is only held for the
/// final swap.
fn repair_shard(set: &ShardSet, shard: usize) {
    let dir = &set.dirs[shard];
    let mut rng = SeededRng::from_seed(0x4efa_15ed ^ shard as u64);
    let mut outcome: Result<(journal::ScavengeReport, SpendLedger), JournalError> =
        Err(JournalError::Injected("repair never attempted"));
    for attempt in 0..REPAIR_ATTEMPTS {
        if attempt > 0 {
            backoff_sleep(&mut rng, attempt);
        }
        outcome = journal::scavenge(dir, set.config.epoch).and_then(|report| {
            // Verified re-admission: the standard open (full checksum +
            // generation validation) must accept the salvage and recover
            // at least what was salvaged, per user.
            let ledger = SpendLedger::open(dir, set.config)?;
            for (&user, &spend) in &report.salvaged {
                if ledger.spent(user) < spend - 1e-9 {
                    return Err(JournalError::Corrupt {
                        section: format!("repair verification (shard {shard})"),
                        detail: format!(
                            "re-open recovered {} for user {user}, salvage proved {spend}",
                            ledger.spent(user)
                        ),
                    });
                }
            }
            Ok((report, ledger))
        });
        match &outcome {
            Ok(_) => break,
            // Corruption and epoch regression are not transient: no
            // retry budget will make the salvage provable.
            Err(JournalError::Corrupt { .. } | JournalError::EpochRegression { .. }) => break,
            Err(_) => {}
        }
    }
    let mut guard = set.slots[shard]
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    match outcome {
        Ok((report, ledger)) => {
            set.scavenged.fetch_add(
                report.wal_records + report.salvaged.len() as u64,
                Ordering::Relaxed,
            );
            set.repaired_shards.fetch_add(1, Ordering::Relaxed);
            *guard = Slot::Open {
                ledger,
                probation: true,
                strikes: 0,
            };
        }
        Err(error) => {
            set.abandoned.fetch_add(1, Ordering::Relaxed);
            *guard = Slot::Failed { error };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "geoind-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config(cap: f64) -> LedgerConfig {
        LedgerConfig {
            cap_per_user: cap,
            epoch: 0,
            compact_after: 0,
        }
    }

    fn corrupt_snapshot(dir: &Path, shard: usize) {
        let snap = dir.join(format!("shard-{shard}")).join("ledger.snap");
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();
    }

    #[test]
    fn routing_is_stable_and_covers_every_shard() {
        // Pinned hash: the same user must land on the same shard in
        // every process, ever.
        for user in 0..256u64 {
            assert_eq!(shard_of(user, 8), shard_of(user, 8));
        }
        // And the router must actually spread load: with 256 users and
        // 8 shards, every shard owns someone.
        let mut seen = [false; 8];
        for user in 0..256u64 {
            seen[shard_of(user, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "a shard owns no users: {seen:?}");
    }

    #[test]
    fn spends_split_by_shard_and_survive_reopen() {
        let dir = temp_dir("reopen");
        let ledger = ShardedLedger::open(&dir, config(1.0), 4);
        for user in 0..20u64 {
            ledger.try_spend(user, 0.25).unwrap();
        }
        assert_eq!(ledger.users(), 20);
        assert!((ledger.total_spent() - 5.0).abs() < 1e-12);
        ledger.checkpoint_all().unwrap();
        drop(ledger);

        // Each populated shard directory exists with the single-ledger
        // on-disk format.
        let populated = (0..4)
            .filter(|&k| dir.join(format!("shard-{k}")).join("ledger.snap").exists())
            .count();
        assert!(populated >= 1);

        let reopened = ShardedLedger::open(&dir, config(1.0), 4);
        assert!(reopened.failed_shards().is_empty());
        assert_eq!(reopened.unaccounted_shards(), 0);
        for user in 0..20u64 {
            let spent = reopened.spent(user).expect("serving shard");
            assert!((spent - 0.25).abs() < 1e-12, "user {user}");
        }
    }

    #[test]
    fn failed_shard_refuses_its_users_while_others_serve() {
        let dir = temp_dir("failclosed");
        let ledger = ShardedLedger::open(&dir, config(1.0), 4);
        for user in 0..20u64 {
            ledger.try_spend(user, 0.25).unwrap();
        }
        ledger.checkpoint_all().unwrap();
        drop(ledger);

        // Corrupt one shard's snapshot so its recovery fails.
        let bad = 1usize;
        corrupt_snapshot(&dir, bad);

        let reopened = ShardedLedger::open(&dir, config(1.0), 4);
        let failed = reopened.failed_shards();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, bad);
        assert_eq!(reopened.unaccounted_shards(), 1);

        for user in 0..20u64 {
            let on_bad = shard_of(user, 4) == bad;
            match reopened.try_spend(user, 0.25) {
                Ok(()) => assert!(!on_bad, "user {user} served from a failed shard"),
                Err(SpendError::ShardUnavailable { shard, .. }) => {
                    assert!(on_bad, "user {user} refused by a healthy shard");
                    assert_eq!(shard, bad as u64);
                }
                Err(e) => panic!("unexpected refusal for user {user}: {e}"),
            }
            // The accounting read is typed, not silently zero.
            assert_eq!(reopened.spent(user).is_none(), on_bad, "user {user}");
        }
    }

    #[test]
    fn single_wraps_one_ledger_unchanged() {
        let dir = temp_dir("single");
        let inner = SpendLedger::open(&dir, config(0.5)).unwrap();
        let ledger = ShardedLedger::single(inner);
        assert_eq!(ledger.shards(), 1);
        assert!((ledger.cap_per_user() - 0.5).abs() < 1e-12);
        ledger.try_spend(7, 0.5).unwrap();
        assert!(matches!(
            ledger.try_spend(7, 0.5),
            Err(SpendError::Exhausted { user: 7, .. })
        ));
        assert!(ledger.remaining(7).expect("serving").abs() < 1e-12);
        // A single-ledger wrap has no directory to repair.
        assert_eq!(ledger.repair_now(), 0);
    }

    #[test]
    fn open_refuses_a_zero_shard_count() {
        let result = std::panic::catch_unwind(|| shard_of(3, 0));
        assert!(result.is_err());
    }

    #[test]
    fn auto_repair_heals_a_wal_header_corruption_at_open() {
        let dir = temp_dir("autorepair");
        // Serve, checkpoint, then spend more so the WAL holds records.
        {
            let ledger = ShardedLedger::open(&dir, config(10.0), 2);
            for user in 0..8u64 {
                ledger.try_spend(user, 0.5).unwrap();
            }
            ledger.checkpoint_all().unwrap();
            for user in 0..8u64 {
                ledger.try_spend(user, 0.25).unwrap();
            }
            // Crash: no checkpoint — the 0.25 spends live only in WALs.
        }
        // Corrupt shard 0's WAL *header* (a committed region): the
        // standard open refuses, but every record checksum still
        // verifies, so a scavenge salvages them (resolved upward).
        let wal = dir.join("shard-0").join("ledger.wal");
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[9] ^= 0x20;
        std::fs::write(&wal, &bytes).unwrap();
        assert!(
            SpendLedger::open(&dir.join("shard-0"), config(10.0)).is_err(),
            "corrupt WAL header must refuse the standard open"
        );

        let ledger = ShardedLedger::open_with_repair(&dir, config(10.0), 2, RepairMode::Auto);
        ledger.await_repairs();
        assert_eq!(ledger.repaired_shards(), 1);
        assert_eq!(ledger.abandoned_repairs(), 0);
        assert_eq!(ledger.unaccounted_shards(), 0);
        let states = ledger.shard_states();
        assert_eq!(states[0], ShardHealth::Probation);
        // Every user recovered at least what was served — nothing was
        // forgotten by the repair.
        for user in 0..8u64 {
            let spent = ledger.spent(user).expect("repaired shard serves");
            assert!(spent >= 0.75 - 1e-9, "user {user} lost spend: {spent}");
        }
        // Probation ends at the first durable append.
        let probed = (0..64)
            .find(|&u| shard_of(u, 2) == 0)
            .expect("a user on shard 0");
        ledger.try_spend(probed, 0.25).unwrap();
        assert_eq!(ledger.shard_states()[0], ShardHealth::Ready);
    }

    #[test]
    fn unprovable_salvage_is_abandoned_with_the_typed_reason() {
        let dir = temp_dir("abandon");
        {
            let ledger = ShardedLedger::open(&dir, config(1.0), 2);
            for user in 0..8u64 {
                ledger.try_spend(user, 0.25).unwrap();
            }
            ledger.checkpoint_all().unwrap();
        }
        // Corrupt shard 1's *snapshot* (the committed base): a scavenge
        // cannot bound what was served, so repair must abandon.
        corrupt_snapshot(&dir, 1);
        let ledger = ShardedLedger::open_with_repair(&dir, config(1.0), 2, RepairMode::Auto);
        ledger.await_repairs();
        assert_eq!(ledger.repaired_shards(), 0);
        assert_eq!(ledger.abandoned_repairs(), 1);
        assert_eq!(ledger.shard_states()[1], ShardHealth::Failed);
        let failed = ledger.failed_shards();
        assert_eq!(failed.len(), 1);
        assert!(
            failed[0].1.contains("corrupt"),
            "typed reason lost: {}",
            failed[0].1
        );
    }

    #[test]
    fn manual_mode_waits_for_repair_now() {
        let dir = temp_dir("manual");
        {
            let ledger = ShardedLedger::open(&dir, config(10.0), 2);
            for user in 0..8u64 {
                ledger.try_spend(user, 0.5).unwrap();
            }
            ledger.checkpoint_all().unwrap();
        }
        let wal = dir.join("shard-1").join("ledger.wal");
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[9] ^= 0x20;
        std::fs::write(&wal, &bytes).unwrap();

        let ledger = ShardedLedger::open_with_repair(&dir, config(10.0), 2, RepairMode::Manual);
        assert_eq!(ledger.shard_states()[1], ShardHealth::Quarantined);
        // Quarantined users are refused with a typed ShardUnavailable.
        let user = (0..64)
            .find(|&u| shard_of(u, 2) == 1)
            .expect("a user on shard 1");
        assert!(matches!(
            ledger.try_spend(user, 0.5),
            Err(SpendError::ShardUnavailable { shard: 1, .. })
        ));
        assert_eq!(ledger.repair_now(), 1);
        ledger.await_repairs();
        assert_eq!(ledger.repaired_shards(), 1);
        assert_eq!(ledger.shard_states()[1], ShardHealth::Probation);
        ledger.try_spend(user, 0.5).expect("repaired shard serves");
    }
}
