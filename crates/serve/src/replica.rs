//! Warm-standby replication: WAL-shipped ε-budget records with fenced
//! failover.
//!
//! The primary attaches a [`Shipper`] to its [`ShardedLedger`]: every
//! served spend is journaled locally, published to a per-shard pending
//! queue, then shipped as a checksummed batch (`POST /replicate`) to
//! the follower — and the request is answered **only after the
//! follower acks the record as durable**. The follower applies each
//! record through the standard verified `SpendLedger` path (journal
//! append, then in-memory fold), so the fail-closed invariant
//! (recovered-spend ≥ served-spend) holds across machines: a spend the
//! primary served exists on the follower before the client hears
//! `served`.
//!
//! **Lag bound.** The pending queue holds records journaled locally
//! but not yet acked. `--max-replica-lag` bounds it *strictly*:
//! [`Shipper::admit`] reserves a pending-queue slot under the shard's
//! ship lock (so concurrent admits cannot collectively overshoot the
//! bound), and refuses the spend with `replica_lag` when no slot is
//! free even after a flush — or when no follower has registered at
//! all. Fail-closed, because the follower is the source of truth for
//! failover.
//!
//! **Sequence handshake.** The shipper's per-shard sequence counters
//! live in memory, but the registered peer persists in `replica.peer`
//! — so a restarted primary must not re-number new spends from 1 while
//! the follower's durable watermark sits at N (the follower would
//! dedup-skip every new record yet still ack N, silently
//! un-replicating served spends). Before the first publish of each
//! shard, [`Shipper::admit`] probes the follower with an *empty* batch
//! at `first_seq = 1` (which the follower applies nothing for and
//! never adopts a watermark from) and seeds `last_seq = acked_seq`
//! from the returned durable sequence; until the probe succeeds the
//! shard's spends are refused `replica_lag` (and a probe refused
//! `fenced` by a promoted follower hard-fences the primary before it
//! can serve a single spend).
//!
//! **Fencing.** Replication runs under a *fence generation*, persisted
//! as `repl.gen` next to the shard directories (see
//! [`journal::read_fence_gen`]). The primary stamps every batch with
//! its generation; promotion bumps the follower's fence generation
//! past the highest generation it has ever seen and checkpoints, after
//! which any batch from a revived stale primary carries
//! `gen < fence_gen` and is refused (`fenced` nack). The refused
//! primary hard-fences itself — [`Shipper::admit`] then refuses every
//! spend — so a split brain cannot double-spend: the old primary
//! cannot serve (no acks), and the new one owns the budget. This is
//! the same stale-generation-discard principle the journal already
//! uses to tie WALs to snapshots, applied one level up.
//!
//! A `fenced` nack is authoritative only when the follower's fence
//! generation is *newer* than the shipper's own: a transient refusal
//! at the same generation (e.g. the `serve.repl.stale_gen` failpoint)
//! keeps the records pending and retries, because no promotion has
//! actually happened.

use crate::journal::{self, JournalError};
use crate::json::Json;
use crate::ledger::SpendError;
use crate::shard::ShardedLedger;
use geoind_testkit::failpoint;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Magic prefix of every replication batch (`POST /replicate` body).
pub(crate) const BATCH_MAGIC: &[u8; 8] = b"GIREPL01";

/// Fixed batch header: magic (8) + shard (4) + total shards (4) +
/// generation (8) + epoch (8) + first sequence (8) + record count (4).
const BATCH_HEADER_LEN: usize = 44;

/// Each shipped record reuses the 32-byte checksummed WAL record
/// layout (`journal::encode_record`).
const BATCH_RECORD_LEN: usize = 32;

/// Flush attempts per [`Shipper::wait_acked`] call before the spend is
/// refused with `replica_lag`.
const SHIP_ATTEMPTS: u32 = 3;

/// File (next to the shard directories) remembering the registered
/// follower, so a restarted primary resumes shipping — and, if the
/// follower was promoted meanwhile, provably gets fenced instead of
/// silently serving. No checksum: a corrupt address fails to connect,
/// which degrades to `replica_lag` refusals (fail-closed).
const PEER_FILE: &str = "replica.peer";

/// One decoded replication batch.
pub(crate) struct ReplBatch {
    pub shard: u32,
    pub total_shards: u32,
    pub gen: u64,
    pub epoch: u64,
    pub first_seq: u64,
    /// `(user, eps)` pairs; record `i` carries sequence `first_seq + i`
    /// (enforced by [`decode_batch`]).
    pub records: Vec<(u64, f64)>,
}

/// Render a batch from already-encoded 32-byte records starting at
/// `first_seq`.
pub(crate) fn encode_batch(
    shard: u32,
    total_shards: u32,
    gen: u64,
    epoch: u64,
    first_seq: u64,
    records: &[[u8; BATCH_RECORD_LEN]],
) -> Vec<u8> {
    let mut body = Vec::with_capacity(BATCH_HEADER_LEN + records.len() * BATCH_RECORD_LEN);
    body.extend_from_slice(BATCH_MAGIC);
    body.extend_from_slice(&shard.to_le_bytes());
    body.extend_from_slice(&total_shards.to_le_bytes());
    body.extend_from_slice(&gen.to_le_bytes());
    body.extend_from_slice(&epoch.to_le_bytes());
    body.extend_from_slice(&first_seq.to_le_bytes());
    body.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for record in records {
        body.extend_from_slice(record);
    }
    body
}

/// Decode and fully verify a batch: magic, exact length, per-record
/// checksums, and gap-free sequence numbering from `first_seq`.
pub(crate) fn decode_batch(body: &[u8]) -> Result<ReplBatch, String> {
    if body.len() < BATCH_HEADER_LEN {
        return Err("short batch header".into());
    }
    if &body[0..8] != BATCH_MAGIC {
        return Err("bad batch magic".into());
    }
    let le32 = |at: usize| {
        u32::from_le_bytes(
            body[at..at + 4]
                .try_into()
                .expect("4-byte slice of a checked buffer"),
        )
    };
    let le64 = |at: usize| {
        u64::from_le_bytes(
            body[at..at + 8]
                .try_into()
                .expect("8-byte slice of a checked buffer"),
        )
    };
    let shard = le32(8);
    let total_shards = le32(12);
    let gen = le64(16);
    let epoch = le64(24);
    let first_seq = le64(32);
    let count = le32(40) as usize;
    if first_seq == 0 {
        return Err("first_seq must be positive".into());
    }
    if body.len() != BATCH_HEADER_LEN + count * BATCH_RECORD_LEN {
        return Err(format!(
            "length {} does not match {count} records",
            body.len()
        ));
    }
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let at = BATCH_HEADER_LEN + i * BATCH_RECORD_LEN;
        let (user, eps, seq) = journal::decode_record(&body[at..at + BATCH_RECORD_LEN])
            .ok_or_else(|| format!("corrupt record {i}"))?;
        if seq != first_seq + i as u64 {
            return Err(format!("sequence gap at record {i}"));
        }
        records.push((user, eps));
    }
    Ok(ReplBatch {
        shard,
        total_shards,
        gen,
        epoch,
        first_seq,
        records,
    })
}

/// Tuning for a primary-side [`Shipper`].
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// Ledger base directory (holds `repl.gen` and `replica.peer`);
    /// `None` keeps both in memory only.
    pub dir: Option<PathBuf>,
    /// Shard count — must match the follower's.
    pub shards: usize,
    /// Budget epoch — must match the follower's.
    pub epoch: u64,
    /// Maximum locally-journaled-but-unacked records per shard before
    /// spends are refused with `replica_lag` (clamped to ≥ 1).
    pub max_lag: u64,
    /// Per-attempt socket timeout for `/replicate` calls.
    pub timeout_ms: u64,
    /// Bearer token the follower requires, if any.
    pub auth_token: Option<String>,
}

#[derive(Debug, Default)]
struct ShipShard {
    /// Sequence state seeded from the follower's durable watermark (see
    /// the module docs on the sequence handshake). Nothing may be
    /// published before this is true.
    synced: bool,
    /// Highest sequence number assigned so far (sequences start at the
    /// follower's watermark + 1).
    last_seq: u64,
    /// Highest sequence the follower has durably acked.
    acked_seq: u64,
    /// Admitted spends not yet published: slots reserved against the
    /// lag bound by [`Shipper::admit`], consumed by
    /// [`Shipper::publish`] or given back by [`Shipper::release`].
    reserved: u64,
    /// Encoded records `acked_seq+1 ..= last_seq`, oldest first.
    pending: VecDeque<[u8; BATCH_RECORD_LEN]>,
}

/// Primary-side replication state: per-shard pending queues, the fence
/// generation batches are stamped with, and the registered follower.
///
/// Attached to a [`ShardedLedger`] via
/// [`ShardedLedger::attach_shipper`]; `try_spend` then runs
/// [`Shipper::admit`] before spending and [`Shipper::wait_acked`]
/// after, on the calling thread.
#[derive(Debug)]
pub struct Shipper {
    config: ShipperConfig,
    /// Fence generation this primary ships under, fixed at startup.
    gen: u64,
    peer: Mutex<Option<String>>,
    /// Set once a follower refuses us with a *newer* fence generation:
    /// we have been superseded, and every further spend is refused.
    fenced: AtomicBool,
    shards: Vec<Mutex<ShipShard>>,
}

impl Shipper {
    /// Build a shipper, loading (and persisting) the fence generation
    /// and any previously registered follower from `config.dir`.
    ///
    /// # Errors
    /// Propagates the fence-generation write failure — a primary that
    /// cannot persist its generation must not ship under it.
    pub fn new(config: ShipperConfig) -> Result<Self, JournalError> {
        // A directory that never held a fence generation starts at 1;
        // a directory whose `repl.gen` is unreadable also restarts at
        // 1, which is the safe direction — shipping at the floor can
        // only get us fenced, never accepted as too-new.
        let gen = config
            .dir
            .as_deref()
            .and_then(journal::read_fence_gen)
            .unwrap_or(1);
        let peer = config.dir.as_deref().and_then(|dir| {
            let text = std::fs::read_to_string(dir.join(PEER_FILE)).ok()?;
            let addr = text.trim();
            (!addr.is_empty()).then(|| addr.to_string())
        });
        if let Some(dir) = config.dir.as_deref() {
            journal::write_fence_gen(dir, gen)?;
        }
        let shards = (0..config.shards.max(1))
            .map(|_| Mutex::new(ShipShard::default()))
            .collect();
        Ok(Self {
            config,
            gen,
            peer: Mutex::new(peer),
            fenced: AtomicBool::new(false),
            shards,
        })
    }

    /// The fence generation batches are stamped with.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Whether a follower with a newer fence generation has refused us.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// The registered follower address, if any.
    pub fn peer(&self) -> Option<String> {
        self.peer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Register (and persist) the follower to ship to.
    ///
    /// # Errors
    /// Propagates the `replica.peer` persistence failure; the
    /// in-memory registration still takes effect for this process.
    pub fn set_peer(&self, addr: &str) -> Result<(), JournalError> {
        *self.peer.lock().unwrap_or_else(PoisonError::into_inner) = Some(addr.to_string());
        if let Some(dir) = self.config.dir.as_deref() {
            journal::atomic_write(&dir.join(PEER_FILE), addr.as_bytes()).map_err(|source| {
                JournalError::Io {
                    step: "replica peer write",
                    source,
                }
            })?;
        }
        Ok(())
    }

    /// Records journaled locally but not yet acked by the follower.
    pub fn lag(&self, shard: usize) -> u64 {
        self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .len() as u64
    }

    /// Pre-spend gate: refuse when fenced, when no follower has
    /// registered, when the shard's sequence state cannot be seeded
    /// from the follower, or when the shard is at the lag bound even
    /// after one flush attempt. A successful admit holds one reserved
    /// pending-queue slot, which [`Self::publish`] consumes — so the
    /// bound is strict even under concurrent admits — and
    /// [`Self::release`] must give back if the spend never publishes.
    ///
    /// # Errors
    /// [`SpendError::Fenced`] / [`SpendError::ReplicaLag`] as above.
    pub(crate) fn admit(&self, shard: usize) -> Result<(), SpendError> {
        if self.is_fenced() {
            return Err(SpendError::Fenced);
        }
        if self.peer().is_none() {
            // Fail-closed: with a lag bound configured, serving with
            // no standby at all would be unbounded lag.
            return Err(SpendError::ReplicaLag { lag: 0 });
        }
        self.ensure_synced(shard)?;
        let max_lag = self.config.max_lag.max(1);
        if self.try_reserve(shard, max_lag) {
            return Ok(());
        }
        let _ = self.flush(shard);
        if self.is_fenced() {
            return Err(SpendError::Fenced);
        }
        if self.try_reserve(shard, max_lag) {
            return Ok(());
        }
        Err(SpendError::ReplicaLag {
            lag: self.inflight(shard),
        })
    }

    /// Seed the shard's sequence state from the follower's durable
    /// watermark before this process's first publish: an empty probe
    /// batch at `first_seq = 1` — which the follower applies nothing
    /// for and never adopts a watermark from — answers with its highest
    /// durably applied sequence. Without this, a restarted primary
    /// (the peer file persists, the counters do not) would re-number
    /// new spends from 1 and the follower's dedup would skip them while
    /// still acking its old watermark: served spends silently
    /// un-replicated until the counter caught up, re-granted as budget
    /// by a later failover.
    ///
    /// The probe also means a revived stale primary is hard-fenced at
    /// its first admit, before any spend is journaled locally.
    fn ensure_synced(&self, shard: usize) -> Result<(), SpendError> {
        let Some(peer) = self.peer() else {
            return Err(SpendError::ReplicaLag { lag: 0 });
        };
        let mut s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if s.synced {
            return Ok(());
        }
        let probe = encode_batch(
            shard as u32,
            self.config.shards as u32,
            self.gen,
            self.config.epoch,
            1,
            &[],
        );
        match self.exchange(&peer, &probe) {
            Ok(acked) => {
                s.last_seq = acked;
                s.acked_seq = acked;
                s.synced = true;
                Ok(())
            }
            Err(_) if self.is_fenced() => Err(SpendError::Fenced),
            // The follower could not confirm its watermark; shipping
            // blind could silently un-replicate, so refuse fail-closed.
            Err(_) => Err(SpendError::ReplicaLag { lag: 0 }),
        }
    }

    /// Reserve one pending-queue slot under the shard's ship lock, so
    /// that `pending + reserved` never exceeds `max_lag` no matter how
    /// many workers admit concurrently.
    fn try_reserve(&self, shard: usize, max_lag: u64) -> bool {
        let mut s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if s.pending.len() as u64 + s.reserved < max_lag {
            s.reserved += 1;
            true
        } else {
            false
        }
    }

    /// Records admitted or journaled locally but not yet acked.
    fn inflight(&self, shard: usize) -> u64 {
        let s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        s.pending.len() as u64 + s.reserved
    }

    /// Give back a slot reserved by a successful [`Self::admit`] whose
    /// spend never reached [`Self::publish`] (the local journal refused
    /// it, or the owning shard was unavailable).
    pub(crate) fn release(&self, shard: usize) {
        let mut s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        s.reserved = s.reserved.saturating_sub(1);
    }

    /// Queue a just-journaled spend for shipping and return its
    /// sequence number, consuming the caller's reserved slot. Called
    /// under the shard's slot lock, so queue order matches journal
    /// order.
    pub(crate) fn publish(&self, shard: usize, user: u64, eps: f64) -> u64 {
        let mut s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        s.reserved = s.reserved.saturating_sub(1);
        s.last_seq += 1;
        let seq = s.last_seq;
        s.pending.push_back(journal::encode_record(user, eps, seq));
        seq
    }

    /// Ship until the follower has durably acked `seq`, retrying a
    /// bounded number of times. Called *after* the slot lock is
    /// released.
    ///
    /// # Errors
    /// [`SpendError::Fenced`] when a newer-generation follower refused
    /// us; [`SpendError::ReplicaLag`] when the ack did not arrive in
    /// budget (the spend stays journaled locally and queued — refusing
    /// the request over-counts at worst, which is the safe direction).
    pub(crate) fn wait_acked(&self, shard: usize, seq: u64) -> Result<(), SpendError> {
        for attempt in 0..SHIP_ATTEMPTS {
            if self.is_fenced() {
                return Err(SpendError::Fenced);
            }
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(2u64 << attempt));
            }
            if let Ok(acked) = self.flush(shard) {
                if acked >= seq {
                    return Ok(());
                }
            }
        }
        if self.is_fenced() {
            return Err(SpendError::Fenced);
        }
        Err(SpendError::ReplicaLag {
            lag: self.lag(shard),
        })
    }

    /// Test-only: mark the shard synced at `watermark`, exactly as a
    /// successful handshake probe would.
    #[cfg(test)]
    fn force_synced(&self, shard: usize, watermark: u64) {
        let mut s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        s.synced = true;
        s.last_seq = watermark;
        s.acked_seq = watermark;
    }

    /// Best-effort flush of every shard's pending queue (graceful
    /// shutdown path).
    pub fn flush_all(&self) {
        for shard in 0..self.shards.len() {
            let _ = self.flush(shard);
        }
    }

    /// Ship the shard's whole pending queue and fold in the ack.
    /// Returns the follower's durable sequence. The shard's ship lock
    /// is held across the exchange, serializing replication per shard.
    fn flush(&self, shard: usize) -> Result<u64, String> {
        let Some(peer) = self.peer() else {
            return Err("no follower registered".into());
        };
        let mut s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if s.pending.is_empty() {
            return Ok(s.acked_seq);
        }
        let records: Vec<[u8; BATCH_RECORD_LEN]> = s.pending.iter().copied().collect();
        let body = encode_batch(
            shard as u32,
            self.config.shards as u32,
            self.gen,
            self.config.epoch,
            s.acked_seq + 1,
            &records,
        );
        let acked = self.exchange(&peer, &body)?;
        if acked > s.acked_seq {
            let newly = (acked - s.acked_seq).min(s.pending.len() as u64);
            for _ in 0..newly {
                s.pending.pop_front();
            }
            s.acked_seq = acked;
        }
        Ok(s.acked_seq)
    }

    /// One ship-and-parse exchange: `POST /replicate` the batch, decode
    /// the JSON verdict, and fold any authoritative `fenced` nack into
    /// [`Self::is_fenced`]. Returns the follower's durable sequence.
    fn exchange(&self, peer: &str, body: &[u8]) -> Result<u64, String> {
        let answer = self.post_replicate(peer, body)?;
        let parsed = Json::parse(&answer).map_err(|e| format!("unparseable ack: {e}"))?;
        if parsed.get("ok") != Some(&Json::Bool(true)) {
            if parsed.get("fenced") == Some(&Json::Bool(true)) {
                let fence_gen = parsed
                    .get("fence_gen")
                    .and_then(Json::as_u64)
                    .unwrap_or(u64::MAX);
                if fence_gen > self.gen {
                    // The follower was promoted past us: we are the
                    // stale primary. Hard-fence — every further spend
                    // is refused until an operator restarts us in a
                    // legitimate role.
                    self.fenced.store(true, Ordering::SeqCst);
                    return Err(format!("fenced by follower at generation {fence_gen}"));
                }
                // Same-or-older generation refusals are transient
                // glitches, not a promotion; keep the records pending.
                return Err("transient stale-generation refusal".into());
            }
            let detail = parsed
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("unspecified");
            return Err(format!("follower refused batch: {detail}"));
        }
        parsed
            .get("acked_seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| "ack missing acked_seq".to_string())
    }

    /// One `POST /replicate` exchange. The `serve.repl.ship_torn`
    /// failpoint cuts the write mid-body (the follower sees a torn
    /// frame and applies nothing); `serve.repl.ack_lost` sends the
    /// full batch but drops the connection before reading the ack (the
    /// follower applies, the retransmit dedups by sequence).
    fn post_replicate(&self, peer: &str, body: &[u8]) -> Result<String, String> {
        let mut stream = connect(peer, self.config.timeout_ms)?;
        let auth = match self.config.auth_token.as_deref() {
            Some(token) => format!("Authorization: Bearer {token}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "POST /replicate HTTP/1.1\r\nHost: geoind\r\nContent-Type: application/octet-stream\r\n{auth}Content-Length: {}\r\n\r\n",
            body.len()
        );
        let mut request = head.into_bytes();
        request.extend_from_slice(body);
        if failpoint::hit("serve.repl.ship_torn") {
            let torn = request.len() / 2;
            let _ = stream.write_all(&request[..torn]);
            return Err("ship torn (failpoint)".into());
        }
        stream
            .write_all(&request)
            .map_err(|e| format!("ship {peer}: {e}"))?;
        if failpoint::hit("serve.repl.ack_lost") {
            return Err("ack lost (failpoint)".into());
        }
        let (status, answer) = read_response(&mut stream, self.config.timeout_ms)
            .map_err(|e| format!("ack from {peer}: {e}"))?;
        if status != 200 {
            return Err(format!("/replicate answered {status}"));
        }
        Ok(answer)
    }
}

/// Follower-side replication state: the fence generation incoming
/// batches are checked against, per-shard applied sequences, and the
/// standby flag gating `/protect`.
#[derive(Debug)]
pub struct Applier {
    dir: Option<PathBuf>,
    fence_gen: AtomicU64,
    /// Highest generation any accepted batch carried; promotion bumps
    /// past `max(fence_gen, max_seen_gen)` so the promoted follower
    /// outranks every primary it ever heard from.
    max_seen_gen: AtomicU64,
    /// Per-shard highest durably applied sequence.
    applied: Vec<Mutex<u64>>,
    standby: AtomicBool,
    fenced: AtomicU64,
    applied_records: AtomicU64,
    deduped: AtomicU64,
}

impl Applier {
    /// Build an applier for `ledger`, loading any persisted fence
    /// generation; `standby` gates `/protect` until promotion.
    pub fn new(ledger: &ShardedLedger, standby: bool) -> Self {
        let dir = ledger.base_dir();
        let fence_gen = dir
            .as_deref()
            .and_then(journal::read_fence_gen)
            .unwrap_or(0);
        Self {
            dir,
            fence_gen: AtomicU64::new(fence_gen),
            max_seen_gen: AtomicU64::new(fence_gen),
            applied: (0..ledger.shards().max(1)).map(|_| Mutex::new(0)).collect(),
            standby: AtomicBool::new(standby),
            fenced: AtomicU64::new(0),
            applied_records: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
        }
    }

    /// Whether `/protect` is still refused pending promotion.
    pub fn standby(&self) -> bool {
        self.standby.load(Ordering::SeqCst)
    }

    /// The current fence generation.
    pub fn fence_gen(&self) -> u64 {
        self.fence_gen.load(Ordering::SeqCst)
    }

    /// Stale-generation batches refused so far.
    pub fn fenced_total(&self) -> u64 {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Records durably applied through the replication path.
    pub fn applied_total(&self) -> u64 {
        self.applied_records.load(Ordering::SeqCst)
    }

    /// Retransmitted records skipped by sequence dedup.
    pub fn deduped_total(&self) -> u64 {
        self.deduped.load(Ordering::SeqCst)
    }

    /// Promote this node: bump the fence generation past everything
    /// ever seen, persist it, checkpoint the ledger (folding all
    /// replicated records into committed snapshots — the journal
    /// generation bump that ties the WAL machinery in), and open
    /// `/protect`. Returns the new fence generation. Idempotent in
    /// effect: a second call bumps again, which is harmless.
    ///
    /// # Errors
    /// Fence-generation persistence or checkpoint failures; the node
    /// stays in standby so a failed promotion is visible.
    pub fn promote(&self, ledger: &ShardedLedger) -> Result<u64, SpendError> {
        // Hold every per-shard applied lock across the fence bump and
        // checkpoint: [`Self::handle`] checks the fence and applies its
        // batch under its shard's applied lock, so an in-flight
        // old-generation batch either finishes (and is folded by the
        // checkpoint below) before the bump, or re-reads the fence
        // after it and is refused. Without this, a batch that passed
        // the fence check could be applied and acked *after* promotion,
        // letting the stale primary serve briefly past the fence.
        let _applied: Vec<_> = self
            .applied
            .iter()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let new_gen = self
            .fence_gen
            .load(Ordering::SeqCst)
            .max(self.max_seen_gen.load(Ordering::SeqCst))
            + 1;
        if let Some(dir) = self.dir.as_deref() {
            journal::write_fence_gen(dir, new_gen).map_err(SpendError::Journal)?;
        }
        self.fence_gen.store(new_gen, Ordering::SeqCst);
        ledger.checkpoint_all().map_err(SpendError::Journal)?;
        self.standby.store(false, Ordering::SeqCst);
        Ok(new_gen)
    }

    /// Decode, verify, and apply one `/replicate` body against
    /// `ledger`, returning the JSON ack to send back.
    ///
    /// Stale-generation batches are refused with a `fenced` nack
    /// carrying our fence generation. Otherwise every record above the
    /// shard's applied sequence is applied through the verified ledger
    /// path; the ack reports the durable sequence, so a mid-batch
    /// fault simply makes the primary retransmit the tail.
    pub fn handle(&self, ledger: &ShardedLedger, body: &[u8]) -> String {
        let batch = match decode_batch(body) {
            Ok(batch) => batch,
            Err(detail) => return nack(&detail),
        };
        if batch.epoch != ledger.epoch() {
            return nack(&format!(
                "epoch mismatch: batch {} vs ledger {}",
                batch.epoch,
                ledger.epoch()
            ));
        }
        if batch.total_shards as usize != ledger.shards() {
            return nack(&format!(
                "shard count mismatch: batch {} vs ledger {}",
                batch.total_shards,
                ledger.shards()
            ));
        }
        let Some(applied) = self.applied.get(batch.shard as usize) else {
            return nack(&format!("shard {} out of range", batch.shard));
        };
        let mut applied = applied.lock().unwrap_or_else(PoisonError::into_inner);
        // The fence check runs under the shard's applied lock, which
        // [`Self::promote`] holds across its generation bump — so the
        // check-then-apply below is atomic against promotion, and no
        // batch stamped with a pre-promotion generation can be applied
        // and acked after the fence has moved.
        let fence_gen = self.fence_gen.load(Ordering::SeqCst);
        if failpoint::hit("serve.repl.stale_gen") || batch.gen < fence_gen {
            self.fenced.fetch_add(1, Ordering::SeqCst);
            return format!(r#"{{"ok":false,"fenced":true,"fence_gen":{fence_gen}}}"#);
        }
        self.max_seen_gen.fetch_max(batch.gen, Ordering::SeqCst);
        if batch.first_seq > *applied + 1 {
            // The primary ships strictly from its acked sequence, and
            // acks only ever came from us (possibly a previous
            // incarnation — our in-memory counter resets on restart,
            // the journal does not). Everything below first_seq is
            // therefore already durable here; adopt it.
            *applied = batch.first_seq - 1;
        }
        for (i, (user, eps)) in batch.records.iter().enumerate() {
            let seq = batch.first_seq + i as u64;
            if seq <= *applied {
                self.deduped.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            match ledger.apply_replicated(*user, *eps) {
                Ok(()) => {
                    *applied = seq;
                    self.applied_records.fetch_add(1, Ordering::SeqCst);
                }
                // Ack what is durable; the primary retransmits the rest.
                Err(_) => break,
            }
        }
        format!(
            r#"{{"ok":true,"acked_seq":{},"gen":{fence_gen}}}"#,
            *applied
        )
    }
}

fn nack(detail: &str) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("detail".into(), Json::Str(detail.into())),
    ])
    .render()
}

/// Register `self_addr` as the follower of the primary at `primary`:
/// one `POST /follow` exchange. The caller owns the retry loop.
///
/// # Errors
/// Connectivity, non-200 answers, and unparseable bodies, as strings.
pub fn register_with_primary(
    primary: &str,
    self_addr: &str,
    auth_token: Option<&str>,
    timeout_ms: u64,
) -> Result<(), String> {
    let body = Json::Obj(vec![("addr".into(), Json::Str(self_addr.into()))]).render();
    let auth = match auth_token {
        Some(token) => format!("Authorization: Bearer {token}\r\n"),
        None => String::new(),
    };
    let request = format!(
        "POST /follow HTTP/1.1\r\nHost: geoind\r\nContent-Type: application/json\r\n{auth}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut stream = connect(primary, timeout_ms)?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("follow {primary}: {e}"))?;
    let (status, answer) = read_response(&mut stream, timeout_ms)?;
    if status != 200 {
        return Err(format!("/follow answered {status}: {answer}"));
    }
    Ok(())
}

fn connect(addr: &str, timeout_ms: u64) -> Result<TcpStream, String> {
    let timeout = Duration::from_millis(timeout_ms.max(1));
    let sock: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to nothing"))?;
    let stream =
        TcpStream::connect_timeout(&sock, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    Ok(stream)
}

/// Read exactly one HTTP response (status + body) within the timeout.
fn read_response(stream: &mut TcpStream, timeout_ms: u64) -> Result<(u16, String), String> {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms.max(1));
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(parsed) = parse_response(&pending)? {
            return Ok(parsed);
        }
        if Instant::now() >= deadline {
            return Err("response deadline".into());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err("torn response".into()),
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.to_string()),
        }
    }
}

fn parse_response(pending: &[u8]) -> Result<Option<(u16, String)>, String> {
    let Some(head_end) = pending.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head =
        std::str::from_utf8(&pending[..head_end]).map_err(|_| "non-utf8 head".to_string())?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "bad status line".to_string())?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
            }
        }
    }
    let total = head_end + 4 + content_length;
    if pending.len() < total {
        return Ok(None);
    }
    let body = std::str::from_utf8(&pending[head_end + 4..total])
        .map_err(|_| "non-utf8 body".to_string())?;
    Ok(Some((status, body.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(first_seq: u64, n: usize) -> Vec<[u8; BATCH_RECORD_LEN]> {
        (0..n)
            .map(|i| journal::encode_record(7 + i as u64, 0.25, first_seq + i as u64))
            .collect()
    }

    #[test]
    fn batch_round_trips() {
        let records = sample_records(4, 3);
        let body = encode_batch(2, 8, 5, 11, 4, &records);
        let batch = decode_batch(&body).unwrap();
        assert_eq!(
            (
                batch.shard,
                batch.total_shards,
                batch.gen,
                batch.epoch,
                batch.first_seq
            ),
            (2, 8, 5, 11, 4)
        );
        assert_eq!(batch.records, vec![(7, 0.25), (8, 0.25), (9, 0.25)]);
    }

    #[test]
    fn empty_batch_round_trips() {
        let body = encode_batch(0, 1, 1, 0, 1, &[]);
        assert_eq!(decode_batch(&body).unwrap().records.len(), 0);
    }

    #[test]
    fn torn_and_corrupt_batches_are_refused() {
        let records = sample_records(1, 2);
        let body = encode_batch(0, 4, 1, 0, 1, &records);
        // Every strict prefix is refused.
        for cut in 0..body.len() {
            assert!(decode_batch(&body[..cut]).is_err(), "cut={cut}");
        }
        // A flipped record byte fails the per-record checksum.
        let mut flipped = body.clone();
        flipped[BATCH_HEADER_LEN + 3] ^= 0x40;
        assert!(decode_batch(&flipped).is_err());
        // A sequence gap inside the batch is refused.
        let gap: Vec<[u8; BATCH_RECORD_LEN]> = vec![
            journal::encode_record(1, 0.5, 1),
            journal::encode_record(2, 0.5, 3),
        ];
        assert!(decode_batch(&encode_batch(0, 4, 1, 0, 1, &gap)).is_err());
        // first_seq 0 is refused outright.
        assert!(decode_batch(&encode_batch(0, 4, 1, 0, 0, &[])).is_err());
    }

    #[test]
    fn shipper_without_peer_fails_closed() {
        let shipper = Shipper::new(ShipperConfig {
            dir: None,
            shards: 2,
            epoch: 0,
            max_lag: 4,
            timeout_ms: 50,
            auth_token: None,
        })
        .unwrap();
        assert!(matches!(
            shipper.admit(0),
            Err(SpendError::ReplicaLag { lag: 0 })
        ));
        // Sequences are per-shard and monotonic from 1.
        assert_eq!(shipper.publish(0, 9, 0.5), 1);
        assert_eq!(shipper.publish(0, 9, 0.5), 2);
        assert_eq!(shipper.publish(1, 9, 0.5), 1);
        assert_eq!(shipper.lag(0), 2);
    }

    fn test_shipper(max_lag: u64) -> Shipper {
        let shipper = Shipper::new(ShipperConfig {
            dir: None,
            shards: 1,
            epoch: 0,
            max_lag,
            timeout_ms: 50,
            auth_token: None,
        })
        .unwrap();
        // A real peer address is never contacted below: the shard is
        // force-synced (or expected to refuse before any publish), and
        // port 9 refuses connections immediately.
        shipper.set_peer("127.0.0.1:9").unwrap();
        shipper
    }

    #[test]
    fn unsynced_shard_refuses_until_the_watermark_probe_succeeds() {
        let shipper = test_shipper(4);
        // The handshake probe cannot reach the follower: shipping blind
        // could silently un-replicate, so the spend is refused.
        assert!(matches!(
            shipper.admit(0),
            Err(SpendError::ReplicaLag { lag: 0 })
        ));
    }

    #[test]
    fn publish_continues_from_the_seeded_watermark() {
        let shipper = test_shipper(4);
        shipper.force_synced(0, 41);
        // A restarted primary must number past the follower's durable
        // watermark, never from 1 into its dedup window.
        assert_eq!(shipper.publish(0, 9, 0.5), 42);
        assert_eq!(shipper.publish(0, 9, 0.5), 43);
    }

    #[test]
    fn admit_reservations_bound_concurrent_spends_strictly() {
        let shipper = test_shipper(3);
        shipper.force_synced(0, 0);
        // Three workers admit before any of them publishes: all pass.
        for _ in 0..3 {
            shipper.admit(0).expect("reserve within the bound");
        }
        // A fourth concurrent admit is refused even though the pending
        // queue is still empty — reservations make the bound strict.
        assert!(matches!(
            shipper.admit(0),
            Err(SpendError::ReplicaLag { lag: 3 })
        ));
        // A spend that failed after admission gives its slot back.
        shipper.release(0);
        shipper.admit(0).expect("released slot reopens");
        // Publishing converts reservations into pending records without
        // changing the inflight total: still at the bound.
        for _ in 0..3 {
            shipper.publish(0, 5, 0.25);
        }
        assert_eq!(shipper.lag(0), 3);
        assert!(matches!(
            shipper.admit(0),
            Err(SpendError::ReplicaLag { lag: 3 })
        ));
    }
}
