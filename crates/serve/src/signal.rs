//! Signal-driven drain: a libc-crate-free `SIGTERM`/`SIGINT` handler
//! that does nothing but raise an atomic flag.
//!
//! An async-signal-safe handler may not lock, allocate, or touch the
//! server — so the handler here only stores into a `static AtomicBool`.
//! The serving loops poll the flag at their own pace: the wire accept
//! loop stops accepting ([`crate::wire`]), and the process owner (the
//! `geoind serve --listen` command) observes it and runs the same
//! graceful drain ordering `POST /shutdown` triggers — accept-stop →
//! handler-join → queue-drain → shard flush → final report. A
//! `kill -TERM` therefore loses nothing a client was promised: every
//! acknowledged spend is journaled and every in-flight exchange
//! finishes before the process exits.
//!
//! The registration goes through the C runtime's `signal(2)` directly
//! (an `extern "C"` declaration against the libc every Rust binary
//! already links) — no new dependency, per the workspace's std-only
//! rule. On non-Unix targets installation is a no-op and the flag
//! simply never rises.

use std::sync::atomic::{AtomicBool, Ordering};

/// Raised by the handler; never cleared (termination is one-way).
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Raised by `SIGUSR1`; consumed by [`take_promote_requested`] so a
/// second delivery can request a second (harmless) promotion.
static PROMOTE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{Ordering, PROMOTE, TERMINATE};

    const SIGINT: i32 = 2;
    const SIGUSR1: i32 = 10;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from the C runtime the binary already links.
        // Returns the previous handler (unused).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    // Async-signal-safe: a single relaxed store, nothing else.
    extern "C" fn on_terminate(_signum: i32) {
        TERMINATE.store(true, Ordering::Relaxed);
    }

    extern "C" fn on_promote(_signum: i32) {
        PROMOTE.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the C runtime's registration call and
        // `on_terminate` is an `extern "C" fn(i32)` that only performs
        // an atomic store — async-signal-safe by construction.
        unsafe {
            signal(SIGTERM, on_terminate as *const () as usize);
            signal(SIGINT, on_terminate as *const () as usize);
        }
    }

    pub(super) fn install_promote() {
        // SAFETY: same contract as `install` — `on_promote` only
        // performs an atomic store.
        unsafe {
            signal(SIGUSR1, on_promote as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
    pub(super) fn install_promote() {}
}

/// Install the `SIGTERM`/`SIGINT` handler. Idempotent; call once before
/// serving. On non-Unix targets this is a no-op.
pub fn install_termination_handler() {
    imp::install();
}

/// True once `SIGTERM` or `SIGINT` has been delivered (never resets).
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::Relaxed)
}

/// Install the `SIGUSR1` handler that requests follower promotion —
/// the operator's out-of-band `POST /promote`, usable when the wire
/// port is busy or firewalled. Idempotent; no-op off Unix.
pub fn install_promote_handler() {
    imp::install_promote();
}

/// Consume a pending `SIGUSR1` promotion request: true at most once
/// per delivery. The serve poll loop calls this each tick.
pub fn take_promote_requested() -> bool {
    PROMOTE.swap(false, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_low_and_install_is_idempotent() {
        // The handler must not fire spuriously, and installing twice
        // must be harmless. (Actually delivering a signal to the test
        // process would poison sibling tests; the end-to-end delivery
        // path is exercised by the CLI SIGTERM test against a child
        // process.)
        install_termination_handler();
        install_termination_handler();
        assert!(!termination_requested());
    }

    #[test]
    fn promote_flag_is_consumed_once() {
        install_promote_handler();
        assert!(!take_promote_requested());
        PROMOTE.store(true, Ordering::Relaxed);
        assert!(take_promote_requested());
        assert!(!take_promote_requested());
    }
}
