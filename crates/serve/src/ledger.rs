//! The per-user ε-budget ledger: epoch-scoped composed-ε accounting
//! backed by the write-ahead [`Journal`].
//!
//! By the composability property of GeoInd, `k` reports through an
//! ε-GeoInd mechanism are jointly `k·ε`-GeoInd at worst — without
//! explicit accounting, repeated releases silently exhaust the effective
//! guarantee (Oya et al.). [`SpendLedger`] makes the accounting explicit
//! and crash-safe:
//!
//! * every user holds a [`BudgetLedger`] account capped at
//!   `cap_per_user` composed ε per epoch;
//! * a spend is **journaled before it is acknowledged** — the caller may
//!   serve the request only after [`SpendLedger::try_spend`] returns
//!   `Ok`, which implies a durable WAL record exists;
//! * a request whose spend would exceed the cap is refused with a typed
//!   [`SpendError::Exhausted`] and *nothing* is journaled or spent — the
//!   request is never served at reduced privacy;
//! * after a crash, recovery replays the journal; recovered spend is
//!   always ≥ the spend of requests actually served (see the journal
//!   module docs), so an exhausted user stays exhausted across restarts.

use crate::journal::{Journal, JournalError};
use geoind_core::{BudgetError, BudgetLedger};
use std::collections::BTreeMap;
use std::path::Path;

/// Configuration of a [`SpendLedger`].
#[derive(Debug, Clone, Copy)]
pub struct LedgerConfig {
    /// Maximum composed ε any single user may spend per epoch.
    pub cap_per_user: f64,
    /// The current epoch. Budgets renew when the epoch advances; opening
    /// a journal persisted at a newer epoch is refused.
    pub epoch: u64,
    /// Fold the WAL into a snapshot after this many records (`0` disables
    /// automatic compaction; [`SpendLedger::checkpoint`] stays available).
    pub compact_after: u64,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        Self {
            cap_per_user: 2.0,
            epoch: 0,
            compact_after: 4096,
        }
    }
}

/// Why a spend was refused. Nothing is spent or journaled on refusal.
#[derive(Debug)]
pub enum SpendError {
    /// The user's epoch budget cannot cover this request. Serving anyway
    /// would exceed the composed-ε cap, so the request must be refused —
    /// never served at reduced privacy.
    Exhausted {
        /// The refused user.
        user: u64,
        /// The ε the request would have spent.
        requested: f64,
        /// The ε the user has left this epoch (possibly 0).
        remaining: f64,
    },
    /// The spend could not be made durable; fail-closed refusal.
    Journal(JournalError),
    /// The requested charge is invalid (non-positive or non-finite).
    BadCharge(f64),
    /// The ledger shard holding this user's account failed recovery (see
    /// [`crate::shard::ShardedLedger`]). Without the shard's durable spend
    /// record the user's composed-ε position is unknown, so every request
    /// routed to it is refused — fail-closed, never served blind.
    ShardUnavailable {
        /// Index of the unavailable shard.
        shard: u64,
        /// Why the shard failed to recover.
        detail: String,
    },
    /// The warm standby has not durably acked this spend and the
    /// replication lag bound is reached (or no follower is registered
    /// at all). The follower is the source of truth for failover, so
    /// serving ahead of it would let a promoted follower re-grant
    /// budget the primary already served — refused fail-closed. The
    /// spend may already be journaled locally; refusing anyway
    /// over-counts at worst, never under.
    ReplicaLag {
        /// Locally journaled records the follower has not acked.
        lag: u64,
    },
    /// A follower with a newer fence generation refused this primary's
    /// replication stream: this node has been superseded by a promoted
    /// standby and must not serve spends under its stale generation.
    Fenced,
}

impl std::fmt::Display for SpendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpendError::Exhausted {
                user,
                requested,
                remaining,
            } => write!(
                f,
                "user {user} budget exhausted: requested {requested}, remaining {remaining}"
            ),
            SpendError::Journal(_) => write!(f, "spend could not be journaled"),
            SpendError::BadCharge(eps) => write!(f, "invalid spend {eps}"),
            SpendError::ShardUnavailable { shard, detail } => {
                write!(
                    f,
                    "ledger shard {shard} unavailable ({detail}); refusing fail-closed"
                )
            }
            SpendError::ReplicaLag { lag } => {
                write!(
                    f,
                    "replication lag bound reached ({lag} unacked); refusing fail-closed"
                )
            }
            SpendError::Fenced => {
                write!(f, "fenced by a promoted follower; refusing all spends")
            }
        }
    }
}

impl std::error::Error for SpendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpendError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

/// Crash-safe per-user spend accounting for one epoch. See the module
/// docs for the protocol.
#[derive(Debug)]
pub struct SpendLedger {
    config: LedgerConfig,
    journal: Journal,
    accounts: BTreeMap<u64, BudgetLedger>,
    /// The most recent non-fatal journal fault (a failed automatic
    /// compaction — the spend itself was already durable).
    last_compaction_fault: Option<String>,
}

impl SpendLedger {
    /// Open (or create) the ledger journaled in `dir`, recovering any
    /// prior state for `config.epoch`.
    ///
    /// # Errors
    /// Any [`JournalError`] from recovery (I/O, corruption of a committed
    /// region, epoch regression).
    ///
    /// # Panics
    /// Panics if `config.cap_per_user` is not a positive finite number —
    /// a programming error, not a runtime condition.
    pub fn open(dir: &Path, config: LedgerConfig) -> Result<Self, JournalError> {
        assert!(
            config.cap_per_user > 0.0 && config.cap_per_user.is_finite(),
            "cap_per_user must be positive and finite"
        );
        let (journal, recovered) = Journal::open(dir, config.epoch)?;
        let accounts = recovered
            .spent
            .into_iter()
            .map(|(user, spent)| (user, BudgetLedger::with_spent(config.cap_per_user, spent)))
            .collect();
        Ok(Self {
            config,
            journal,
            accounts,
            last_compaction_fault: None,
        })
    }

    /// Spend `eps` from `user`'s epoch budget, durably. `Ok` means the
    /// spend is journaled and fsynced — the caller may now serve the
    /// request. Any `Err` means nothing was spent and the request must be
    /// refused.
    ///
    /// # Errors
    /// [`SpendError::Exhausted`] when the cap cannot cover the request,
    /// [`SpendError::Journal`] when the spend could not be made durable,
    /// [`SpendError::BadCharge`] on an invalid `eps`.
    pub fn try_spend(&mut self, user: u64, eps: f64) -> Result<(), SpendError> {
        let cap = self.config.cap_per_user;
        let account = self
            .accounts
            .entry(user)
            .or_insert_with(|| BudgetLedger::new(cap));
        // Probe the charge before journaling: a refused request must not
        // leave a record (it spends nothing).
        let mut probe = account.clone();
        probe.try_charge(eps).map_err(|e| match e {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => SpendError::Exhausted {
                user,
                requested,
                remaining,
            },
            BudgetError::BadCharge(v) => SpendError::BadCharge(v),
            // An in-memory account never routes through a shard; the
            // variant exists for the sharded ledger layered on top.
            BudgetError::ShardUnavailable { shard } => SpendError::ShardUnavailable {
                shard,
                detail: "unexpected shard refusal from an in-memory account".into(),
            },
        })?;
        // Write-ahead: durable record first, in-memory spend second. A
        // crash between the two recovers the spend from the journal —
        // over-counting relative to what was served, never under.
        self.journal
            .append(user, eps)
            .map_err(SpendError::Journal)?;
        // The probe proved the charge fits; record it for real.
        account.force_spend(eps);
        if self.config.compact_after > 0
            && self.journal.records_since_snapshot() >= self.config.compact_after
        {
            // The spend is already durable; a failed compaction is
            // recorded but must not fail the request.
            if let Err(e) = self.checkpoint() {
                self.last_compaction_fault = Some(e.to_string());
            }
        }
        Ok(())
    }

    /// Apply one replicated spend from the primary: journal it durably,
    /// then fold it into the in-memory account — **without** the cap
    /// probe. The primary already served the request, so the record
    /// must land even if it pushes the account past the local cap
    /// (recovery tolerates over-cap state the same way, via
    /// `BudgetLedger::with_spent`); dropping it would let the user
    /// re-spend after failover. `Ok` means the record is durable and
    /// may be acked.
    ///
    /// # Errors
    /// [`SpendError::BadCharge`] on an invalid `eps` (never journaled),
    /// [`SpendError::Journal`] when the record could not be made
    /// durable — the caller must not ack it.
    pub fn apply_replicated(&mut self, user: u64, eps: f64) -> Result<(), SpendError> {
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(SpendError::BadCharge(eps));
        }
        self.journal
            .append(user, eps)
            .map_err(SpendError::Journal)?;
        let cap = self.config.cap_per_user;
        self.accounts
            .entry(user)
            .or_insert_with(|| BudgetLedger::new(cap))
            .force_spend(eps);
        if self.config.compact_after > 0
            && self.journal.records_since_snapshot() >= self.config.compact_after
        {
            if let Err(e) = self.checkpoint() {
                self.last_compaction_fault = Some(e.to_string());
            }
        }
        Ok(())
    }

    /// Fold the current state into a committed snapshot and restart the
    /// WAL. Called automatically every `compact_after` records and by
    /// [`Self::close`].
    ///
    /// # Errors
    /// Any [`JournalError`]; the ledger remains consistent and appendable
    /// (appends self-heal) whether or not the fold succeeded.
    pub fn checkpoint(&mut self) -> Result<(), JournalError> {
        let state: BTreeMap<u64, f64> = self
            .accounts
            .iter()
            .map(|(&user, acct)| (user, acct.spent()))
            .collect();
        self.journal.snapshot(&state)
    }

    /// Checkpoint and close cleanly. (Dropping without `close` is always
    /// safe — that is the crash path the journal exists for.)
    ///
    /// # Errors
    /// Any [`JournalError`] from the final checkpoint.
    pub fn close(mut self) -> Result<(), JournalError> {
        self.checkpoint()
    }

    /// The ε `user` has spent this epoch (0 for unknown users).
    pub fn spent(&self, user: u64) -> f64 {
        self.accounts.get(&user).map_or(0.0, BudgetLedger::spent)
    }

    /// The ε `user` may still spend this epoch.
    pub fn remaining(&self, user: u64) -> f64 {
        self.accounts
            .get(&user)
            .map_or(self.config.cap_per_user, BudgetLedger::remaining)
    }

    /// Number of users with any recorded spend this epoch.
    pub fn users(&self) -> usize {
        self.accounts.len()
    }

    /// Total ε spent across all users this epoch.
    pub fn total_spent(&self) -> f64 {
        self.accounts.values().map(BudgetLedger::spent).sum()
    }

    /// The ledger's epoch.
    pub fn epoch(&self) -> u64 {
        self.journal.epoch()
    }

    /// Per-user cap.
    pub fn cap_per_user(&self) -> f64 {
        self.config.cap_per_user
    }

    /// The most recent automatic-compaction fault, if any (the associated
    /// spends were already durable; this is operational telemetry).
    pub fn last_compaction_fault(&self) -> Option<&str> {
        self.last_compaction_fault.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "geoind-ledger-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(cap: f64) -> LedgerConfig {
        LedgerConfig {
            cap_per_user: cap,
            epoch: 0,
            compact_after: 0,
        }
    }

    #[test]
    fn cap_is_enforced_and_refusals_spend_nothing() {
        let dir = temp_dir("cap");
        let mut ledger = SpendLedger::open(&dir, config(1.0)).expect("open");
        assert!(ledger.try_spend(1, 0.4).is_ok());
        assert!(ledger.try_spend(1, 0.4).is_ok());
        let err = ledger.try_spend(1, 0.4).expect_err("over cap");
        assert!(
            matches!(err, SpendError::Exhausted { user: 1, .. }),
            "{err:?}"
        );
        assert!((ledger.spent(1) - 0.8).abs() < 1e-12);
        // A smaller request still fits.
        assert!(ledger.try_spend(1, 0.2).is_ok());
        assert!(matches!(
            ledger.try_spend(1, 0.01),
            Err(SpendError::Exhausted { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spend_survives_crash_and_exhausted_user_stays_refused() {
        let dir = temp_dir("crash");
        let mut ledger = SpendLedger::open(&dir, config(1.0)).expect("open");
        for _ in 0..4 {
            ledger.try_spend(9, 0.25).expect("spend");
        }
        assert!(matches!(
            ledger.try_spend(9, 0.25),
            Err(SpendError::Exhausted { .. })
        ));
        drop(ledger); // crash: no close()
        let mut recovered = SpendLedger::open(&dir, config(1.0)).expect("reopen");
        assert!((recovered.spent(9) - 1.0).abs() < 1e-12);
        assert!(matches!(
            recovered.try_spend(9, 0.25),
            Err(SpendError::Exhausted { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn automatic_compaction_preserves_state() {
        let dir = temp_dir("compact");
        let mut cfg = config(10.0);
        cfg.compact_after = 3;
        let mut ledger = SpendLedger::open(&dir, cfg).expect("open");
        for i in 0..10u64 {
            ledger.try_spend(i % 2, 0.5).expect("spend");
        }
        assert!(ledger.last_compaction_fault().is_none());
        drop(ledger);
        let recovered = SpendLedger::open(&dir, cfg).expect("reopen");
        assert!((recovered.spent(0) - 2.5).abs() < 1e-12);
        assert!((recovered.spent(1) - 2.5).abs() < 1e-12);
        assert!((recovered.total_spent() - 5.0).abs() < 1e-12);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_advance_renews_budgets() {
        let dir = temp_dir("epoch");
        let mut cfg = config(0.5);
        let mut ledger = SpendLedger::open(&dir, cfg).expect("open");
        ledger.try_spend(3, 0.5).expect("spend");
        assert!(matches!(
            ledger.try_spend(3, 0.5),
            Err(SpendError::Exhausted { .. })
        ));
        ledger.close().expect("close");
        cfg.epoch = 1;
        let mut renewed = SpendLedger::open(&dir, cfg).expect("open new epoch");
        assert_eq!(renewed.users(), 0);
        assert!(renewed.try_spend(3, 0.5).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_charges_are_typed() {
        let dir = temp_dir("badcharge");
        let mut ledger = SpendLedger::open(&dir, config(1.0)).expect("open");
        assert!(matches!(
            ledger.try_spend(1, 0.0),
            Err(SpendError::BadCharge(_))
        ));
        assert!(matches!(
            ledger.try_spend(1, f64::NAN),
            Err(SpendError::BadCharge(_))
        ));
        assert_eq!(ledger.users(), 1); // account exists, nothing spent
        assert_eq!(ledger.spent(1), 0.0);
        fs::remove_dir_all(&dir).ok();
    }
}
