//! Closed-loop load generator for the wire server (`geoind loadgen`).
//!
//! Each connection thread owns a slice of the request ids and drives
//! them to a **terminal** outcome: retryable refusals (`overloaded`,
//! `draining`, `in_flight`, `shard_unavailable`, `disk_full`), torn
//! responses, resets and timeouts are retried with seeded exponential
//! backoff + jitter under the same idempotency id, so a retry after a
//! torn response replays the journaled outcome instead of spending
//! again. Shard-repair refusals are tallied separately from overload
//! sheds, so the report distinguishes "the queue was full" from "my
//! shard was down".
//!
//! At the end the client fetches `GET /report` and reconciles its own
//! terminal tallies against the server's gate counters **exactly** —
//! every logical request must appear in exactly one terminal bucket on
//! both sides — then polls `GET /healthz` and reports shard
//! availability (ready/total, repair round trips). `geoind loadgen`
//! exits nonzero on any mismatch, which is what lets CI drive the
//! failpoint-armed server and still demand perfect accounting.
//!
//! With a `failover` address configured the client survives primary
//! loss: connect failures, torn exchanges, and `fenced` refusals make
//! one thread win a promotion race (`POST /promote` to the follower)
//! and every thread re-point its load; the final reconciliation then
//! sums gate counters across **both** servers, skipping whichever is
//! unreachable. Retries draw from a global token budget
//! (`retry_budget`) on top of the per-request attempt cap, so a dead
//! primary with no failover fails fast with the typed
//! [`ClientError::RetryBudgetExhausted`] instead of grinding through
//! backoff forever.

use crate::json::Json;
use geoind_rng::{Rng, SeededRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Tuning knobs for [`run_load`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:4770`.
    pub addr: String,
    /// Concurrent connection threads (clamped to at least 1).
    pub connections: usize,
    /// Total logical requests to drive to a terminal outcome.
    pub requests: u64,
    /// Requests cycle over users `0..users` (clamped to at least 1).
    pub users: u64,
    /// Per-attempt socket timeout (connect, read, write).
    pub timeout_ms: u64,
    /// Attempts per logical request before giving up (clamped to ≥ 1).
    pub max_attempts: u32,
    /// Base backoff; attempt `k` waits `base·2^min(k,6)` plus seeded
    /// jitter in `[0, base)`.
    pub backoff_base_ms: u64,
    /// Seed for the per-thread jitter RNGs.
    pub seed: u64,
    /// Post `/shutdown` after a successful reconciliation.
    pub shutdown_after: bool,
    /// Warm-standby follower to fail over to. On primary loss (or a
    /// `fenced` refusal) one thread wins a promotion race, posts
    /// `/promote` here, and every thread re-points its load; the final
    /// reconciliation then sums gate counters across **both** servers,
    /// skipping whichever is unreachable.
    pub failover: Option<String>,
    /// Bearer token sent as `Authorization` on every request when set.
    pub auth_token: Option<String>,
    /// Global retry-token budget shared by all threads (`None` =
    /// unbounded). Each retry attempt consumes one token; once dry,
    /// requests that cannot terminate are abandoned and the run fails
    /// with the typed [`ClientError::RetryBudgetExhausted`] — a dead,
    /// un-promoted primary fails fast instead of grinding through
    /// per-request backoff forever.
    pub retry_budget: Option<u64>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4770".into(),
            connections: 4,
            requests: 100,
            users: 10,
            timeout_ms: 2_000,
            max_attempts: 12,
            backoff_base_ms: 10,
            seed: 1,
            shutdown_after: false,
            failover: None,
            auth_token: None,
            retry_budget: None,
        }
    }
}

/// Client-side terminal tallies plus throughput/latency, produced by
/// [`run_load`] after a successful reconciliation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Requests that ended `served`.
    pub served: u64,
    /// Requests that ended `budget_exhausted`.
    pub refused_budget: u64,
    /// Requests that ended `expired`.
    pub expired: u64,
    /// Requests that ended `journal_fault`.
    pub journal_faults: u64,
    /// Retry attempts beyond each request's first (all causes).
    pub retries: u64,
    /// `503 overloaded` refusals observed (queue-full sheds).
    pub shed_seen: u64,
    /// Exchanges the client had to abandon mid-flight: timeouts, resets,
    /// torn/unparseable responses.
    pub torn_seen: u64,
    /// Idempotent replays the server reported at the end.
    pub server_retried: u64,
    /// `503 shard_unavailable` refusals observed (the user's shard was
    /// quarantined/scavenging/failed; retried, not terminal).
    pub shard_unavailable_seen: u64,
    /// `503 disk_full` refusals observed (retried, not terminal).
    pub disk_full_seen: u64,
    /// Shards serving (ready or probation) at the final `/healthz` poll.
    pub shards_ready: u64,
    /// Total ledger shards at the final `/healthz` poll.
    pub shards_total: u64,
    /// Quarantine→repair→serving round trips the server completed.
    pub repaired_shards: u64,
    /// Requests abandoned because the global retry-token budget ran
    /// dry (zero on a healthy run; nonzero makes [`run_load`] return
    /// the typed [`ClientError::RetryBudgetExhausted`]).
    pub retry_budget_exhausted: u64,
    /// Whether the run re-pointed its load at the failover address.
    pub failed_over: bool,
    /// Wall-clock for the whole run, seconds.
    pub wall_s: f64,
    /// Terminal outcomes per wall-clock second.
    pub req_per_s: f64,
    /// Median latency (first send → terminal outcome), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

impl LoadReport {
    /// Terminal outcomes the client accounted for.
    pub fn total(&self) -> u64 {
        self.served + self.refused_budget + self.expired + self.journal_faults
    }

    /// Stable single-line form, mirroring the server's log-line
    /// discipline (append-only `key=value`).
    pub fn log_line(&self) -> String {
        format!(
            "loadgen total={} served={} refused={} expired={} journal-fault={} retries={} shed_seen={} torn_seen={} server_retried={} wall_s={:.3} req_per_s={:.1} p50_ms={:.2} p99_ms={:.2} shard_unavailable_seen={} disk_full_seen={} shards_ready={} shards_total={} repaired_shards={} retry_budget_exhausted={} failed_over={}",
            self.total(),
            self.served,
            self.refused_budget,
            self.expired,
            self.journal_faults,
            self.retries,
            self.shed_seen,
            self.torn_seen,
            self.server_retried,
            self.wall_s,
            self.req_per_s,
            self.p50_ms,
            self.p99_ms,
            self.shard_unavailable_seen,
            self.disk_full_seen,
            self.shards_ready,
            self.shards_total,
            self.repaired_shards,
            self.retry_budget_exhausted,
            self.failed_over,
        )
    }
}

/// Why a load run failed. Any of these makes `geoind loadgen` exit
/// nonzero.
#[derive(Debug)]
pub enum ClientError {
    /// Could not resolve or reach the server at all.
    Io(String),
    /// The server answered something the protocol does not allow.
    Protocol(String),
    /// A logical request exhausted its retry budget.
    RetriesExhausted {
        /// The request id that gave up.
        id: u64,
        /// Attempts made.
        attempts: u32,
    },
    /// The global retry-token budget ran dry: requests that could not
    /// terminate were abandoned — the fast, typed verdict for a dead
    /// primary with no promoted failover.
    RetryBudgetExhausted {
        /// Logical requests abandoned without a terminal outcome.
        abandoned: u64,
        /// The partial client-side tallies for the post-mortem.
        report: Box<LoadReport>,
    },
    /// The client's terminal tallies do not match the server's gate
    /// counters.
    Mismatch {
        /// What disagreed.
        detail: String,
        /// The client-side tallies for the post-mortem.
        report: Box<LoadReport>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(detail) => write!(f, "i/o: {detail}"),
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ClientError::RetriesExhausted { id, attempts } => {
                write!(f, "request {id} gave up after {attempts} attempts")
            }
            ClientError::RetryBudgetExhausted { abandoned, .. } => {
                write!(
                    f,
                    "retry budget exhausted: {abandoned} requests abandoned without a terminal outcome"
                )
            }
            ClientError::Mismatch { detail, .. } => {
                write!(f, "reconciliation failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

#[derive(Debug, Default, Clone)]
struct Tally {
    served: u64,
    refused_budget: u64,
    expired: u64,
    journal_faults: u64,
    retries: u64,
    shed_seen: u64,
    torn_seen: u64,
    shard_unavailable_seen: u64,
    disk_full_seen: u64,
    retry_budget_exhausted: u64,
}

/// State every connection thread shares: which endpoint is live and
/// the global retry-token pool.
struct SharedRun {
    /// `[primary]` or `[primary, failover]`.
    targets: Vec<SocketAddr>,
    /// Index into `targets` the load is currently pointed at.
    active: std::sync::atomic::AtomicUsize,
    /// Promotion race: 0 = nobody promoting, 1 = in flight, 2 = done.
    /// One thread wins the CAS and posts `/promote`; losers keep
    /// retrying and pick up the new `active` index.
    promote_state: std::sync::atomic::AtomicUsize,
    /// Remaining retry tokens (`u64::MAX` = unbounded).
    retry_tokens: std::sync::atomic::AtomicU64,
}

impl SharedRun {
    fn new(targets: Vec<SocketAddr>, retry_budget: Option<u64>) -> Self {
        Self {
            targets,
            active: std::sync::atomic::AtomicUsize::new(0),
            promote_state: std::sync::atomic::AtomicUsize::new(0),
            retry_tokens: std::sync::atomic::AtomicU64::new(retry_budget.unwrap_or(u64::MAX)),
        }
    }

    fn active_addr(&self) -> SocketAddr {
        use std::sync::atomic::Ordering;
        self.targets[self
            .active
            .load(Ordering::SeqCst)
            .min(self.targets.len() - 1)]
    }

    fn failed_over(&self) -> bool {
        self.active.load(std::sync::atomic::Ordering::SeqCst) > 0
    }

    /// Take one retry token; false when the pool is dry.
    fn take_retry_token(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.retry_tokens
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                if n == u64::MAX {
                    Some(n) // unbounded: never decrements
                } else {
                    n.checked_sub(1)
                }
            })
            .is_ok()
    }

    /// The active endpoint looks dead (connect refused, timeout) or
    /// answered `fenced`: fail over if a failover target exists. One
    /// thread wins the right to post `/promote`; the rest re-point as
    /// soon as `active` flips. `already_promoted` skips the promotion
    /// (a `fenced` refusal proves someone else promoted the follower).
    fn note_primary_trouble(&self, config: &ClientConfig, already_promoted: bool) {
        use std::sync::atomic::Ordering;
        if self.targets.len() < 2 || self.active.load(Ordering::SeqCst) != 0 {
            return;
        }
        if already_promoted {
            self.promote_state.store(2, Ordering::SeqCst);
            self.active.store(1, Ordering::SeqCst);
            return;
        }
        if self
            .promote_state
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let follower = self.targets[1];
        if promote_follower(follower, config) {
            self.promote_state.store(2, Ordering::SeqCst);
            self.active.store(1, Ordering::SeqCst);
        } else {
            // Promotion did not land (follower slow to boot, transient
            // fault): release the race so a later retry re-attempts.
            self.promote_state.store(0, Ordering::SeqCst);
        }
    }
}

/// Post `/promote` to the follower; true on an acknowledged promotion.
fn promote_follower(addr: SocketAddr, config: &ClientConfig) -> bool {
    let Ok(mut stream) = connect(addr, config.timeout_ms) else {
        return false;
    };
    matches!(
        exchange(
            &mut stream,
            "POST",
            "/promote",
            "{}",
            config.timeout_ms,
            config.auth_token.as_deref(),
        ),
        Ok((200, _))
    )
}

/// Drive `config.requests` logical requests to terminal outcomes over
/// `config.connections` threads, then reconcile against the server's
/// own counters.
///
/// # Errors
/// [`ClientError::Mismatch`] when any gate counter disagrees with the
/// client tally; the other variants for connectivity, protocol, or
/// retry-budget failures.
pub fn run_load(config: &ClientConfig) -> Result<LoadReport, ClientError> {
    let mut targets = vec![resolve(&config.addr)?];
    if let Some(failover) = config.failover.as_deref() {
        targets.push(resolve(failover)?);
    }
    let shared = SharedRun::new(targets, config.retry_budget);
    let connections = config.connections.max(1);
    let users = config.users.max(1);
    let started = Instant::now();
    let results: Vec<Result<(Tally, Vec<f64>), ClientError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|t| {
                let config = config.clone();
                let shared = &shared;
                s.spawn(move || connection_thread(t, connections, users, shared, &config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(ClientError::Io("client thread panicked".into())))
            })
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut tally = Tally::default();
    let mut latencies = Vec::new();
    for result in results {
        let (t, mut lat) = result?;
        tally.served += t.served;
        tally.refused_budget += t.refused_budget;
        tally.expired += t.expired;
        tally.journal_faults += t.journal_faults;
        tally.retries += t.retries;
        tally.shed_seen += t.shed_seen;
        tally.torn_seen += t.torn_seen;
        tally.shard_unavailable_seen += t.shard_unavailable_seen;
        tally.disk_full_seen += t.disk_full_seen;
        tally.retry_budget_exhausted += t.retry_budget_exhausted;
        latencies.append(&mut lat);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let percentile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let mut report = LoadReport {
        served: tally.served,
        refused_budget: tally.refused_budget,
        expired: tally.expired,
        journal_faults: tally.journal_faults,
        retries: tally.retries,
        shed_seen: tally.shed_seen,
        torn_seen: tally.torn_seen,
        server_retried: 0,
        shard_unavailable_seen: tally.shard_unavailable_seen,
        disk_full_seen: tally.disk_full_seen,
        shards_ready: 0,
        shards_total: 0,
        repaired_shards: 0,
        retry_budget_exhausted: tally.retry_budget_exhausted,
        failed_over: shared.failed_over(),
        wall_s,
        req_per_s: if wall_s > 0.0 {
            tally.served as f64 / wall_s
        } else {
            0.0
        },
        p50_ms: percentile(0.50),
        p99_ms: percentile(0.99),
    };
    // req_per_s counts all terminal outcomes, not just serves.
    if wall_s > 0.0 {
        report.req_per_s = report.total() as f64 / wall_s;
    }

    if report.retry_budget_exhausted > 0 {
        // Abandoned requests never reached a terminal outcome, so no
        // reconciliation can balance: fail fast with the typed verdict.
        return Err(ClientError::RetryBudgetExhausted {
            abandoned: report.retry_budget_exhausted,
            report: Box::new(report),
        });
    }

    reconcile(&shared.targets, config, &mut report)?;
    poll_health(shared.active_addr(), config, &mut report)?;

    if config.shutdown_after {
        // Drain every endpoint still alive; a dead (killed) primary is
        // skipped, but at least one server must acknowledge.
        let mut acknowledged = false;
        let mut last = String::new();
        for &addr in &shared.targets {
            match control_exchange(addr, config, "POST", "/shutdown", "{}") {
                Ok((200, _)) => acknowledged = true,
                Ok((status, _)) => {
                    return Err(ClientError::Protocol(format!("shutdown answered {status}")));
                }
                Err(e) => last = e.to_string(),
            }
        }
        if !acknowledged {
            return Err(ClientError::Io(format!(
                "no endpoint took /shutdown: {last}"
            )));
        }
    }
    Ok(report)
}

/// Control-plane exchange with its own retry loop: an armed
/// `serve.net.*` failpoint may drop or tear the `/report` or
/// `/shutdown` connection too, and the run must not fail on that.
fn control_exchange(
    addr: SocketAddr,
    config: &ClientConfig,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), ClientError> {
    let mut last = String::new();
    for attempt in 0..8u64 {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(50 * attempt));
        }
        let mut stream = match connect(addr, config.timeout_ms) {
            Ok(s) => s,
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        match exchange(
            &mut stream,
            method,
            path,
            body,
            config.timeout_ms,
            config.auth_token.as_deref(),
        ) {
            Ok(answer) => return Ok(answer),
            Err(e) => last = e.to_string(),
        }
    }
    Err(ClientError::Io(format!("{method} {path} failed: {last}")))
}

/// Fetch `GET /report` from every endpoint the run touched — after a
/// failover that is **both** servers — and demand exact agreement
/// between the client's terminal tallies and the *sum* of the gate
/// counters (each logical request terminates on exactly one server).
/// An unreachable endpoint (the killed primary) is skipped; at least
/// one must answer. Wire-only telemetry (`shed_net`, `torn`) is
/// deliberately not matched: a stalled handler may count a tear
/// *after* this snapshot, and those exchanges never reached the gate.
///
/// When the run failed over **and** an endpoint died with its counters,
/// exact equality is unobtainable — the dead primary's tallies are
/// gone. What stays provable from the survivors is still checked hard:
/// every serve the client saw either terminated on a reachable server
/// or, by the ack-before-serve replication contract, was durably
/// applied on the follower before the primary answered. So reachable
/// serves bound the client's count from below and serves plus
/// `replica_applied` bound it from above, and every reachable refusal
/// counter must be covered by the client's tally.
fn reconcile(
    targets: &[SocketAddr],
    config: &ClientConfig,
    report: &mut LoadReport,
) -> Result<(), ClientError> {
    let mut sums: [u64; 5] = [0; 5];
    let mut replica_applied = 0u64;
    let mut reachable = 0usize;
    let mut unreachable = 0usize;
    let mut last_err = String::new();
    for &addr in targets {
        let (status, body) = match control_exchange(addr, config, "GET", "/report", "") {
            Ok(answer) => answer,
            Err(e) => {
                last_err = e.to_string();
                unreachable += 1;
                continue;
            }
        };
        if status != 200 {
            return Err(ClientError::Protocol(format!("/report answered {status}")));
        }
        let parsed = Json::parse(&body)
            .map_err(|e| ClientError::Protocol(format!("unparseable /report body: {e}")))?;
        let field = |name: &str| -> Result<u64, ClientError> {
            parsed
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("/report missing {name}")))
        };
        sums[0] += field("served")?;
        sums[1] += field("refused_budget")?;
        sums[2] += field("expired")?;
        sums[3] += field("journal_faults")?;
        sums[4] += field("retried")?;
        replica_applied += field("replica_applied")?;
        reachable += 1;
    }
    if reachable == 0 {
        return Err(ClientError::Io(format!(
            "no endpoint answered /report: {last_err}"
        )));
    }
    report.server_retried = sums[4];
    if report.failed_over && unreachable > 0 {
        let mut mismatches = Vec::new();
        if sums[0] > report.served || report.served > sums[0] + replica_applied {
            mismatches.push(format!(
                "served: client={} outside [{}, {}]",
                report.served,
                sums[0],
                sums[0] + replica_applied
            ));
        }
        for (name, server, client) in [
            ("refused_budget", sums[1], report.refused_budget),
            ("expired", sums[2], report.expired),
            ("journal_faults", sums[3], report.journal_faults),
        ] {
            if server > client {
                mismatches.push(format!("{name}: server={server} > client={client}"));
            }
        }
        if !mismatches.is_empty() {
            return Err(ClientError::Mismatch {
                detail: mismatches.join(", "),
                report: Box::new(report.clone()),
            });
        }
        return Ok(());
    }
    let pairs = [
        ("served", sums[0], report.served),
        ("refused_budget", sums[1], report.refused_budget),
        ("expired", sums[2], report.expired),
        ("journal_faults", sums[3], report.journal_faults),
    ];
    let mut mismatches = Vec::new();
    for (name, server, client) in pairs {
        if server != client {
            mismatches.push(format!("{name}: server={server} client={client}"));
        }
    }
    if !mismatches.is_empty() {
        return Err(ClientError::Mismatch {
            detail: mismatches.join(", "),
            report: Box::new(report.clone()),
        });
    }
    Ok(())
}

/// Poll `GET /healthz` once after reconciliation and fold shard
/// availability into the report. A `503` here is *degraded*, not an
/// error: the body still carries the per-state counts.
fn poll_health(
    addr: SocketAddr,
    config: &ClientConfig,
    report: &mut LoadReport,
) -> Result<(), ClientError> {
    let (status, body) = control_exchange(addr, config, "GET", "/healthz", "")?;
    if status != 200 && status != 503 {
        return Err(ClientError::Protocol(format!("/healthz answered {status}")));
    }
    let parsed = Json::parse(&body)
        .map_err(|e| ClientError::Protocol(format!("unparseable /healthz body: {e}")))?;
    let field = |name: &str| -> Result<u64, ClientError> {
        parsed
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("/healthz missing {name}")))
    };
    report.shards_total = field("shards")?;
    report.shards_ready = field("ready")? + field("probation")?;
    report.repaired_shards = field("repaired_shards")?;
    Ok(())
}

fn connection_thread(
    thread_index: usize,
    connections: usize,
    users: u64,
    shared: &SharedRun,
    config: &ClientConfig,
) -> Result<(Tally, Vec<f64>), ClientError> {
    let mut rng = SeededRng::from_seed(config.seed.wrapping_add(thread_index as u64));
    let mut tally = Tally::default();
    let mut latencies = Vec::new();
    let mut stream: Option<TcpStream> = None;
    let max_attempts = config.max_attempts.max(1);
    'requests: for id in (thread_index as u64..config.requests).step_by(connections) {
        let user = id % users;
        // The point is deterministic in the id so reruns are comparable.
        let x = (id % 7) as f64 * 0.9 - 3.0;
        let y = (id % 5) as f64 * 1.1 - 2.0;
        let body = format!(r#"{{"user":{user},"id":{id},"x":{x},"y":{y}}}"#);
        let first_send = Instant::now();
        let mut attempt = 0u32;
        loop {
            if attempt >= max_attempts {
                return Err(ClientError::RetriesExhausted {
                    id,
                    attempts: attempt,
                });
            }
            if attempt > 0 {
                if !shared.take_retry_token() {
                    // The global pool is dry: abandon this request (it
                    // has no terminal outcome) and move on — the run
                    // fails with the typed verdict once threads join.
                    tally.retry_budget_exhausted += 1;
                    continue 'requests;
                }
                tally.retries += 1;
                backoff(&mut rng, config.backoff_base_ms, attempt);
            }
            attempt += 1;
            let addr = shared.active_addr();
            let conn = match stream.take() {
                Some(conn) => conn,
                None => match connect(addr, config.timeout_ms) {
                    Ok(conn) => conn,
                    Err(_) => {
                        // Server mid-restart, accept-dropped, or dead:
                        // a configured failover gets promoted here.
                        shared.note_primary_trouble(config, false);
                        continue;
                    }
                },
            };
            let mut conn = conn;
            match exchange(
                &mut conn,
                "POST",
                "/protect",
                &body,
                config.timeout_ms,
                config.auth_token.as_deref(),
            ) {
                Err(_) => {
                    // Timeout, reset, torn response: abandon the
                    // connection and retry the same id — the server's
                    // idempotency table makes this at-most-once.
                    tally.torn_seen += 1;
                    shared.note_primary_trouble(config, false);
                    continue;
                }
                Ok((status, response_body)) => {
                    let outcome = Json::parse(&response_body)
                        .ok()
                        .and_then(|v| v.get("status").and_then(Json::as_str).map(String::from));
                    let Some(outcome) = outcome else {
                        tally.torn_seen += 1;
                        continue;
                    };
                    match (status, outcome.as_str()) {
                        (200, "served") => {
                            tally.served += 1;
                        }
                        (200, "budget_exhausted") => {
                            tally.refused_budget += 1;
                        }
                        (200, "expired") => {
                            tally.expired += 1;
                        }
                        (200, "journal_fault") => {
                            tally.journal_faults += 1;
                        }
                        (503, "overloaded") => {
                            tally.shed_seen += 1;
                            stream = Some(conn);
                            continue;
                        }
                        (503, "shard_unavailable") => {
                            // The user's shard is down for repair: retry
                            // (the idempotency key was released server-side)
                            // and tally separately from overload sheds.
                            tally.shard_unavailable_seen += 1;
                            stream = Some(conn);
                            continue;
                        }
                        (503, "disk_full") => {
                            tally.disk_full_seen += 1;
                            stream = Some(conn);
                            continue;
                        }
                        (503, "replica_lag") => {
                            // The primary is ahead of its follower's
                            // acks: backpressure, same family as a
                            // queue-full shed. Retry on the same
                            // connection once the follower catches up.
                            tally.shed_seen += 1;
                            stream = Some(conn);
                            continue;
                        }
                        (503, "fenced") => {
                            // A promoted follower fenced this server:
                            // drop the connection and re-point — the
                            // promotion already happened elsewhere.
                            shared.note_primary_trouble(config, true);
                            continue;
                        }
                        (503, "standby") => {
                            // An un-promoted follower: win the
                            // promotion race (or wait for the winner)
                            // and retry against whoever is active.
                            shared.note_primary_trouble(config, false);
                            continue;
                        }
                        (503, "draining" | "in_flight" | "too_many_connections") => {
                            stream = Some(conn);
                            continue;
                        }
                        (s, o) => {
                            return Err(ClientError::Protocol(format!(
                                "request {id}: unexpected {s} {o:?}"
                            )));
                        }
                    }
                    latencies.push(first_send.elapsed().as_secs_f64() * 1_000.0);
                    stream = Some(conn);
                    break;
                }
            }
        }
    }
    Ok((tally, latencies))
}

/// Exponential backoff with seeded jitter: `base·2^min(attempt,6)` plus
/// a uniform draw in `[0, base)` milliseconds.
fn backoff(rng: &mut SeededRng, base_ms: u64, attempt: u32) {
    let base = base_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(6));
    let jitter = (rng.gen_f64() * base as f64) as u64;
    std::thread::sleep(Duration::from_millis(exp + jitter));
}

fn resolve(addr: &str) -> Result<SocketAddr, ClientError> {
    addr.to_socket_addrs()
        .map_err(|e| ClientError::Io(format!("cannot resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| ClientError::Io(format!("{addr} resolves to nothing")))
}

fn connect(addr: SocketAddr, timeout_ms: u64) -> Result<TcpStream, ClientError> {
    let timeout = Duration::from_millis(timeout_ms.max(1));
    let stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| ClientError::Io(format!("connect {addr}: {e}")))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| ClientError::Io(e.to_string()))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| ClientError::Io(e.to_string()))?;
    Ok(stream)
}

/// One HTTP exchange: write the request, read exactly one response
/// frame. Any I/O failure or short/unparseable response is an `Err`.
fn exchange(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
    timeout_ms: u64,
    auth_token: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let auth = match auth_token {
        Some(token) => format!("Authorization: Bearer {token}\r\n"),
        None => String::new(),
    };
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: geoind\r\nContent-Type: application/json\r\n{auth}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    read_response(stream, timeout_ms)
}

fn read_response(stream: &mut TcpStream, timeout_ms: u64) -> std::io::Result<(u16, String)> {
    use std::io::{Error, ErrorKind};
    let deadline = Instant::now() + Duration::from_millis(timeout_ms.max(1));
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some((status, body_text)) = try_parse_response(&pending)? {
            return Ok((status, body_text));
        }
        if Instant::now() >= deadline {
            return Err(Error::new(ErrorKind::TimedOut, "response deadline"));
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(Error::new(ErrorKind::UnexpectedEof, "torn response")),
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn try_parse_response(pending: &[u8]) -> std::io::Result<Option<(u16, String)>> {
    use std::io::{Error, ErrorKind};
    let Some(head_end) = pending.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&pending[..head_end])
        .map_err(|_| Error::new(ErrorKind::InvalidData, "non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| Error::new(ErrorKind::InvalidData, "empty head"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::new(ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Error::new(ErrorKind::InvalidData, "bad content-length"))?;
            }
        }
    }
    let total = head_end + 4 + content_length;
    if pending.len() < total {
        return Ok(None);
    }
    let body = std::str::from_utf8(&pending[head_end + 4..total])
        .map_err(|_| Error::new(ErrorKind::InvalidData, "non-utf8 body"))?;
    Ok(Some((status, body.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parser_handles_split_and_exact_frames() {
        let full = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nabcd";
        // Incomplete prefixes parse to None, the full frame parses once.
        for cut in 0..full.len() {
            let parsed = try_parse_response(&full[..cut]).unwrap();
            assert!(parsed.is_none(), "cut={cut}");
        }
        let (status, body) = try_parse_response(full).unwrap().unwrap();
        assert_eq!((status, body.as_str()), (200, "abcd"));
    }

    #[test]
    fn load_report_log_line_format_is_pinned() {
        let report = LoadReport {
            served: 10,
            refused_budget: 2,
            expired: 1,
            journal_faults: 1,
            retries: 3,
            shed_seen: 2,
            torn_seen: 1,
            server_retried: 1,
            shard_unavailable_seen: 4,
            disk_full_seen: 2,
            shards_ready: 3,
            shards_total: 4,
            repaired_shards: 1,
            retry_budget_exhausted: 7,
            failed_over: true,
            wall_s: 0.5,
            req_per_s: 28.0,
            p50_ms: 1.25,
            p99_ms: 9.5,
        };
        assert_eq!(
            report.log_line(),
            "loadgen total=14 served=10 refused=2 expired=1 journal-fault=1 retries=3 shed_seen=2 torn_seen=1 server_retried=1 wall_s=0.500 req_per_s=28.0 p50_ms=1.25 p99_ms=9.50 shard_unavailable_seen=4 disk_full_seen=2 shards_ready=3 shards_total=4 repaired_shards=1 retry_budget_exhausted=7 failed_over=true"
        );
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        // Attempt 60 must not overflow the shift.
        let mut rng = SeededRng::from_seed(9);
        let start = Instant::now();
        backoff(&mut rng, 1, 60);
        assert!(start.elapsed() < Duration::from_millis(500));
    }
}
