//! Crash-safe serving front-end for geo-indistinguishable location
//! reporting.
//!
//! The paper's mechanism ([`geoind_core::MsmMechanism`], wrapped by the
//! [`geoind_core::ResilientMechanism`] degradation ladder) answers a
//! single report. A real deployment answers millions, concurrently, from
//! users whose privacy guarantee *composes* across reports — and it
//! crashes. This crate adds the serving layer that makes repeated,
//! concurrent use safe:
//!
//! * [`journal`] — a write-ahead journal with checksummed records,
//!   snapshot compaction via atomic rename, and recovery that tolerates
//!   truncated tails and torn records. Its invariant: **recovered spend
//!   is never less than the spend of requests actually served.**
//! * [`ledger`] — per-user, epoch-scoped ε-budget accounting on top of
//!   the journal. A request that would exceed the cap gets a typed
//!   refusal; it is never served at reduced privacy.
//! * [`server`] — a bounded-queue worker pool with load shedding,
//!   per-request deadlines checked before any sampling, graceful drain
//!   on shutdown, and per-tier/per-outcome counters.
//! * [`shard`] — the ledger split by user hash into N independent
//!   journals (`shard-<k>/`) so fsync and compaction never serialize;
//!   a shard that fails recovery refuses its users fail-closed while
//!   the rest keep serving, and (with repair enabled) walks a
//!   `Quarantined → Scavenging → Probation → Ready` state machine that
//!   salvages the journal and re-admits the shard only after the
//!   standard open verifies the salvage.
//! * [`replica`] — warm-standby replication: each served spend ships
//!   as a checksummed WAL record to a follower and is answered only
//!   after the follower's durable ack; failover is fenced by a
//!   persisted generation so a revived stale primary is refused and
//!   split-brain cannot double-spend.
//! * [`signal`] — a libc-crate-free `SIGTERM`/`SIGINT` flag so
//!   `kill -TERM` runs the same graceful drain as `POST /shutdown`
//!   (plus `SIGUSR1` for follower promotion).
//! * [`wire`] — a std-only HTTP/1.1 front door over the worker pool:
//!   bounded accept backlog, per-connection deadlines, pipelined
//!   batches, idempotent retry keys, socket-level failpoints, and a
//!   graceful drain that reconciles exactly with what clients saw.
//! * [`client`] — the closed-loop load generator used by `geoind
//!   loadgen`: seeded exponential backoff with jitter, per-request
//!   timeouts, and end-of-run reconciliation against the server's own
//!   counters.
//!
//! Everything is std-only and deterministic under test: time comes from
//! [`geoind_testkit::clock::Clock`], randomness from seeded
//! [`geoind_rng::SeededRng`], and every fallible journal step carries a
//! named failpoint site for crash-replay testing.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod client;
pub mod journal;
pub(crate) mod json;
pub mod ledger;
pub mod replica;
pub mod server;
pub mod shard;
pub mod signal;
pub mod wire;

pub use client::{run_load, ClientConfig, ClientError, LoadReport};
pub use geoind_testkit::clock;
pub use journal::{
    atomic_write, is_transient_io, read_fence_gen, scavenge, write_fence_gen, Journal,
    JournalError, RecoveredState, ScavengeReport,
};
pub use ledger::{LedgerConfig, SpendError, SpendLedger};
pub use replica::{register_with_primary, Applier, Shipper, ShipperConfig};
pub use server::{
    Request, Response, ServeConfig, ServeReport, Server, ShutdownOutcome, SubmitError,
};
pub use shard::{shard_of, RepairMode, ShardHealth, ShardHealthCounts, ShardedLedger};
pub use signal::{
    install_promote_handler, install_termination_handler, take_promote_requested,
    termination_requested,
};
pub use wire::{WireConfig, WireServer};
