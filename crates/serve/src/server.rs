//! Multi-threaded serving front-end: bounded admission queue, per-request
//! deadlines, budget-gated sampling through the degradation ladder.
//!
//! The request path is strictly ordered to keep every outcome
//! privacy-safe:
//!
//! 1. **Admission** — a full queue sheds the request immediately
//!    (`SubmitError::QueueFull`); nothing downstream runs.
//! 2. **Deadline** — a worker checks the request's deadline *before any
//!    sampling*. An expired request is counted and answered
//!    [`Response::Expired`] with the user's budget untouched.
//! 3. **Budget** — the spend is journaled durably via
//!    [`SpendLedger::try_spend`]. A refusal ([`Response::BudgetExhausted`]
//!    or [`Response::JournalFault`]) means no noise is ever sampled: a
//!    request is never served at reduced privacy or without a durable
//!    spend record.
//! 4. **Sampling** — only now does the request reach
//!    [`ResilientMechanism::report_with_tier`], which itself degrades
//!    GeoInd-safely under faults.
//!
//! Shutdown is a graceful drain: admission closes, workers finish the
//! queued backlog, and the ledger is checkpointed.

use crate::ledger::SpendError;
use crate::shard::ShardedLedger;
use geoind_core::{ResilientMechanism, Tier};
use geoind_rng::SeededRng;
use geoind_spatial::geom::Point;
use geoind_testkit::clock::Clock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads draining the queue (clamped to at least 1).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Base seed for the per-worker RNGs (worker `i` uses `seed + i`).
    pub seed: u64,
    /// How many queued requests a worker drains per queue-lock
    /// acquisition (clamped to at least 1). The batch is gated first
    /// (deadline, budget — neither consumes randomness) and the admitted
    /// points are sampled through one
    /// [`ResilientMechanism::report_many`] call, so any batch size
    /// produces the same bits as serving the jobs one at a time.
    pub batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            seed: 0,
            batch: 1,
        }
    }
}

/// A location-report request.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Identity the spend is accounted against.
    pub user: u64,
    /// True location to perturb.
    pub point: Point,
    /// Absolute deadline in [`Clock`] nanos; `None` means no deadline.
    pub deadline_nanos: Option<u64>,
}

/// Terminal outcome of a request, delivered on the channel returned by
/// [`Server::submit`].
#[derive(Debug, Clone)]
pub enum Response {
    /// The sanitized location and the ladder tier that produced it.
    Served {
        /// Perturbed location.
        point: Point,
        /// Which tier of the degradation ladder served it.
        tier: Tier,
    },
    /// The user's epoch budget cannot cover the request.
    BudgetExhausted {
        /// ε the user still has this epoch.
        remaining: f64,
    },
    /// The deadline passed before sampling; the budget is untouched.
    Expired,
    /// The spend could not be made durable; fail-closed refusal.
    JournalFault(String),
    /// The shard owning the user's account is quarantined, scavenging,
    /// or failed; fail-closed refusal, retryable once repair completes.
    /// The budget is untouched.
    ShardUnavailable {
        /// The unavailable shard's index.
        shard: u64,
    },
    /// The journal device is out of space; fail-closed refusal,
    /// retryable. The budget is untouched.
    DiskFull,
    /// The warm standby has not acked this spend within the replication
    /// lag bound (or no follower is registered); fail-closed refusal,
    /// retryable. The spend may be journaled locally but was not
    /// served — over-counted at worst, never under.
    ReplicaLag {
        /// Locally journaled records the follower has not acked.
        lag: u64,
    },
    /// This node was superseded by a promoted follower and refuses all
    /// spends under its stale generation. Not retryable here — clients
    /// should fail over to the promoted follower.
    Fenced,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; the request was shed at admission.
    QueueFull,
    /// The server is draining or stopped.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue full; request shed"),
            SubmitError::Closed => write!(f, "server is not accepting requests"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug, Default)]
struct ServeCounters {
    served_by_tier: [AtomicU64; 3],
    refused_budget: AtomicU64,
    expired: AtomicU64,
    shed: AtomicU64,
    journal_faults: AtomicU64,
    refused_shard: AtomicU64,
    disk_full: AtomicU64,
    replica_lag: AtomicU64,
    fenced: AtomicU64,
    drained: AtomicU64,
}

impl ServeCounters {
    /// Snapshot, folding in the ladder's channel-certification counters
    /// and the sharded ledger's repair accounting so one report line
    /// carries the whole serving story.
    fn snapshot(
        &self,
        ladder: &geoind_core::DegradationReport,
        ledger: &ShardedLedger,
    ) -> ServeReport {
        ServeReport {
            served_by_tier: [
                self.served_by_tier[0].load(Ordering::Relaxed),
                self.served_by_tier[1].load(Ordering::Relaxed),
                self.served_by_tier[2].load(Ordering::Relaxed),
            ],
            refused_budget: self.refused_budget.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            journal_faults: self.journal_faults.load(Ordering::Relaxed),
            refused_shard: self.refused_shard.load(Ordering::Relaxed),
            disk_full: self.disk_full.load(Ordering::Relaxed),
            replica_lag: self.replica_lag.load(Ordering::Relaxed),
            fenced: self.fenced.load(Ordering::Relaxed),
            // Wire-layer telemetry: the in-process server never sees a
            // socket, so these stay 0 until a WireServer folds in its own
            // accept/read accounting.
            shed_net: 0,
            torn: 0,
            idem_evicted: 0,
            unauthorized: 0,
            drained: self.drained.load(Ordering::Relaxed),
            repaired: ladder.served_repaired,
            quarantined: ladder.quarantined,
            dedup: ladder.dedup_suppressed,
            sampled_flat: ladder.sampled_flat,
            repaired_shards: ledger.repaired_shards(),
            scavenged: ledger.scavenged_records(),
            abandoned: ledger.abandoned_repairs(),
            unaccounted_shards: ledger.unaccounted_shards(),
        }
    }
}

/// Point-in-time outcome counts for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests served, indexed by [`Tier::index`].
    pub served_by_tier: [u64; 3],
    /// Requests refused because the user's budget was exhausted.
    pub refused_budget: u64,
    /// Requests whose deadline expired before sampling.
    pub expired: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests refused because the spend could not be journaled.
    pub journal_faults: u64,
    /// Requests refused because the shard owning the user's account is
    /// quarantined, scavenging, or failed (retryable once repaired).
    pub refused_shard: u64,
    /// Requests refused because the journal device is out of space
    /// (retryable; the budget is never charged).
    pub disk_full: u64,
    /// Requests refused because the warm standby had not acked within
    /// the replication lag bound, or no follower was registered
    /// (retryable; the spend may be journaled locally — over-counted
    /// at worst).
    pub replica_lag: u64,
    /// On a primary: requests refused because a promoted follower
    /// superseded this node. On a follower: stale-generation
    /// replication batches refused (folded in by the wire layer).
    pub fenced: u64,
    /// Idempotency-table entries evicted by the per-user cap or the TTL
    /// sweep (telemetry, not an outcome — excluded from
    /// [`Self::total`]; always 0 for an in-process [`Server`]).
    pub idem_evicted: u64,
    /// Wire exchanges refused `401 unauthorized` (bad or missing bearer
    /// token; they never became logical requests). Always 0 for an
    /// in-process [`Server`].
    pub unauthorized: u64,
    /// Connections shed at the wire layer before reaching the admission
    /// queue (accept-cap refusals, dropped accepts, malformed frames).
    /// Always 0 for an in-process [`Server`]; filled by the wire layer.
    pub shed_net: u64,
    /// Wire exchanges cut mid-frame: a request that arrived torn (no
    /// budget burned) or a response whose write was cut after the spend
    /// was journaled (retryable — the idempotency table replays the
    /// outcome). Always 0 for an in-process [`Server`].
    pub torn: u64,
    /// Requests that were still queued when shutdown began and were
    /// gated/served during the graceful drain (a subset of the terminal
    /// outcomes above — excluded from [`Self::total`]).
    pub drained: u64,
    /// Tier-0 serves that used at least one gate-repaired channel (a
    /// subset of `served_by_tier[0]`, not an extra outcome — excluded
    /// from [`Self::total`]).
    pub repaired: u64,
    /// Requests whose optimal descent was refused by a channel quarantine
    /// and served by a lower tier (a subset of the degraded serves —
    /// excluded from [`Self::total`]).
    pub quarantined: u64,
    /// Duplicate channel fills suppressed by the mechanism cache's
    /// single-flight discipline (concurrent misses of one node coalesced
    /// into a single LP solve — excluded from [`Self::total`]).
    pub dedup: u64,
    /// Tier-0 serves answered by the fused flattened-tree walk built at
    /// admission (a subset of `served_by_tier[0]` — excluded from
    /// [`Self::total`]).
    pub sampled_flat: u64,
    /// Ledger shards that completed a quarantine→repair→serving round
    /// trip (repair accounting, not an outcome — excluded from
    /// [`Self::total`]).
    pub repaired_shards: u64,
    /// Journal records (snapshot accounts + WAL records) salvaged by
    /// completed repairs (excluded from [`Self::total`]).
    pub scavenged: u64,
    /// Repair attempts that ended with the shard still refused
    /// (excluded from [`Self::total`]).
    pub abandoned: u64,
    /// Shards whose accounts are missing from the fleet-wide spend sums
    /// right now (quarantined/scavenging/failed — excluded from
    /// [`Self::total`]).
    pub unaccounted_shards: u64,
}

impl ServeReport {
    /// Requests served at any tier.
    pub fn served(&self) -> u64 {
        self.served_by_tier.iter().sum()
    }

    /// Every request that reached the server, whatever its outcome,
    /// plus wire-level exchanges that never became logical requests
    /// (`shed_net`, `torn`).
    pub fn total(&self) -> u64 {
        self.served()
            + self.refused_budget
            + self.expired
            + self.shed
            + self.journal_faults
            + self.refused_shard
            + self.disk_full
            + self.replica_lag
            + self.fenced
            + self.shed_net
            + self.torn
            + self.unauthorized
    }

    /// Stable single-line form for machine-scraped logs. The format is
    /// pinned by tests; extend it only by appending new `key=value`
    /// fields.
    pub fn log_line(&self) -> String {
        format!(
            "serve total={} served={} optimal={} per-level={} flat={} refused={} expired={} shed={} journal-fault={} repaired={} quarantined={} dedup={} sampled_flat={} shed_net={} torn={} drained={} refused_shard={} disk_full={} repaired_shards={} scavenged={} abandoned={} unaccounted_shards={} replica_lag={} fenced={} idem_evicted={} unauthorized={}",
            self.total(),
            self.served(),
            self.served_by_tier[0],
            self.served_by_tier[1],
            self.served_by_tier[2],
            self.refused_budget,
            self.expired,
            self.shed,
            self.journal_faults,
            self.repaired,
            self.quarantined,
            self.dedup,
            self.sampled_flat,
            self.shed_net,
            self.torn,
            self.drained,
            self.refused_shard,
            self.disk_full,
            self.repaired_shards,
            self.scavenged,
            self.abandoned,
            self.unaccounted_shards,
            self.replica_lag,
            self.fenced,
            self.idem_evicted,
            self.unauthorized,
        )
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} total, {} served",
            self.total(),
            self.served()
        )?;
        writeln!(
            f,
            "  tiers: optimal={} per-level-laplace={} flat-laplace={}",
            self.served_by_tier[0], self.served_by_tier[1], self.served_by_tier[2]
        )?;
        writeln!(
            f,
            "  refused: budget={} expired={} shed={} journal-fault={}",
            self.refused_budget, self.expired, self.shed, self.journal_faults
        )?;
        writeln!(
            f,
            "  certification: repaired={} quarantined={} dedup={} sampled_flat={}",
            self.repaired, self.quarantined, self.dedup, self.sampled_flat
        )?;
        writeln!(
            f,
            "  wire: shed_net={} torn={} drained={}",
            self.shed_net, self.torn, self.drained
        )?;
        writeln!(
            f,
            "  shards: refused_shard={} disk_full={} repaired_shards={} scavenged={} abandoned={} unaccounted={}",
            self.refused_shard,
            self.disk_full,
            self.repaired_shards,
            self.scavenged,
            self.abandoned,
            self.unaccounted_shards
        )?;
        write!(
            f,
            "  replica: replica_lag={} fenced={} idem_evicted={} unauthorized={}",
            self.replica_lag, self.fenced, self.idem_evicted, self.unauthorized
        )
    }
}

struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    accepting: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    queue_capacity: usize,
    not_empty: Condvar,
    mechanism: ResilientMechanism,
    // Internally sharded and internally locked: concurrent spends on
    // different shards proceed in parallel, including their fsyncs.
    ledger: ShardedLedger,
    eps_per_request: f64,
    clock: Arc<dyn Clock>,
    counters: ServeCounters,
}

/// The serving front-end. See the module docs for the request path.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("report", &self.report())
            .finish()
    }
}

impl Server {
    /// Start the worker pool. Each request spends the mechanism's full ε
    /// (`mechanism.msm().epsilon()`) from the submitting user's budget.
    /// Wrap a lone [`crate::SpendLedger`] with [`ShardedLedger::single`].
    pub fn start(
        mechanism: ResilientMechanism,
        ledger: ShardedLedger,
        clock: Arc<dyn Clock>,
        config: ServeConfig,
    ) -> Self {
        let eps_per_request = mechanism.msm().epsilon();
        // Flatten the admitted channels into the fused serving tree up
        // front (this also warms the channel cache). A failed build is
        // tolerated: workers then serve through the per-level cache path,
        // which produces the same bits at a higher per-request cost.
        let _ = mechanism.flatten();
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                accepting: true,
            }),
            queue_capacity: config.queue_capacity.max(1),
            not_empty: Condvar::new(),
            mechanism,
            ledger,
            eps_per_request,
            clock,
            counters: ServeCounters::default(),
        });
        let batch = config.batch.max(1);
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let seed = config.seed.wrapping_add(i as u64);
                std::thread::spawn(move || worker_loop(&shared, seed, batch))
            })
            .collect();
        Self { shared, workers }
    }

    /// Submit a request. On `Ok` the outcome arrives on the returned
    /// channel; on [`SubmitError::QueueFull`] the request was shed (and
    /// counted).
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::Closed`] once shutdown has begun.
    pub fn submit(&self, request: Request) -> Result<mpsc::Receiver<Response>, SubmitError> {
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if !queue.accepting {
            return Err(SubmitError::Closed);
        }
        if queue.jobs.len() >= self.shared.queue_capacity {
            drop(queue);
            self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull);
        }
        let (tx, rx) = mpsc::channel();
        queue.jobs.push_back(Job { request, reply: tx });
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(rx)
    }

    /// Counters so far.
    pub fn report(&self) -> ServeReport {
        self.shared.counters.snapshot(
            &self.shared.mechanism.degradation_report(),
            &self.shared.ledger,
        )
    }

    /// Degradation counters of the underlying ladder.
    pub fn degradation_report(&self) -> geoind_core::DegradationReport {
        self.shared.mechanism.degradation_report()
    }

    /// Total ε spent across all users this epoch (healthy shards).
    pub fn ledger_total_spent(&self) -> f64 {
        self.shared.ledger.total_spent()
    }

    /// Number of users with recorded spend this epoch (healthy shards).
    pub fn ledger_users(&self) -> usize {
        self.shared.ledger.users()
    }

    /// Ledger shards that failed recovery and are refusing their users
    /// fail-closed (empty when every shard is healthy).
    pub fn failed_shards(&self) -> Vec<(usize, String)> {
        self.shared.ledger.failed_shards()
    }

    /// The sharded ledger behind this server — health, repair triggers,
    /// and counters for the wire layer's `/healthz` and `/repair`.
    pub fn ledger(&self) -> &ShardedLedger {
        &self.shared.ledger
    }

    /// Stop accepting requests, drain the backlog, checkpoint the ledger,
    /// and return the final accounting. (A checkpoint failure is reported,
    /// not fatal: every served spend is already durable in the WAL.)
    pub fn shutdown(mut self) -> ShutdownOutcome {
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            queue.accepting = false;
        }
        self.shared.not_empty.notify_all();
        for handle in self.workers.drain(..) {
            // A panicked worker must not hide the remaining drain.
            let _ = handle.join();
        }
        // Settle in-flight shard repairs before the final checkpoint so
        // the report reflects resolved slots, not a mid-scavenge state.
        self.shared.ledger.await_repairs();
        let checkpoint = self.shared.ledger.checkpoint_all();
        let degradation = self.shared.mechanism.degradation_report();
        ShutdownOutcome {
            report: self
                .shared
                .counters
                .snapshot(&degradation, &self.shared.ledger),
            degradation,
            checkpoint,
        }
    }
}

/// What a graceful [`Server::shutdown`] drain left behind.
#[derive(Debug)]
pub struct ShutdownOutcome {
    /// Final per-outcome counters (post-drain).
    pub report: ServeReport,
    /// The degradation ladder's per-tier accounting (post-drain).
    pub degradation: geoind_core::DegradationReport,
    /// Outcome of the final ledger checkpoint.
    pub checkpoint: Result<(), crate::journal::JournalError>,
}

fn worker_loop(shared: &Shared, seed: u64, batch: usize) {
    let mut rng = SeededRng::from_seed(seed);
    loop {
        let jobs: Vec<Job> = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !queue.jobs.is_empty() {
                    let take = batch.min(queue.jobs.len());
                    if !queue.accepting {
                        // Popped after shutdown began: these are the
                        // graceful drain, counted so the final report can
                        // attest the backlog was served, not dropped.
                        shared
                            .counters
                            .drained
                            .fetch_add(take as u64, Ordering::Relaxed);
                    }
                    break queue.jobs.drain(..take).collect();
                }
                if !queue.accepting {
                    return;
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        handle_batch(shared, jobs, &mut rng);
    }
}

/// Run the non-sampling gates for one request: `Some` is a terminal
/// refusal, `None` admits the request to sampling. Neither gate consumes
/// randomness, which is what lets a batch gate everything up front and
/// still produce the same RNG stream as strictly sequential handling.
fn gate(shared: &Shared, request: &Request) -> Option<Response> {
    // Deadline gate before anything else: an expired request must not
    // consume budget or sample noise.
    if let Some(deadline) = request.deadline_nanos {
        if shared.clock.now_nanos() > deadline {
            shared.counters.expired.fetch_add(1, Ordering::Relaxed);
            return Some(Response::Expired);
        }
    }
    // Budget gate: durable spend before sampling. Only the user's shard
    // is locked, so spends on other shards (and their fsyncs) proceed in
    // parallel with this one.
    match shared
        .ledger
        .try_spend(request.user, shared.eps_per_request)
    {
        Ok(()) => None,
        Err(SpendError::Exhausted { remaining, .. }) => {
            shared
                .counters
                .refused_budget
                .fetch_add(1, Ordering::Relaxed);
            Some(Response::BudgetExhausted { remaining })
        }
        Err(SpendError::ShardUnavailable { shard, .. }) => {
            // Fail-closed like a journal fault, but typed and retryable:
            // the shard may be mid-repair, and its users should retry,
            // not give up.
            shared
                .counters
                .refused_shard
                .fetch_add(1, Ordering::Relaxed);
            Some(Response::ShardUnavailable { shard })
        }
        Err(SpendError::Journal(crate::journal::JournalError::DiskFull { .. })) => {
            // Full disk: the spend was never journaled, so nothing was
            // charged; the caller may retry once space frees up.
            shared.counters.disk_full.fetch_add(1, Ordering::Relaxed);
            Some(Response::DiskFull)
        }
        Err(SpendError::ReplicaLag { lag }) => {
            // The standby is behind (or absent): fail-closed, retryable.
            // The spend may be journaled locally but is NOT served —
            // over-counted at worst, never under.
            shared.counters.replica_lag.fetch_add(1, Ordering::Relaxed);
            Some(Response::ReplicaLag { lag })
        }
        Err(SpendError::Fenced) => {
            // Superseded by a promoted follower: refuse everything so
            // the split brain cannot double-spend.
            shared.counters.fenced.fetch_add(1, Ordering::Relaxed);
            Some(Response::Fenced)
        }
        Err(err @ (SpendError::Journal(_) | SpendError::BadCharge(_))) => {
            // Any other journal fault is fail-closed: no durable spend
            // record, so no serve.
            shared
                .counters
                .journal_faults
                .fetch_add(1, Ordering::Relaxed);
            Some(Response::JournalFault(err.to_string()))
        }
    }
}

/// Serve a drained batch: gate every job in pop order, then sample all
/// admitted points through one [`ResilientMechanism::report_many`] call
/// (one fused-tree resolution for the whole batch). A batch of one is
/// bit-identical to the pre-batching single-request path.
fn handle_batch(shared: &Shared, jobs: Vec<Job>, rng: &mut SeededRng) {
    let gated: Vec<(Job, Option<Response>)> = jobs
        .into_iter()
        .map(|job| {
            let outcome = gate(shared, &job.request);
            (job, outcome)
        })
        .collect();
    let points: Vec<Point> = gated
        .iter()
        .filter(|(_, outcome)| outcome.is_none())
        .map(|(job, _)| job.request.point)
        .collect();
    let mut served = shared.mechanism.report_many(&points, rng).into_iter();
    for (job, outcome) in gated {
        let response = outcome.unwrap_or_else(|| {
            let (point, tier) = served.next().expect("one sample per admitted request");
            shared.counters.served_by_tier[tier.index()].fetch_add(1, Ordering::Relaxed);
            Response::Served { point, tier }
        });
        // The submitter may have dropped the receiver; the outcome is
        // still counted above.
        let _ = job.reply.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{LedgerConfig, SpendLedger};
    use geoind_core::alloc::AllocationStrategy;
    use geoind_core::msm::MsmMechanism;
    use geoind_data::prior::GridPrior;
    use geoind_spatial::geom::BBox;
    use geoind_testkit::clock::ManualClock;
    use std::fs;
    use std::path::PathBuf;
    use std::time::Duration;

    const EPS: f64 = 0.8;

    fn mechanism() -> ResilientMechanism {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        ResilientMechanism::from_builder(
            MsmMechanism::builder(domain, prior)
                .epsilon(EPS)
                .granularity(2)
                .strategy(AllocationStrategy::FixedHeight(2)),
        )
        .expect("build mechanism")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "geoind-server-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ledger(dir: &std::path::Path, cap: f64) -> ShardedLedger {
        ShardedLedger::single(
            SpendLedger::open(
                dir,
                LedgerConfig {
                    cap_per_user: cap,
                    epoch: 0,
                    compact_after: 0,
                },
            )
            .expect("open ledger"),
        )
    }

    fn request(user: u64) -> Request {
        Request {
            user,
            point: Point::new(1.0, 1.0),
            deadline_nanos: None,
        }
    }

    #[test]
    fn serves_within_budget_then_refuses_typed() {
        let dir = temp_dir("budget");
        // Cap fits exactly two requests at ε = EPS each.
        let server = Server::start(
            mechanism(),
            ledger(&dir, 2.0 * EPS),
            Arc::new(ManualClock::new(0)),
            ServeConfig {
                workers: 2,
                queue_capacity: 16,
                seed: 42,
                batch: 1,
            },
        );
        let receivers: Vec<_> = (0..3)
            .map(|_| server.submit(request(7)).expect("submit"))
            .collect();
        let mut served = 0;
        let mut refused = 0;
        for rx in receivers {
            match rx.recv().expect("response") {
                Response::Served { .. } => served += 1,
                Response::BudgetExhausted { remaining } => {
                    assert!(remaining < EPS);
                    refused += 1;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!((served, refused), (2, 1));
        let outcome = server.shutdown();
        outcome.checkpoint.expect("checkpoint");
        let report = outcome.report;
        assert_eq!(report.served(), 2);
        assert_eq!(report.refused_budget, 1);
        assert_eq!(report.total(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_requests_spend_nothing() {
        let dir = temp_dir("deadline");
        let clock = Arc::new(ManualClock::new(1_000));
        let server = Server::start(
            mechanism(),
            ledger(&dir, 10.0),
            clock,
            ServeConfig {
                workers: 1,
                queue_capacity: 16,
                seed: 1,
                batch: 1,
            },
        );
        let rx = server
            .submit(Request {
                deadline_nanos: Some(999), // already past
                ..request(1)
            })
            .expect("submit");
        assert!(matches!(rx.recv().expect("response"), Response::Expired));
        let rx = server
            .submit(Request {
                deadline_nanos: Some(2_000), // still live
                ..request(1)
            })
            .expect("submit");
        assert!(matches!(
            rx.recv().expect("response"),
            Response::Served { .. }
        ));
        assert!((server.ledger_total_spent() - EPS).abs() < 1e-12);
        let outcome = server.shutdown();
        outcome.checkpoint.expect("checkpoint");
        let report = outcome.report;
        assert_eq!(report.expired, 1);
        assert_eq!(report.served(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_queue_sheds_and_counts() {
        let dir = temp_dir("shed");
        let server = Server::start(
            mechanism(),
            ledger(&dir, 100.0),
            Arc::new(ManualClock::new(0)),
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                seed: 3,
                batch: 1,
            },
        );
        // Stall the single worker by holding the shard lock of user 1, so
        // queued jobs cannot drain while we overfill the queue.
        let guard = server.shared.ledger.lock_shard(1);
        let rx_a = server.submit(request(1)).expect("admit A");
        // Wait until the worker has popped A and is blocked on the ledger,
        // leaving the queue empty again.
        for _ in 0..500 {
            if server
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .jobs
                .is_empty()
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let rx_b = server.submit(request(2)).expect("admit B fills the queue");
        let shed = server.submit(request(3));
        assert_eq!(shed.expect_err("C must shed"), SubmitError::QueueFull);
        drop(guard);
        assert!(matches!(rx_a.recv().expect("A"), Response::Served { .. }));
        assert!(matches!(rx_b.recv().expect("B"), Response::Served { .. }));
        let outcome = server.shutdown();
        outcome.checkpoint.expect("checkpoint");
        let report = outcome.report;
        assert_eq!(report.shed, 1);
        assert_eq!(report.served(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_drains_backlog_and_checkpoints() {
        let dir = temp_dir("drain");
        let server = Server::start(
            mechanism(),
            ledger(&dir, 1000.0),
            Arc::new(ManualClock::new(0)),
            ServeConfig {
                workers: 3,
                queue_capacity: 64,
                seed: 9,
                batch: 1,
            },
        );
        let receivers: Vec<_> = (0..40)
            .map(|i| server.submit(request(i % 5)).expect("submit"))
            .collect();
        let outcome = server.shutdown();
        outcome.checkpoint.expect("checkpoint");
        let report = outcome.report;
        // Graceful drain: every accepted request got a terminal response.
        for rx in receivers {
            assert!(matches!(
                rx.recv().expect("drained"),
                Response::Served { .. }
            ));
        }
        assert_eq!(report.served(), 40);
        assert_eq!(report.total(), 40);
        // The ladder saw exactly the served requests, none degraded.
        assert_eq!(outcome.degradation.total(), 40);
        assert_eq!(outcome.degradation.degraded(), 0);
        // Ledger state survives the checkpoint.
        let reopened = ledger(&dir, 1000.0);
        assert!((reopened.total_spent() - 40.0 * EPS).abs() < 1e-9);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_draining_is_bit_identical_to_single_request_serving() {
        // One worker, same seed: whatever batch size the worker drains
        // with, the gates consume no randomness and report_many walks the
        // admitted points in pop order, so the served points must match
        // bit for bit.
        let serve = |batch: usize| -> Vec<Point> {
            let dir = temp_dir(&format!("batch-bits-{batch}"));
            let server = Server::start(
                mechanism(),
                ledger(&dir, 1000.0),
                Arc::new(ManualClock::new(0)),
                ServeConfig {
                    workers: 1,
                    queue_capacity: 64,
                    seed: 77,
                    batch,
                },
            );
            let receivers: Vec<_> = (0..24)
                .map(|i| {
                    server
                        .submit(Request {
                            user: i % 5,
                            point: Point::new((i % 8) as f64 + 0.3, (i % 7) as f64 + 0.6),
                            deadline_nanos: None,
                        })
                        .expect("submit")
                })
                .collect();
            let points = receivers
                .into_iter()
                .map(|rx| match rx.recv().expect("response") {
                    Response::Served { point, tier } => {
                        assert_eq!(tier, Tier::Optimal);
                        point
                    }
                    other => panic!("unexpected response {other:?}"),
                })
                .collect();
            server.shutdown().checkpoint.expect("checkpoint");
            fs::remove_dir_all(&dir).ok();
            points
        };
        let single = serve(1);
        for batch in [2, 8, 64] {
            let batched = serve(batch);
            assert_eq!(single.len(), batched.len());
            for (a, b) in single.iter().zip(&batched) {
                assert_eq!(a.x.to_bits(), b.x.to_bits(), "batch={batch}");
                assert_eq!(a.y.to_bits(), b.y.to_bits(), "batch={batch}");
            }
        }
    }

    #[test]
    fn batched_counters_account_for_mixed_outcomes() {
        // A batch that mixes served, budget-refused, and expired requests
        // must account for every element exactly once, and every tier-0
        // serve must have come from the fused flattened walk installed at
        // Server::start.
        let dir = temp_dir("batch-mixed");
        // Cap fits exactly three requests per user at EPS each.
        let server = Server::start(
            mechanism(),
            ledger(&dir, 3.0 * EPS),
            Arc::new(ManualClock::new(1_000)),
            ServeConfig {
                workers: 1,
                queue_capacity: 64,
                seed: 5,
                batch: 16,
            },
        );
        let mut receivers = Vec::new();
        for i in 0..5u64 {
            receivers.push(
                server
                    .submit(Request {
                        user: 1,
                        point: Point::new((i % 8) as f64, 2.0),
                        // Every third request is already expired.
                        deadline_nanos: if i % 3 == 2 { Some(999) } else { None },
                    })
                    .expect("submit"),
            );
        }
        let mut served = 0;
        let mut refused = 0;
        let mut expired = 0;
        for rx in receivers {
            match rx.recv().expect("response") {
                Response::Served { .. } => served += 1,
                Response::BudgetExhausted { .. } => refused += 1,
                Response::Expired => expired += 1,
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!((served, refused, expired), (3, 1, 1));
        let outcome = server.shutdown();
        outcome.checkpoint.expect("checkpoint");
        let report = outcome.report;
        assert_eq!(report.served_by_tier, [3, 0, 0]);
        assert_eq!(report.refused_budget, 1);
        assert_eq!(report.expired, 1);
        assert_eq!(report.total(), 5);
        assert_eq!(
            report.sampled_flat, 3,
            "every tier-0 serve must use the fused walk"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_report_log_line_format_is_pinned() {
        let report = ServeReport {
            served_by_tier: [40, 2, 1],
            refused_budget: 5,
            expired: 3,
            shed: 2,
            journal_faults: 1,
            refused_shard: 7,
            disk_full: 2,
            replica_lag: 2,
            fenced: 1,
            idem_evicted: 5,
            unauthorized: 3,
            shed_net: 2,
            torn: 1,
            drained: 3,
            repaired: 4,
            quarantined: 1,
            dedup: 6,
            sampled_flat: 40,
            repaired_shards: 1,
            scavenged: 9,
            abandoned: 1,
            unaccounted_shards: 1,
        };
        assert_eq!(
            report.log_line(),
            "serve total=72 served=43 optimal=40 per-level=2 flat=1 refused=5 expired=3 shed=2 journal-fault=1 repaired=4 quarantined=1 dedup=6 sampled_flat=40 shed_net=2 torn=1 drained=3 refused_shard=7 disk_full=2 repaired_shards=1 scavenged=9 abandoned=1 unaccounted_shards=1 replica_lag=2 fenced=1 idem_evicted=5 unauthorized=3"
        );
        let display = report.to_string();
        assert!(display.contains("72 total"), "{display}");
        assert!(display.contains("journal-fault=1"), "{display}");
        assert!(display.contains("shed_net=2 torn=1 drained=3"), "{display}");
        assert!(
            display.contains("refused_shard=7 disk_full=2 repaired_shards=1"),
            "{display}"
        );
        assert!(
            display.contains("replica_lag=2 fenced=1 idem_evicted=5 unauthorized=3"),
            "{display}"
        );
    }

    #[test]
    fn drain_counter_attests_the_backlog_popped_after_shutdown() {
        // One stalled worker, a backlog, then shutdown: every job still
        // queued when admission closed must be counted as drained (and
        // still served).
        let dir = temp_dir("drain-count");
        let server = Server::start(
            mechanism(),
            ledger(&dir, 1000.0),
            Arc::new(ManualClock::new(0)),
            ServeConfig {
                workers: 1,
                queue_capacity: 64,
                seed: 11,
                batch: 4,
            },
        );
        // A holder thread pins the shard lock of user 1 (stalling the
        // worker), and releases it only after shutdown has closed
        // admission — so most of the backlog is popped during the drain.
        use std::sync::atomic::AtomicBool;
        let shared = Arc::clone(&server.shared);
        let locked = AtomicBool::new(false);
        let release = AtomicBool::new(false);
        let outcome = std::thread::scope(|s| {
            let holder = s.spawn(|| {
                let guard = shared.ledger.lock_shard(1);
                locked.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                drop(guard);
            });
            while !locked.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            let receivers: Vec<_> = (0..9)
                .map(|_| server.submit(request(1)).expect("submit"))
                .collect();
            let releaser = s.spawn(|| {
                std::thread::sleep(Duration::from_millis(50));
                release.store(true, Ordering::SeqCst);
            });
            let outcome = server.shutdown();
            holder.join().expect("holder thread");
            releaser.join().expect("releaser thread");
            (outcome, receivers)
        });
        let (outcome, receivers) = outcome;
        outcome.checkpoint.expect("checkpoint");
        for rx in receivers {
            assert!(matches!(
                rx.recv().expect("drained"),
                Response::Served { .. }
            ));
        }
        assert_eq!(outcome.report.served(), 9);
        // The first batch (up to 4 jobs) may have been popped before
        // admission closed; everything popped after must be attested.
        assert!(
            outcome.report.drained >= 5,
            "drained={} of 9 backlogged jobs",
            outcome.report.drained
        );
    }
}
