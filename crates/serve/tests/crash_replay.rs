//! Deterministic crash-replay suite for the spend journal.
//!
//! For every `serve.*` failpoint site, a workload is driven with a fault
//! forced at that site, the process "crashes" (the ledger is dropped
//! without a checkpoint), and recovery must uphold the fail-closed
//! invariant: **recovered spend ≥ spend of requests actually served**,
//! per user. A faulted request is always refused, never served — so a
//! crash can waste budget, but can never mint it back.
//!
//! Arming is thread-scoped ([`Session`]) so these tests run concurrently;
//! the process-restart version of the same sweep lives in
//! `journal_env.rs` and is driven by `scripts/ci.sh` via
//! `GEOIND_FAILPOINTS`.

use geoind_serve::journal::{Journal, JournalError};
use geoind_serve::ledger::{LedgerConfig, SpendError, SpendLedger};
use geoind_testkit::failpoint::{FailSpec, Session};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const EPS: f64 = 0.4;
const USERS: u64 = 5;
const REQUESTS: u64 = 40;

/// The journal's failpoint sites, as swept by this suite. The drift guard
/// in `tests/failpoint_drift.rs` keeps this aligned with the canonical
/// [`geoind_testkit::failpoint::SITES`] list.
const JOURNAL_SITES: &[&str] = &[
    "serve.journal.append",
    "serve.journal.torn",
    "serve.journal.flush",
    "serve.journal.enospc",
    "serve.journal.eio",
    "serve.snapshot.write",
    "serve.snapshot.commit",
    "serve.snapshot.enospc",
    "serve.wal.reset",
];

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "geoind-crashreplay-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(cap: f64, compact_after: u64) -> LedgerConfig {
    LedgerConfig {
        cap_per_user: cap,
        epoch: 0,
        compact_after,
    }
}

/// Drive `REQUESTS` spends round-robin over `USERS` users with `site`
/// armed, then crash (drop without close). Returns per-user ε of the
/// requests that were actually acknowledged (served).
fn drive_and_crash(
    dir: &std::path::Path,
    site: &str,
    spec: FailSpec,
    compact_after: u64,
) -> BTreeMap<u64, f64> {
    let mut ledger = SpendLedger::open(dir, config(100.0, compact_after)).expect("open");
    let mut fp = Session::new();
    fp.arm(site, spec);
    let mut served: BTreeMap<u64, f64> = BTreeMap::new();
    let mut refused = 0u64;
    for i in 0..REQUESTS {
        let user = i % USERS;
        match ledger.try_spend(user, EPS) {
            Ok(()) => *served.entry(user).or_insert(0.0) += EPS,
            Err(SpendError::Journal(_)) => refused += 1,
            Err(other) => panic!("unexpected refusal under {site}: {other:?}"),
        }
    }
    // Append-path faults must refuse at least once. Snapshot faults are
    // absorbed (the spends were already durable) — except `serve.wal.reset`,
    // which the next append retries as its self-heal and so may surface.
    if site.starts_with("serve.journal.") {
        assert!(refused > 0, "{site}: append fault never refused a request");
    } else if site != "serve.wal.reset" {
        assert_eq!(refused, 0, "{site}: snapshot fault leaked into a refusal");
    }
    drop(fp);
    drop(ledger); // crash: no checkpoint
    served
}

#[test]
fn every_journal_site_recovers_at_least_the_served_spend() {
    for &site in JOURNAL_SITES {
        // Sweep a few fault positions: first hit, mid-workload, and a
        // repeating burst.
        for spec in [
            FailSpec::after(0, 1),
            FailSpec::after(7, 1),
            FailSpec::times(3),
        ] {
            let dir = temp_dir("sweep");
            // compact_after=4 forces snapshots (and their failpoints) to
            // fire mid-workload.
            let served = drive_and_crash(&dir, site, spec, 4);
            let recovered = SpendLedger::open(&dir, config(100.0, 4)).expect("recover");
            for user in 0..USERS {
                let s = served.get(&user).copied().unwrap_or(0.0);
                let r = recovered.spent(user);
                // The invariant: recovery may over-count (a journaled
                // record whose response never went out) but never
                // under-count.
                assert!(
                    r >= s - 1e-9,
                    "{site} {spec:?}: user {user} recovered {r} < served {s}"
                );
                // In-process injection repairs the tail before the crash,
                // so here recovery is in fact exact.
                assert!(
                    (r - s).abs() < 1e-9,
                    "{site} {spec:?}: user {user} recovered {r} != served {s}"
                );
            }
            fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn exhausted_user_stays_refused_after_faulted_crash() {
    let dir = temp_dir("exhausted");
    let cap = 2.0 * EPS;
    let mut ledger = SpendLedger::open(&dir, config(cap, 0)).expect("open");
    let mut fp = Session::new();
    // Fault the second append: the user pays for requests 1 and 3, the
    // faulted request 2 is refused and spends nothing.
    fp.arm("serve.journal.flush", FailSpec::after(1, 1));
    assert!(ledger.try_spend(1, EPS).is_ok());
    assert!(matches!(
        ledger.try_spend(1, EPS),
        Err(SpendError::Journal(JournalError::Injected(_)))
    ));
    assert!(ledger.try_spend(1, EPS).is_ok());
    assert!(matches!(
        ledger.try_spend(1, EPS),
        Err(SpendError::Exhausted { .. })
    ));
    drop(fp);
    drop(ledger); // crash
    let mut recovered = SpendLedger::open(&dir, config(cap, 0)).expect("recover");
    assert!((recovered.spent(1) - cap).abs() < 1e-9);
    assert!(
        matches!(
            recovered.try_spend(1, EPS),
            Err(SpendError::Exhausted { .. })
        ),
        "an exhausted user must stay exhausted across a restart"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_between_snapshot_commit_and_wal_reset_never_double_counts() {
    let dir = temp_dir("stalewal");
    let (mut journal, _) = Journal::open(&dir, 0).expect("open");
    journal.append(3, EPS).expect("append");
    journal.append(3, EPS).expect("append");
    let state = BTreeMap::from([(3u64, 2.0 * EPS)]);
    let mut fp = Session::new();
    // The snapshot rename (commit point) succeeds; the fresh-WAL swap is
    // where the "crash" lands, leaving a stale-generation WAL behind.
    fp.arm("serve.wal.reset", FailSpec::always());
    let err = journal.snapshot(&state).expect_err("reset must fault");
    assert!(matches!(err, JournalError::Injected("serve.wal.reset")));
    drop(fp);
    drop(journal); // crash
    let (_, recovered) = Journal::open(&dir, 0).expect("recover");
    // The stale WAL's two records are already folded into the snapshot;
    // replaying them too would double-charge the user.
    assert!(
        (recovered.spent[&3] - 2.0 * EPS).abs() < 1e-9,
        "stale WAL replayed on top of its own fold: {recovered:?}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_reset_fault_self_heals_on_the_next_append() {
    let dir = temp_dir("selfheal");
    let mut cfg = config(100.0, 3);
    let mut ledger = SpendLedger::open(&dir, cfg).expect("open");
    let mut fp = Session::new();
    fp.arm("serve.wal.reset", FailSpec::after(0, 1));
    for _ in 0..9 {
        // The 3rd spend triggers compaction whose WAL swap faults once;
        // the spend itself is durable, later appends self-heal the swap.
        ledger.try_spend(2, EPS).expect("spend");
    }
    assert!(ledger.last_compaction_fault().is_some());
    drop(fp);
    drop(ledger); // crash
    cfg.compact_after = 0;
    let recovered = SpendLedger::open(&dir, cfg).expect("recover");
    assert!(
        (recovered.spent(2) - 9.0 * EPS).abs() < 1e-9,
        "self-healed WAL lost or double-counted: spent {}",
        recovered.spent(2)
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_during_epoch_advance_open_never_leaks_old_spend() {
    let dir = temp_dir("epochfault");
    let mut ledger = SpendLedger::open(&dir, config(100.0, 0)).expect("open");
    for _ in 0..4 {
        ledger.try_spend(8, EPS).expect("spend");
    }
    drop(ledger); // crash in epoch 0
                  // The epoch-1 open commits a budget-reset snapshot before returning;
                  // fault that commit, as a crash mid-advance would.
    let mut fp = Session::new();
    fp.arm("serve.snapshot.commit", FailSpec::after(0, 1));
    let mut cfg = config(100.0, 0);
    cfg.epoch = 1;
    let err = SpendLedger::open(&dir, cfg).expect_err("advance must fault");
    assert!(matches!(
        err,
        JournalError::Injected("serve.snapshot.commit")
    ));
    drop(fp);
    // Retry in epoch 1: budgets renew, nothing from epoch 0 leaks in.
    let recovered = SpendLedger::open(&dir, cfg).expect("retry open");
    assert_eq!(recovered.users(), 0, "epoch-0 spend leaked: {recovered:?}");
    // And the old epoch can no longer be opened (regression refused).
    let err = SpendLedger::open(&dir, config(100.0, 0)).expect_err("regression");
    assert!(matches!(err, JournalError::EpochRegression { .. }));
    fs::remove_dir_all(&dir).ok();
}

/// Sharded variant of the crash sweep: one shard's journal is damaged
/// beyond recovery while an append fault is also in play. The damaged
/// shard must refuse its users fail-closed; every *healthy* shard must
/// recover exactly what it served — and only what **it** served, never a
/// record that belongs to another shard (no cross-shard double-count).
#[test]
fn sharded_crash_refuses_damaged_shard_and_recovers_the_rest_exactly() {
    use geoind_serve::shard::{shard_of, ShardedLedger};

    const SHARDS: usize = 4;
    const DAMAGED: usize = 1;
    // Crash one shard mid-append at three fault positions: first hit,
    // mid-workload, and a repeating burst.
    for spec in [
        FailSpec::after(0, 1),
        FailSpec::after(7, 1),
        FailSpec::times(3),
    ] {
        let dir = temp_dir("sharded");
        // Phase 1 (clean): put committed, snapshotted spend on every
        // shard so the damage in phase 3 hits a checksummed region.
        let mut served: BTreeMap<u64, f64> = BTreeMap::new();
        {
            let ledger = ShardedLedger::open(&dir, config(100.0, 0), SHARDS);
            for k in 0..SHARDS {
                let user = (0..64)
                    .find(|&u| shard_of(u, SHARDS) == k)
                    .expect("a user per shard");
                ledger.try_spend(user, EPS).expect("clean spend");
                *served.entry(user).or_insert(0.0) += EPS;
            }
            ledger.checkpoint_all().expect("checkpoint");
        }
        // Phase 2 (faulted): more spends with the append site armed;
        // the session is thread-scoped and try_spend runs right here,
        // so the fault lands inside whichever shard the user routes to.
        let mut refused = 0u64;
        {
            let ledger = ShardedLedger::open(&dir, config(100.0, 0), SHARDS);
            let mut fp = Session::new();
            fp.arm("serve.journal.append", spec);
            for i in 0..REQUESTS {
                let user = i % USERS;
                match ledger.try_spend(user, EPS) {
                    Ok(()) => *served.entry(user).or_insert(0.0) += EPS,
                    Err(SpendError::Journal(_)) => refused += 1,
                    Err(other) => panic!("unexpected refusal: {other:?}"),
                }
            }
            drop(fp);
            // Crash: dropped without checkpoint.
        }
        assert!(refused > 0, "{spec:?}: append fault never refused");

        // Phase 3: damage the snapshot of one shard (a committed,
        // checksummed region — not a recoverable torn tail).
        let snap = dir.join(format!("shard-{DAMAGED}")).join("ledger.snap");
        let mut bytes = fs::read(&snap).expect("read snap");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&snap, &bytes).expect("write damaged snap");

        let recovered = ShardedLedger::open(&dir, config(100.0, 0), SHARDS);
        let failed = recovered.failed_shards();
        assert_eq!(failed.len(), 1, "{spec:?}: exactly one shard damaged");
        assert_eq!(failed[0].0, DAMAGED);

        let mut healthy_expected = 0.0;
        for (&user, &spend) in &served {
            if shard_of(user, SHARDS) == DAMAGED {
                // Fail-closed: without the shard's record the user's
                // position is unknown — refuse, never serve.
                match recovered.try_spend(user, EPS) {
                    Err(SpendError::ShardUnavailable { shard, .. }) => {
                        assert_eq!(shard, DAMAGED as u64);
                    }
                    other => panic!("{spec:?}: damaged shard answered {other:?}"),
                }
            } else {
                // Healthy shards recover exactly what they served: the
                // in-process fault repairs the tail before the crash, and
                // no record from another shard can leak in.
                let r = recovered.spent(user).expect("healthy shard serves");
                assert!(
                    (r - spend).abs() < 1e-9,
                    "{spec:?}: user {user} recovered {r}, served {spend}"
                );
                healthy_expected += spend;
            }
        }
        assert!(
            (recovered.total_spent() - healthy_expected).abs() < 1e-9,
            "{spec:?}: cross-shard double-count"
        );
        fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Scavenge matrix: each damage class × whether salvage succeeds or abandons.
// The invariant under test throughout: after quarantine → scavenge →
// re-admission, recovered spend ≥ served spend, and nothing is charged twice.
// ---------------------------------------------------------------------------

mod scavenge_matrix {
    use super::*;
    use geoind_serve::journal::{scavenge, ScavengeReport};
    use geoind_serve::shard::{RepairMode, ShardHealth, ShardedLedger};

    /// A corrupt committed snapshot is *unsalvageable by design*: without
    /// a trusted base the scavenge cannot bound what was served, so it
    /// abandons with the typed corruption reason rather than guessing.
    #[test]
    fn corrupt_snapshot_abandons_with_typed_reason() {
        let dir = temp_dir("sc-snapcorrupt");
        let mut ledger = SpendLedger::open(&dir, config(100.0, 0)).expect("open");
        for _ in 0..3 {
            ledger.try_spend(4, EPS).expect("spend");
        }
        ledger.checkpoint().expect("checkpoint");
        drop(ledger); // crash
        let snap = dir.join("ledger.snap");
        let mut bytes = fs::read(&snap).expect("read snap");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&snap, &bytes).expect("damage snap");
        let err = scavenge(&dir, 0).expect_err("corrupt base must abandon");
        assert!(
            matches!(err, JournalError::Corrupt { .. }),
            "want typed Corrupt, got {err:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    /// A torn WAL tail (write cut mid-record) salvages every complete
    /// checksummed record and truncates the partial one away — then the
    /// *standard* open verifies the committed salvage with no
    /// double-count.
    #[test]
    fn torn_wal_tail_salvages_complete_records_exactly() {
        let dir = temp_dir("sc-torntail");
        let mut ledger = SpendLedger::open(&dir, config(100.0, 0)).expect("open");
        for _ in 0..5 {
            ledger.try_spend(9, EPS).expect("spend");
        }
        drop(ledger); // crash with 5 records in the WAL
        let wal = dir.join("ledger.wal");
        let len = fs::metadata(&wal).expect("stat wal").len();
        // Cut the 5th record mid-write: 13 of its 32 bytes survive.
        fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .and_then(|f| f.set_len(len - 19))
            .expect("tear tail");
        let report: ScavengeReport = scavenge(&dir, 0).expect("salvage");
        assert_eq!(report.wal_records, 4, "complete records salvaged");
        assert_eq!(report.ambiguous_records, 0, "trusted header, in-seq");
        assert!((report.salvaged[&9] - 4.0 * EPS).abs() < 1e-9);
        // Standard open over the committed salvage: exact, no replay of
        // the salvaged records on top of their own fold.
        let recovered = SpendLedger::open(&dir, config(100.0, 0)).expect("verify open");
        assert!(
            (recovered.spent(9) - 4.0 * EPS).abs() < 1e-9,
            "double-charge or loss after salvage: {}",
            recovered.spent(9)
        );
        fs::remove_dir_all(&dir).ok();
    }

    /// A stale-generation WAL (crash between snapshot rename and WAL
    /// swap) is the one case where *discarding* records is provably safe:
    /// the later-generation snapshot already folded them in. Applying
    /// them anyway would double-charge.
    #[test]
    fn stale_generation_wal_is_discarded_not_replayed() {
        let dir = temp_dir("sc-stalegen");
        let (mut journal, _) = Journal::open(&dir, 0).expect("open");
        journal.append(3, EPS).expect("append");
        journal.append(3, EPS).expect("append");
        let old_wal = fs::read(dir.join("ledger.wal")).expect("save old wal");
        let state = BTreeMap::from([(3u64, 2.0 * EPS)]);
        journal.snapshot(&state).expect("snapshot");
        drop(journal);
        // Re-plant the pre-snapshot WAL: its header generation now trails
        // the snapshot's — exactly what a crash between the two atomic
        // steps leaves behind.
        fs::write(dir.join("ledger.wal"), &old_wal).expect("replant stale wal");
        let report = scavenge(&dir, 0).expect("salvage");
        assert!(report.stale_wal_discarded, "stale WAL must be recognized");
        assert_eq!(report.wal_records, 0, "stale records must not be applied");
        assert!(
            (report.salvaged[&3] - 2.0 * EPS).abs() < 1e-9,
            "snapshot base double-counted: {:?}",
            report.salvaged
        );
        let recovered = SpendLedger::open(&dir, config(100.0, 0)).expect("verify open");
        assert!((recovered.spent(3) - 2.0 * EPS).abs() < 1e-9);
        fs::remove_dir_all(&dir).ok();
    }

    /// A WAL whose header is corrupted but whose records verify is the
    /// ambiguity case: the records *might* already be folded into the
    /// snapshot, so scavenge applies them anyway — over-counting is the
    /// safe direction (recovered ≥ served stays provable), under-counting
    /// would void the privacy guarantee.
    #[test]
    fn untrusted_wal_header_resolves_ambiguity_upward() {
        let dir = temp_dir("sc-ambiguous");
        let mut ledger = SpendLedger::open(&dir, config(100.0, 0)).expect("open");
        for _ in 0..3 {
            ledger.try_spend(6, EPS).expect("spend");
        }
        drop(ledger); // crash
        let wal = dir.join("ledger.wal");
        let mut bytes = fs::read(&wal).expect("read wal");
        bytes[9] ^= 0x20; // header version byte: checksum no longer verifies
        fs::write(&wal, &bytes).expect("damage header");
        let report = scavenge(&dir, 0).expect("salvage");
        assert_eq!(report.wal_records, 3);
        assert_eq!(
            report.ambiguous_records, 3,
            "records under an untrusted header must be counted ambiguous"
        );
        let recovered = SpendLedger::open(&dir, config(100.0, 0)).expect("verify open");
        // Upward resolution: at least what was served; here the WAL was
        // never folded, so it is also exact.
        assert!(recovered.spent(6) >= 3.0 * EPS - 1e-9);
        fs::remove_dir_all(&dir).ok();
    }

    /// A fault during the salvage *commit* abandons that attempt typed —
    /// and leaves the directory untouched, so a later retry (disk freed)
    /// salvages the same records.
    #[test]
    fn faulted_salvage_commit_abandons_then_retries_clean() {
        let dir = temp_dir("sc-commitfault");
        let mut ledger = SpendLedger::open(&dir, config(100.0, 0)).expect("open");
        for _ in 0..2 {
            ledger.try_spend(7, EPS).expect("spend");
        }
        drop(ledger); // crash
        let mut fp = Session::new();
        fp.arm("serve.snapshot.write", FailSpec::after(0, 1));
        let err = scavenge(&dir, 0).expect_err("salvage commit must fault");
        assert!(matches!(
            err,
            JournalError::Injected("serve.snapshot.write")
        ));
        drop(fp);
        // Nothing was committed, nothing was lost: the retry salvages.
        let report = scavenge(&dir, 0).expect("retry salvage");
        assert!((report.salvaged[&7] - 2.0 * EPS).abs() < 1e-9);
        fs::remove_dir_all(&dir).ok();
    }

    /// ENOSPC mid-append, end to end through the sharded ledger (manual
    /// repair so every transition is deterministic): three `DiskFull`
    /// refusals quarantine the shard, its users get the typed
    /// `ShardUnavailable` while the sibling shard keeps serving, the
    /// aggregate read reports the shard unaccounted rather than zero, and
    /// after `repair_now` the shard walks Probation → Ready with the
    /// budget exactly as served — the refused spends were never charged.
    #[test]
    fn enospc_quarantine_repairs_to_ready_without_double_charge() {
        use geoind_serve::shard::shard_of;
        const SHARDS: usize = 2;
        let dir = temp_dir("sc-enospc");
        let ledger =
            ShardedLedger::open_with_repair(&dir, config(100.0, 0), SHARDS, RepairMode::Manual);
        let user_a = (0..64).find(|&u| shard_of(u, SHARDS) == 0).expect("user a");
        let user_b = (0..64).find(|&u| shard_of(u, SHARDS) == 1).expect("user b");
        for _ in 0..4 {
            ledger.try_spend(user_a, EPS).expect("baseline a");
            ledger.try_spend(user_b, EPS).expect("baseline b");
        }

        // Disk fills: three consecutive refused (never charged) appends
        // strike the shard out.
        let mut fp = Session::new();
        fp.arm("serve.journal.enospc", FailSpec::times(3));
        for _ in 0..3 {
            match ledger.try_spend(user_a, EPS) {
                Err(SpendError::Journal(JournalError::DiskFull { .. })) => {}
                other => panic!("want typed DiskFull, got {other:?}"),
            }
        }
        drop(fp);

        // Quarantined: exactly this shard's users refuse typed; the
        // sibling shard and the fleet-wide accounting stay honest.
        match ledger.try_spend(user_a, EPS) {
            Err(SpendError::ShardUnavailable { shard: 0, detail }) => {
                assert!(detail.contains("quarantined"), "detail: {detail}");
            }
            other => panic!("quarantined shard answered {other:?}"),
        }
        ledger.try_spend(user_b, EPS).expect("sibling shard serves");
        assert!(ledger.spent(user_a).is_none(), "unknown, not zero");
        assert_eq!(ledger.unaccounted_shards(), 1);
        assert_eq!(ledger.shard_states()[0], ShardHealth::Quarantined);

        // Operator-triggered repair: scavenge re-reads snapshot + WAL,
        // the standard open verifies the salvage, the shard re-admits on
        // probation.
        assert_eq!(ledger.repair_now(), 1);
        ledger.await_repairs();
        assert_eq!(ledger.repaired_shards(), 1);
        assert_eq!(ledger.abandoned_repairs(), 0);
        assert_eq!(ledger.shard_states()[0], ShardHealth::Probation);

        // Exactly the served spend survived: 4 charged, 3 refused-free.
        let back = ledger.spent(user_a).expect("repaired shard serves");
        assert!(
            (back - 4.0 * EPS).abs() < 1e-9,
            "refused DiskFull spends were charged: {back}"
        );
        // First durable append clears probation: Ready.
        ledger.try_spend(user_a, EPS).expect("probation spend");
        assert_eq!(ledger.shard_states()[0], ShardHealth::Ready);
        assert!((ledger.spent(user_a).expect("ready") - 5.0 * EPS).abs() < 1e-9);
        fs::remove_dir_all(&dir).ok();
    }

    /// The same ENOSPC outage under `RepairMode::Auto`: the third strike
    /// both quarantines the shard *and* spawns the repair, which heals to
    /// Ready with no operator involvement and no restart.
    #[test]
    fn enospc_auto_repair_heals_without_operator() {
        let dir = temp_dir("sc-autoenospc");
        let ledger = ShardedLedger::open_with_repair(&dir, config(100.0, 0), 1, RepairMode::Auto);
        for _ in 0..2 {
            ledger.try_spend(11, EPS).expect("baseline");
        }
        let mut fp = Session::new();
        fp.arm("serve.journal.enospc", FailSpec::times(3));
        for _ in 0..3 {
            match ledger.try_spend(11, EPS) {
                Err(SpendError::Journal(JournalError::DiskFull { .. })) => {}
                other => panic!("want typed DiskFull, got {other:?}"),
            }
        }
        drop(fp);
        // The strike-out spawned the repair itself; joining it is the
        // only synchronization the test needs.
        ledger.await_repairs();
        assert_eq!(ledger.repaired_shards(), 1);
        let back = ledger.spent(11).expect("healed shard serves");
        assert!((back - 2.0 * EPS).abs() < 1e-9, "charged a refusal: {back}");
        ledger.try_spend(11, EPS).expect("serves after self-heal");
        assert_eq!(ledger.shard_states()[0], ShardHealth::Ready);
        fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Promotion matrix: the primary is killed with one request at each stage of
// the replication pipeline — never shipped, torn mid-ship, shipped but
// unacked, fully acked — then the follower is promoted. The invariants at
// every position: the follower holds every *served* spend exactly once
// (retransmits dedup by sequence, nothing is double-counted), the refused
// spend is replayable on the promoted follower, and a revived stale primary
// is fenced before any of its records can land.
// ---------------------------------------------------------------------------

mod promotion_matrix {
    use super::*;
    use geoind_serve::replica::{Applier, Shipper, ShipperConfig};
    use geoind_serve::shard::ShardedLedger;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    const SHARDS: usize = 2;
    const BASELINE: u64 = 6;
    const FAULT_USER: u64 = 1;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Position {
        /// The follower drops connections before reading a byte.
        PreShip,
        /// `serve.repl.ship_torn`: the batch is cut mid-write.
        TornShip,
        /// `serve.repl.ack_lost`: applied durably, ack never returns.
        ShippedUnacked,
        /// No fault: the spend is acked, then the primary dies.
        Acked,
    }

    /// The smallest honest stand-in for the follower's wire layer: an
    /// accept loop where each connection carries one `POST /replicate`,
    /// answered with the applier's verdict.
    struct MiniFollower {
        addr: String,
        refuse: Arc<AtomicBool>,
        stop: Arc<AtomicBool>,
        handle: Option<std::thread::JoinHandle<()>>,
    }

    impl MiniFollower {
        fn start(applier: Arc<Applier>, ledger: Arc<ShardedLedger>) -> Self {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind mini follower");
            let addr = listener.local_addr().expect("local addr").to_string();
            let refuse = Arc::new(AtomicBool::new(false));
            let stop = Arc::new(AtomicBool::new(false));
            let (refuse_l, stop_l) = (Arc::clone(&refuse), Arc::clone(&stop));
            let handle = std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop_l.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    if refuse_l.load(Ordering::SeqCst) {
                        continue; // dropped before a single byte is read
                    }
                    let Some(body) = read_replicate_body(&mut stream) else {
                        continue; // torn ship: apply nothing
                    };
                    let verdict = applier.handle(&ledger, &body);
                    // A lost ack is the sender's problem, not ours.
                    let _ = stream.write_all(
                        format!(
                            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{verdict}",
                            verdict.len()
                        )
                        .as_bytes(),
                    );
                }
            });
            Self {
                addr,
                refuse,
                stop,
                handle: Some(handle),
            }
        }
    }

    impl Drop for MiniFollower {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(&self.addr); // unblock accept
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }

    /// Read one `POST /replicate` frame's body; `None` on a torn frame.
    fn read_replicate_body(stream: &mut TcpStream) -> Option<Vec<u8>> {
        stream
            .set_read_timeout(Some(Duration::from_millis(2_000)))
            .ok()?;
        let mut pending = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(head_end) = pending.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&pending[..head_end]).ok()?;
                let mut content_length = 0usize;
                for line in head.split("\r\n").skip(1) {
                    if let Some((name, value)) = line.split_once(':') {
                        if name.eq_ignore_ascii_case("content-length") {
                            content_length = value.trim().parse().ok()?;
                        }
                    }
                }
                let body_start = head_end + 4;
                while pending.len() < body_start + content_length {
                    match stream.read(&mut buf) {
                        Ok(0) => return None,
                        Ok(n) => pending.extend_from_slice(&buf[..n]),
                        Err(_) => return None,
                    }
                }
                return Some(pending[body_start..body_start + content_length].to_vec());
            }
            match stream.read(&mut buf) {
                Ok(0) => return None,
                Ok(n) => pending.extend_from_slice(&buf[..n]),
                Err(_) => return None,
            }
        }
    }

    fn shipper_for(dir: &std::path::Path, peer: Option<&str>) -> Shipper {
        let shipper = Shipper::new(ShipperConfig {
            dir: Some(dir.to_path_buf()),
            shards: SHARDS,
            epoch: 0,
            max_lag: 4,
            timeout_ms: 500,
            auth_token: None,
        })
        .expect("build shipper");
        if let Some(peer) = peer {
            shipper.set_peer(peer).expect("register peer");
        }
        shipper
    }

    fn run_position(tag: &str, position: Position) {
        let p_dir = temp_dir(&format!("promo-{tag}-p"));
        let f_dir = temp_dir(&format!("promo-{tag}-f"));
        let follower_ledger = Arc::new(ShardedLedger::open(&f_dir, config(100.0, 0), SHARDS));
        let applier = Arc::new(Applier::new(&follower_ledger, true));
        let follower = MiniFollower::start(Arc::clone(&applier), Arc::clone(&follower_ledger));

        let primary = ShardedLedger::open(&p_dir, config(100.0, 0), SHARDS);
        assert!(primary.attach_shipper(Arc::new(shipper_for(&p_dir, Some(&follower.addr)))));

        for i in 0..BASELINE {
            primary.try_spend(i % USERS, EPS).expect("baseline spend");
        }
        assert!(
            (follower_ledger.total_spent() - BASELINE as f64 * EPS).abs() < 1e-9,
            "every served spend must be acked durable on the follower first"
        );

        // The position-specific final request, then the primary dies.
        let mut fp = Session::new();
        match position {
            Position::PreShip => {
                follower.refuse.store(true, Ordering::SeqCst);
            }
            Position::TornShip => {
                fp.arm("serve.repl.ship_torn", FailSpec::always());
            }
            Position::ShippedUnacked => {
                fp.arm("serve.repl.ack_lost", FailSpec::always());
            }
            Position::Acked => {}
        }
        match (position, primary.try_spend(FAULT_USER, EPS)) {
            (Position::Acked, Ok(())) => {}
            (Position::Acked, other) => panic!("{tag}: clean spend answered {other:?}"),
            (_, Err(SpendError::ReplicaLag { .. })) => {}
            (_, other) => panic!("{tag}: want a replica-lag refusal, got {other:?}"),
        }
        drop(fp);
        follower.refuse.store(false, Ordering::SeqCst);
        drop(primary); // crash: no checkpoint, no graceful flush

        // Every acked serve is on the follower; the in-flight record only
        // where the whole batch actually landed — and even with the
        // in-request retransmits of the unacked case, exactly once.
        let on_follower = match position {
            Position::PreShip | Position::TornShip => BASELINE,
            Position::ShippedUnacked | Position::Acked => BASELINE + 1,
        };
        assert!(
            (follower_ledger.total_spent() - on_follower as f64 * EPS).abs() < 1e-9,
            "{tag}: follower books {} != {on_follower} records",
            follower_ledger.total_spent()
        );

        // Fenced failover: promotion bumps past every generation seen.
        let gen = applier.promote(&follower_ledger).expect("promote");
        assert_eq!(gen, 2, "{tag}");

        // The request the dead primary refused is replayable on the
        // promoted follower. (In the acked/unacked positions the record
        // already landed, and the wire layer's idempotency replays the
        // journaled outcome instead — covered in `tests/wire.rs`.)
        if matches!(position, Position::PreShip | Position::TornShip) {
            follower_ledger
                .try_spend(FAULT_USER, EPS)
                .expect("refused spend replays on the promoted follower");
        }
        let settled = follower_ledger.total_spent();

        // The revived stale primary recovers its full journal — the
        // refused spend stays charged locally (over-counting, never
        // minting) — and resumes shipping to its persisted peer. The
        // newer generation refuses the first batch: hard fence, and not
        // one stale record lands on the promoted node.
        let revived = ShardedLedger::open(&p_dir, config(100.0, 0), SHARDS);
        assert!(
            (revived.total_spent() - (BASELINE + 1) as f64 * EPS).abs() < 1e-9,
            "{tag}: revived primary lost or minted records: {}",
            revived.total_spent()
        );
        let shipper = shipper_for(&p_dir, None);
        assert_eq!(
            shipper.peer().as_deref(),
            Some(follower.addr.as_str()),
            "{tag}: peer registration must survive the crash"
        );
        assert_eq!(shipper.generation(), 1, "{tag}: stale generation persisted");
        assert!(revived.attach_shipper(Arc::new(shipper)));
        for attempt in 0..2 {
            match revived.try_spend(FAULT_USER, EPS) {
                Err(SpendError::Fenced) => {}
                other => panic!("{tag}: revived primary attempt {attempt} answered {other:?}"),
            }
        }
        assert!(
            (follower_ledger.total_spent() - settled).abs() < 1e-9,
            "{tag}: a fenced batch changed the promoted node's books"
        );

        drop(follower);
        fs::remove_dir_all(&p_dir).ok();
        fs::remove_dir_all(&f_dir).ok();
    }

    /// A restarted primary (peer file persisted, in-memory sequence
    /// counters gone) must resume shipping at the follower's durable
    /// watermark. Without the handshake probe it would re-number new
    /// spends from 1: the follower's dedup would skip every one while
    /// still acking its old watermark, so the client hears `served`
    /// for spends the follower never applied — budget a later failover
    /// would silently re-grant.
    #[test]
    fn restarted_primary_resumes_at_the_followers_watermark() {
        let p_dir = temp_dir("promo-resume-p");
        let f_dir = temp_dir("promo-resume-f");
        let follower_ledger = Arc::new(ShardedLedger::open(&f_dir, config(100.0, 0), SHARDS));
        let applier = Arc::new(Applier::new(&follower_ledger, true));
        let follower = MiniFollower::start(Arc::clone(&applier), Arc::clone(&follower_ledger));

        {
            let primary = ShardedLedger::open(&p_dir, config(100.0, 0), SHARDS);
            assert!(primary.attach_shipper(Arc::new(shipper_for(&p_dir, Some(&follower.addr)))));
            for i in 0..BASELINE {
                primary.try_spend(i % USERS, EPS).expect("baseline spend");
            }
            // Crash: dropped without a flush. The peer registration
            // survives on disk; the shipper's counters do not.
        }

        let revived = ShardedLedger::open(&p_dir, config(100.0, 0), SHARDS);
        let shipper = shipper_for(&p_dir, None);
        assert_eq!(
            shipper.peer().as_deref(),
            Some(follower.addr.as_str()),
            "peer registration must survive the restart"
        );
        assert!(revived.attach_shipper(Arc::new(shipper)));
        for i in 0..BASELINE {
            revived
                .try_spend(i % USERS, EPS)
                .expect("post-restart spend");
        }
        assert!(
            (follower_ledger.total_spent() - 2.0 * BASELINE as f64 * EPS).abs() < 1e-9,
            "post-restart spends vanished into the follower's dedup window: \
             follower books {} want {}",
            follower_ledger.total_spent(),
            2.0 * BASELINE as f64 * EPS
        );

        drop(follower);
        fs::remove_dir_all(&p_dir).ok();
        fs::remove_dir_all(&f_dir).ok();
    }

    #[test]
    fn killed_before_shipping_promotes_without_the_refused_spend() {
        run_position("preship", Position::PreShip);
    }

    #[test]
    fn killed_mid_ship_applies_nothing_and_promotes_clean() {
        run_position("torn", Position::TornShip);
    }

    #[test]
    fn killed_after_ship_before_ack_keeps_exactly_one_copy() {
        run_position("unacked", Position::ShippedUnacked);
    }

    #[test]
    fn killed_after_ack_loses_nothing() {
        run_position("acked", Position::Acked);
    }
}
