//! Environment-driven journal fault sweep, the target of `scripts/ci.sh`'s
//! `GEOIND_FAILPOINTS=<serve site>=<spec>` rotation.
//!
//! Whichever journal site the environment arms, the ledger must stay
//! fail-closed end to end: a faulted step refuses the request (never
//! serves unaccounted ε), a crash mid-workload loses no acknowledged
//! spend, and recovery after the faults clear restores exactly the
//! acknowledged state. Global arming is process-wide, so this lives in
//! its own binary with a single test (mirroring `resilience_env.rs` in
//! the core crate).

use geoind_serve::ledger::{LedgerConfig, SpendError, SpendLedger};
use geoind_testkit::failpoint;
use std::collections::BTreeMap;
use std::fs;

const EPS: f64 = 0.4;
const USERS: u64 = 4;
const REQUESTS: u64 = 32;

#[test]
fn env_armed_journal_faults_never_lose_acknowledged_spend() {
    // Fold in whatever the sweep armed; when run bare, arm a count-based
    // append fault ourselves so the refusal path still runs.
    let from_env = failpoint::arm_from_env().expect("GEOIND_FAILPOINTS must parse");
    if from_env == 0 {
        failpoint::arm_global("serve.journal.flush", failpoint::FailSpec::times(2));
    }

    let dir = std::env::temp_dir().join(format!("geoind-journal-env-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let config = LedgerConfig {
        cap_per_user: 100.0,
        epoch: 0,
        compact_after: 5,
    };

    // Armed sites can fire during recovery itself (the fresh open writes
    // a snapshot and a WAL); a refused open must be retryable, not
    // corrupting. Count-based specs exhaust, so bounded retries suffice.
    let mut ledger = None;
    for _ in 0..8 {
        match SpendLedger::open(&dir, config) {
            Ok(l) => {
                ledger = Some(l);
                break;
            }
            Err(e) => {
                // A faulted open must leave the directory recoverable.
                eprintln!("open refused (retrying): {e}");
            }
        }
    }
    let mut ledger = ledger.expect("open must succeed once count-based faults exhaust");

    let mut served: BTreeMap<u64, f64> = BTreeMap::new();
    let mut refused = 0u64;
    for i in 0..REQUESTS {
        let user = i % USERS;
        match ledger.try_spend(user, EPS) {
            Ok(()) => *served.entry(user).or_insert(0.0) += EPS,
            Err(SpendError::Journal(e)) => {
                eprintln!("request {i} refused fail-closed: {e}");
                refused += 1;
            }
            Err(other) => panic!("unexpected refusal: {other:?}"),
        }
    }
    let served_total: f64 = served.values().sum();
    assert!(
        (served_total - (REQUESTS - refused) as f64 * EPS).abs() < 1e-9,
        "served/refused bookkeeping drifted"
    );
    drop(ledger); // crash: no checkpoint

    // "Restart": the faults are gone (fresh process in the real sweep),
    // the journal is whatever the crash left on disk.
    failpoint::reset_global();
    let recovered = SpendLedger::open(&dir, config).expect("recovery must succeed once disarmed");
    for user in 0..USERS {
        let s = served.get(&user).copied().unwrap_or(0.0);
        let r = recovered.spent(user);
        assert!(
            r >= s - 1e-9,
            "user {user}: recovered {r} < served {s} — the fail-closed invariant is broken"
        );
    }
    assert!(
        (recovered.total_spent() - served_total).abs() < 1e-9,
        "recovered total {} != served total {served_total}",
        recovered.total_spent()
    );
    fs::remove_dir_all(&dir).ok();
}
