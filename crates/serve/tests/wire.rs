//! Real-socket suite for the wire layer: loopback TCP, the actual
//! loadgen client, and the `serve.net.*` failpoints.
//!
//! Wire failpoints fire on the server's handler threads, so arming is
//! **process-global** (`arm_global`) rather than thread-scoped — every
//! test that arms a site serializes on [`NET_FAULTS`] and disarms on
//! the way out. The invariant under every injected fault is the same:
//! the client's terminal tallies reconcile *exactly* with the server's
//! gate counters, a torn request burns no budget, and a torn response
//! is replayed (never re-spent) on retry.

use geoind_core::alloc::AllocationStrategy;
use geoind_core::msm::MsmMechanism;
use geoind_core::ResilientMechanism;
use geoind_data::prior::GridPrior;
use geoind_serve::client::{run_load, ClientConfig};
use geoind_serve::ledger::LedgerConfig;
use geoind_serve::shard::{shard_of, ShardedLedger};
use geoind_serve::wire::{WireConfig, WireServer};
use geoind_serve::{ServeConfig, SpendLedger};
use geoind_spatial::geom::BBox;
use geoind_testkit::clock::SystemClock;
use geoind_testkit::failpoint::{self, FailSpec};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const EPS: f64 = 0.8;

/// Serializes every test in this file: arming is process-wide, so a
/// fault armed by one test would fire inside a concurrently running
/// server of another and corrupt its exact counts.
static NET_FAULTS: Mutex<()> = Mutex::new(());

fn mechanism() -> ResilientMechanism {
    let domain = BBox::square(8.0);
    let prior = GridPrior::uniform(domain, 8);
    ResilientMechanism::from_builder(
        MsmMechanism::builder(domain, prior)
            .epsilon(EPS)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(2)),
    )
    .expect("build mechanism")
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "geoind-wire-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sharded(dir: &std::path::Path, cap: f64, shards: usize) -> ShardedLedger {
    ShardedLedger::open(
        dir,
        LedgerConfig {
            cap_per_user: cap,
            epoch: 0,
            compact_after: 0,
        },
        shards,
    )
}

fn wire_config() -> WireConfig {
    WireConfig {
        serve: ServeConfig {
            workers: 2,
            queue_capacity: 32,
            seed: 42,
            batch: 4,
        },
        max_connections: 32,
        read_timeout_ms: 250,
        write_timeout_ms: 1_000,
        max_body_bytes: 64 * 1024,
        deadline_ms: None,
        idle_timeout_ms: 5_000,
    }
}

fn start_server(dir: &std::path::Path, cap: f64) -> WireServer {
    WireServer::start(
        mechanism(),
        sharded(dir, cap, 4),
        Arc::new(SystemClock),
        wire_config(),
        "127.0.0.1:0",
    )
    .expect("bind wire server")
}

fn client_config(addr: std::net::SocketAddr, requests: u64) -> ClientConfig {
    ClientConfig {
        addr: addr.to_string(),
        connections: 4,
        requests,
        users: 5,
        timeout_ms: 2_000,
        max_attempts: 16,
        backoff_base_ms: 5,
        seed: 7,
        shutdown_after: false,
    }
}

/// Raw-socket exchange helper for the tests that need byte-level control.
fn raw_exchange(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(2_000)))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("write");
    // One response frame: read until the declared body is complete.
    let mut pending = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(end) = frame_end(&pending) {
            return String::from_utf8_lossy(&pending[..end]).into_owned();
        }
        match stream.read(&mut buf) {
            Ok(0) => return String::from_utf8_lossy(&pending).into_owned(),
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e) => panic!("raw read failed with {pending:?} buffered: {e}"),
        }
    }
}

fn frame_end(pending: &[u8]) -> Option<usize> {
    let head_end = pending.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&pending[..head_end]).ok()?;
    let mut content_length = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let total = head_end + 4 + content_length;
    (pending.len() >= total).then_some(total)
}

fn protect_request(user: u64, id: u64) -> String {
    let body = format!(r#"{{"user":{user},"id":{id},"x":1.0,"y":2.0}}"#);
    format!(
        "POST /protect HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

#[test]
fn closed_loop_over_loopback_reconciles_exactly() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("plain");
    // Cap fits 4 requests per user: 40 requests over 5 users → 20
    // served, 20 budget-refused, every one accounted on both sides.
    let server = start_server(&dir, 4.0 * EPS);
    let report = run_load(&client_config(server.local_addr(), 40)).expect("load reconciles");
    assert_eq!(report.served, 20);
    assert_eq!(report.refused_budget, 20);
    assert_eq!(report.total(), 40);
    let outcome = server.shutdown();
    outcome.checkpoint.expect("checkpoint");
    assert_eq!(outcome.report.served(), 20);
    assert_eq!(outcome.report.refused_budget, 20);
    // Budget actually burned exactly once per serve.
    let reopened = sharded(&dir, 4.0 * EPS, 4);
    assert!((reopened.total_spent() - 20.0 * EPS).abs() < 1e-9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_net_failpoint_preserves_exact_reconciliation() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    for site in [
        "serve.net.accept",
        "serve.net.read_torn",
        "serve.net.write_short",
        "serve.net.stall",
    ] {
        failpoint::reset_global();
        let dir = temp_dir(&format!("sweep-{}", site.replace('.', "-")));
        let server = start_server(&dir, 100.0);
        // Fault a few exchanges mid-run; the retrying client must still
        // drive every request to a terminal outcome that reconciles.
        failpoint::arm_global(site, FailSpec::after(3, 3));
        let result = run_load(&client_config(server.local_addr(), 30));
        // Read the fire count before disarming: disarm drops the state.
        let fired = failpoint::fired(site);
        failpoint::disarm_global(site);
        let report = result.unwrap_or_else(|e| panic!("{site}: {e}"));
        assert_eq!(report.total(), 30, "{site}");
        assert_eq!(report.served, 30, "{site}: cap is generous, all serve");
        assert!(fired > 0, "{site} never fired");
        let outcome = server.shutdown();
        outcome.checkpoint.expect("checkpoint");
        assert_eq!(outcome.report.served(), 30, "{site}");
        match site {
            "serve.net.accept" => assert!(outcome.report.shed_net >= fired, "{site}"),
            _ => assert!(outcome.report.torn >= fired, "{site}"),
        }
        // At-most-once: the ledger burned exactly one ε per logical
        // serve, no matter how many wire attempts it took.
        assert!(
            (server_spent(&dir) - 30.0 * EPS).abs() < 1e-9,
            "{site}: spend drifted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    failpoint::reset_global();
}

fn server_spent(dir: &std::path::Path) -> f64 {
    sharded(dir, 100.0, 4).total_spent()
}

#[test]
fn torn_request_burns_no_budget() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::reset_global();
    let dir = temp_dir("torn-req");
    let server = start_server(&dir, 100.0);
    // A frame that declares more body than it ever sends, then a dead
    // socket: the server must count it torn and never reach the gate.
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"POST /protect HTTP/1.1\r\nContent-Length: 60\r\n\r\n{\"user\":1,")
            .expect("write partial");
        // Dropping the stream closes it mid-frame.
    }
    // The handler notices on its next read (bounded by the read timeout).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let report = server.report();
        if report.torn >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "torn counter never moved: {report:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.ledger_total_spent(), 0.0, "torn request spent ε");
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 0);
    assert!(outcome.report.torn >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_response_is_replayed_not_respent() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::reset_global();
    let dir = temp_dir("torn-resp");
    let server = start_server(&dir, 100.0);
    let addr = server.local_addr();

    // First attempt: the spend journals, then the response write is cut.
    failpoint::arm_global("serve.net.write_short", FailSpec::times(1));
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(2_000)))
            .expect("timeout");
        stream
            .write_all(protect_request(3, 17).as_bytes())
            .expect("write");
        let mut tail = Vec::new();
        let _ = stream.read_to_end(&mut tail);
        // The cut must be observable: fewer bytes than a full frame.
        assert!(
            frame_end(&tail).is_none(),
            "expected a torn response, got {:?}",
            String::from_utf8_lossy(&tail)
        );
    }
    assert_eq!(failpoint::fired("serve.net.write_short"), 1);
    failpoint::disarm_global("serve.net.write_short");
    assert!(
        (server.ledger_total_spent() - EPS).abs() < 1e-12,
        "the spend was journaled before the tear"
    );

    // Retry with the same (user, id): the journaled outcome replays
    // verbatim; no second spend.
    let replay = raw_exchange(addr, &protect_request(3, 17));
    assert!(replay.contains("200 OK"), "{replay}");
    assert!(replay.contains(r#""status":"served""#), "{replay}");
    assert!(
        (server.ledger_total_spent() - EPS).abs() < 1e-12,
        "replay must not spend again"
    );
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 1, "one logical serve");
    assert_eq!(outcome.retried, 1, "one idempotent replay");
    assert!(outcome.report.torn >= 1);
    failpoint::reset_global();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_array_is_answered_in_order() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("pipeline");
    let server = start_server(&dir, 100.0);
    let items: Vec<String> = (0..8)
        .map(|i| format!(r#"{{"user":{},"id":{i},"x":{}.5,"y":1.0}}"#, i % 3, i % 4))
        .collect();
    let body = format!("[{}]", items.join(","));
    let request = format!(
        "POST /protect HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let response = raw_exchange(server.local_addr(), &request);
    assert!(response.contains("200 OK"), "{response}");
    assert_eq!(
        response.matches(r#""status":"served""#).count(),
        8,
        "{response}"
    );
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 8);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn connections_beyond_the_cap_are_shed_with_an_explicit_503() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("conn-cap");
    let config = WireConfig {
        max_connections: 1,
        ..wire_config()
    };
    let server = WireServer::start(
        mechanism(),
        sharded(&dir, 100.0, 2),
        Arc::new(SystemClock),
        config,
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();
    // First connection occupies the only slot (prove it works end to
    // end), then further connections must get the explicit refusal.
    let mut held = TcpStream::connect(addr).expect("first connect");
    held.set_read_timeout(Some(Duration::from_millis(2_000)))
        .expect("timeout");
    held.write_all(protect_request(1, 1).as_bytes())
        .expect("write");
    let mut buf = [0u8; 4096];
    let n = held.read(&mut buf).expect("first connection serves");
    assert!(String::from_utf8_lossy(&buf[..n]).contains("served"));

    let mut refused = 0u64;
    for _ in 0..3 {
        let response = raw_exchange(addr, ""); // refusal arrives unprompted
        if response.contains("too_many_connections") {
            refused += 1;
        }
    }
    assert!(refused >= 1, "no connection saw the 503 refusal");
    drop(held);
    let outcome = server.shutdown();
    assert!(outcome.report.shed_net >= refused);
    assert_eq!(outcome.report.served(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_shard_refuses_over_the_wire_while_healthy_shards_serve() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("shard-refuse");
    // Populate all four shards, then corrupt one on disk.
    {
        let ledger = sharded(&dir, 100.0, 4);
        for k in 0..4usize {
            let user = (0..64u64)
                .find(|&u| shard_of(u, 4) == k)
                .expect("user for shard");
            ledger.try_spend(user, EPS).expect("seed spend");
        }
        ledger.checkpoint_all().expect("checkpoint");
    }
    let bad = 2usize;
    let snap = dir.join(format!("shard-{bad}")).join("ledger.snap");
    let mut bytes = std::fs::read(&snap).expect("read snap");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&snap, &bytes).expect("corrupt snap");

    let server = WireServer::start(
        mechanism(),
        sharded(&dir, 100.0, 4),
        Arc::new(SystemClock),
        wire_config(),
        "127.0.0.1:0",
    )
    .expect("bind");
    assert_eq!(server.failed_shards().len(), 1);
    let addr = server.local_addr();

    let unlucky = (0..64)
        .find(|&u| shard_of(u, 4) == bad)
        .expect("user on bad shard");
    let lucky = (0..64)
        .find(|&u| shard_of(u, 4) != bad)
        .expect("user off bad shard");

    // The outage is typed, retryable, and names the shard — distinct
    // from a journal fault on a serving shard.
    let refusal = raw_exchange(addr, &protect_request(unlucky, 1));
    assert!(refusal.contains("503"), "{refusal}");
    assert!(
        refusal.contains(r#""status":"shard_unavailable""#),
        "{refusal}"
    );
    assert!(refusal.contains(r#""shard":2"#), "{refusal}");

    let served = raw_exchange(addr, &protect_request(lucky, 2));
    assert!(served.contains(r#""status":"served""#), "{served}");

    // /report exposes the failed shard for operators.
    let report = raw_exchange(addr, "GET /report HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(
        report.contains(r#""failed_shards":[{"shard":2,"#),
        "{report}"
    );
    // Readiness reflects the terminal failure (repair is off here).
    let health = raw_exchange(addr, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(health.contains("503"), "{health}");
    assert!(health.contains(r#""status":"degraded""#), "{health}");
    assert!(health.contains(r#""failed":1"#), "{health}");

    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 1);
    assert_eq!(outcome.report.refused_shard, 1, "typed shard refusal");
    assert_eq!(outcome.report.journal_faults, 0);
    assert_eq!(outcome.report.unaccounted_shards, 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Full online round trip, no restart: a shard whose WAL header was
/// corrupted opens quarantined, `GET /healthz` reports degraded,
/// `POST /repair` scavenges it back, readiness returns to `ready`, and
/// the very (user, id) that was refused during the outage is *served* on
/// retry — the retryable refusal released its idempotency key instead of
/// pinning the outage as that request's permanent answer.
#[test]
fn repair_over_the_wire_heals_a_quarantined_shard() {
    use geoind_serve::shard::RepairMode;
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("wire-repair");
    let bad = 2usize;
    let unlucky = (0..64)
        .find(|&u| shard_of(u, 4) == bad)
        .expect("user on bad shard");
    {
        let ledger = sharded(&dir, 100.0, 4);
        // No checkpoint: the spend lives in the WAL the corruption hits.
        ledger.try_spend(unlucky, EPS).expect("seed spend");
    }
    let wal = dir.join(format!("shard-{bad}")).join("ledger.wal");
    let mut bytes = std::fs::read(&wal).expect("read wal");
    bytes[9] ^= 0x20; // header integrity word: open refuses, scavenge salvages
    std::fs::write(&wal, &bytes).expect("corrupt wal header");

    let ledger = ShardedLedger::open_with_repair(
        &dir,
        LedgerConfig {
            cap_per_user: 100.0,
            epoch: 0,
            compact_after: 0,
        },
        4,
        RepairMode::Manual,
    );
    let server = WireServer::start(
        mechanism(),
        ledger,
        Arc::new(SystemClock),
        wire_config(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    let health = raw_exchange(addr, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(health.contains("503"), "{health}");
    assert!(health.contains(r#""status":"degraded""#), "{health}");
    assert!(health.contains(r#""quarantined":1"#), "{health}");

    let refusal = raw_exchange(addr, &protect_request(unlucky, 7));
    assert!(
        refusal.contains(r#""status":"shard_unavailable""#),
        "{refusal}"
    );

    let kicked = raw_exchange(addr, "POST /repair HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(kicked.contains(r#""started":1"#), "{kicked}");

    // Readiness flips back once the scavenge commits and the standard
    // open verifies it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let health = raw_exchange(addr, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        if health.contains(r#""status":"ready""#) {
            assert!(health.contains("200"), "{health}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "repair never completed: {health}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Same (user, id) as the refusal: served now, not replayed.
    let served = raw_exchange(addr, &protect_request(unlucky, 7));
    assert!(served.contains(r#""status":"served""#), "{served}");

    let outcome = server.shutdown();
    assert!(outcome.report.refused_shard >= 1);
    assert_eq!(outcome.report.repaired_shards, 1);
    assert_eq!(outcome.report.served(), 1);
    // Fail-closed across the round trip: the pre-outage spend and the
    // post-repair serve are both on the books, each exactly once.
    let reopened = sharded(&dir, 100.0, 4);
    let spent = reopened.spent(unlucky).expect("repaired shard serves");
    assert!(
        (spent - 2.0 * EPS).abs() < 1e-9,
        "salvage lost or double-charged: {spent}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A keep-alive connection that goes quiet is reaped once it idles past
/// `idle_timeout_ms`; the listener itself keeps serving new connections.
#[test]
fn idle_connections_are_reaped_after_the_timeout() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("idle-reap");
    let config = WireConfig {
        read_timeout_ms: 25,
        idle_timeout_ms: 100,
        ..wire_config()
    };
    let server = WireServer::start(
        mechanism(),
        sharded(&dir, 100.0, 2),
        Arc::new(SystemClock),
        config,
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(protect_request(1, 1).as_bytes())
        .expect("write");
    let mut buf = [0u8; 4096];
    let n = stream.read(&mut buf).expect("served before idling");
    assert!(n > 0, "no response before idle");

    // Go quiet: the reaper must close the socket (EOF) well before the
    // client's own 5s timeout would fire.
    let start = std::time::Instant::now();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break, // reaped
            Ok(_) => {}     // tail of the response frame
            Err(e) => panic!("expected EOF from the idle reaper, got {e}"),
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "idle reap took {:?}",
        start.elapsed()
    );

    // Only the idle connection died; the server still serves.
    let fresh = raw_exchange(addr, &protect_request(2, 2));
    assert!(fresh.contains(r#""status":"served""#), "{fresh}");
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_spend_ledger_still_drives_the_wire() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    // The pre-shard construction keeps working through the façade.
    let dir = temp_dir("single-ledger");
    let inner = SpendLedger::open(
        &dir,
        LedgerConfig {
            cap_per_user: 2.0 * EPS,
            epoch: 0,
            compact_after: 0,
        },
    )
    .expect("open ledger");
    let server = WireServer::start(
        mechanism(),
        ShardedLedger::single(inner),
        Arc::new(SystemClock),
        wire_config(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();
    for id in 0..2 {
        let response = raw_exchange(addr, &protect_request(9, id));
        assert!(response.contains("served"), "{response}");
    }
    let refused = raw_exchange(addr, &protect_request(9, 2));
    assert!(refused.contains("budget_exhausted"), "{refused}");
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 2);
    assert_eq!(outcome.report.refused_budget, 1);
    std::fs::remove_dir_all(&dir).ok();
}
