//! Real-socket suite for the wire layer: loopback TCP, the actual
//! loadgen client, and the `serve.net.*` failpoints.
//!
//! Wire failpoints fire on the server's handler threads, so arming is
//! **process-global** (`arm_global`) rather than thread-scoped — every
//! test that arms a site serializes on [`NET_FAULTS`] and disarms on
//! the way out. The invariant under every injected fault is the same:
//! the client's terminal tallies reconcile *exactly* with the server's
//! gate counters, a torn request burns no budget, and a torn response
//! is replayed (never re-spent) on retry.

use geoind_core::alloc::AllocationStrategy;
use geoind_core::msm::MsmMechanism;
use geoind_core::ResilientMechanism;
use geoind_data::prior::GridPrior;
use geoind_serve::client::{run_load, ClientConfig};
use geoind_serve::ledger::LedgerConfig;
use geoind_serve::replica::{register_with_primary, Shipper, ShipperConfig};
use geoind_serve::shard::{shard_of, ShardedLedger};
use geoind_serve::wire::{WireConfig, WireServer};
use geoind_serve::{ServeConfig, SpendLedger};
use geoind_spatial::geom::BBox;
use geoind_testkit::clock::SystemClock;
use geoind_testkit::failpoint::{self, FailSpec};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const EPS: f64 = 0.8;

/// Serializes every test in this file: arming is process-wide, so a
/// fault armed by one test would fire inside a concurrently running
/// server of another and corrupt its exact counts.
static NET_FAULTS: Mutex<()> = Mutex::new(());

fn mechanism() -> ResilientMechanism {
    let domain = BBox::square(8.0);
    let prior = GridPrior::uniform(domain, 8);
    ResilientMechanism::from_builder(
        MsmMechanism::builder(domain, prior)
            .epsilon(EPS)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(2)),
    )
    .expect("build mechanism")
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "geoind-wire-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sharded(dir: &std::path::Path, cap: f64, shards: usize) -> ShardedLedger {
    ShardedLedger::open(
        dir,
        LedgerConfig {
            cap_per_user: cap,
            epoch: 0,
            compact_after: 0,
        },
        shards,
    )
}

fn wire_config() -> WireConfig {
    WireConfig {
        serve: ServeConfig {
            workers: 2,
            queue_capacity: 32,
            seed: 42,
            batch: 4,
        },
        max_connections: 32,
        read_timeout_ms: 250,
        write_timeout_ms: 1_000,
        max_body_bytes: 64 * 1024,
        deadline_ms: None,
        idle_timeout_ms: 5_000,
        standby: false,
        auth_token: None,
        idem_max_per_user: 256,
        idem_ttl_ms: 60_000,
    }
}

fn start_server(dir: &std::path::Path, cap: f64) -> WireServer {
    WireServer::start(
        mechanism(),
        sharded(dir, cap, 4),
        Arc::new(SystemClock),
        wire_config(),
        "127.0.0.1:0",
    )
    .expect("bind wire server")
}

fn client_config(addr: std::net::SocketAddr, requests: u64) -> ClientConfig {
    ClientConfig {
        addr: addr.to_string(),
        connections: 4,
        requests,
        users: 5,
        timeout_ms: 2_000,
        max_attempts: 16,
        backoff_base_ms: 5,
        seed: 7,
        shutdown_after: false,
        failover: None,
        auth_token: None,
        retry_budget: None,
    }
}

/// Raw-socket exchange helper for the tests that need byte-level control.
fn raw_exchange(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(2_000)))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("write");
    // One response frame: read until the declared body is complete.
    let mut pending = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(end) = frame_end(&pending) {
            return String::from_utf8_lossy(&pending[..end]).into_owned();
        }
        match stream.read(&mut buf) {
            Ok(0) => return String::from_utf8_lossy(&pending).into_owned(),
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e) => panic!("raw read failed with {pending:?} buffered: {e}"),
        }
    }
}

fn frame_end(pending: &[u8]) -> Option<usize> {
    let head_end = pending.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&pending[..head_end]).ok()?;
    let mut content_length = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let total = head_end + 4 + content_length;
    (pending.len() >= total).then_some(total)
}

fn protect_request(user: u64, id: u64) -> String {
    let body = format!(r#"{{"user":{user},"id":{id},"x":1.0,"y":2.0}}"#);
    format!(
        "POST /protect HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

#[test]
fn closed_loop_over_loopback_reconciles_exactly() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("plain");
    // Cap fits 4 requests per user: 40 requests over 5 users → 20
    // served, 20 budget-refused, every one accounted on both sides.
    let server = start_server(&dir, 4.0 * EPS);
    let report = run_load(&client_config(server.local_addr(), 40)).expect("load reconciles");
    assert_eq!(report.served, 20);
    assert_eq!(report.refused_budget, 20);
    assert_eq!(report.total(), 40);
    let outcome = server.shutdown();
    outcome.checkpoint.expect("checkpoint");
    assert_eq!(outcome.report.served(), 20);
    assert_eq!(outcome.report.refused_budget, 20);
    // Budget actually burned exactly once per serve.
    let reopened = sharded(&dir, 4.0 * EPS, 4);
    assert!((reopened.total_spent() - 20.0 * EPS).abs() < 1e-9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_net_failpoint_preserves_exact_reconciliation() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    for site in [
        "serve.net.accept",
        "serve.net.read_torn",
        "serve.net.write_short",
        "serve.net.stall",
    ] {
        failpoint::reset_global();
        let dir = temp_dir(&format!("sweep-{}", site.replace('.', "-")));
        let server = start_server(&dir, 100.0);
        // Fault a few exchanges mid-run; the retrying client must still
        // drive every request to a terminal outcome that reconciles.
        failpoint::arm_global(site, FailSpec::after(3, 3));
        let result = run_load(&client_config(server.local_addr(), 30));
        // Read the fire count before disarming: disarm drops the state.
        let fired = failpoint::fired(site);
        failpoint::disarm_global(site);
        let report = result.unwrap_or_else(|e| panic!("{site}: {e}"));
        assert_eq!(report.total(), 30, "{site}");
        assert_eq!(report.served, 30, "{site}: cap is generous, all serve");
        assert!(fired > 0, "{site} never fired");
        let outcome = server.shutdown();
        outcome.checkpoint.expect("checkpoint");
        assert_eq!(outcome.report.served(), 30, "{site}");
        match site {
            "serve.net.accept" => assert!(outcome.report.shed_net >= fired, "{site}"),
            _ => assert!(outcome.report.torn >= fired, "{site}"),
        }
        // At-most-once: the ledger burned exactly one ε per logical
        // serve, no matter how many wire attempts it took.
        assert!(
            (server_spent(&dir) - 30.0 * EPS).abs() < 1e-9,
            "{site}: spend drifted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    failpoint::reset_global();
}

fn server_spent(dir: &std::path::Path) -> f64 {
    sharded(dir, 100.0, 4).total_spent()
}

#[test]
fn torn_request_burns_no_budget() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::reset_global();
    let dir = temp_dir("torn-req");
    let server = start_server(&dir, 100.0);
    // A frame that declares more body than it ever sends, then a dead
    // socket: the server must count it torn and never reach the gate.
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"POST /protect HTTP/1.1\r\nContent-Length: 60\r\n\r\n{\"user\":1,")
            .expect("write partial");
        // Dropping the stream closes it mid-frame.
    }
    // The handler notices on its next read (bounded by the read timeout).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let report = server.report();
        if report.torn >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "torn counter never moved: {report:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.ledger_total_spent(), 0.0, "torn request spent ε");
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 0);
    assert!(outcome.report.torn >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_response_is_replayed_not_respent() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::reset_global();
    let dir = temp_dir("torn-resp");
    let server = start_server(&dir, 100.0);
    let addr = server.local_addr();

    // First attempt: the spend journals, then the response write is cut.
    failpoint::arm_global("serve.net.write_short", FailSpec::times(1));
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(2_000)))
            .expect("timeout");
        stream
            .write_all(protect_request(3, 17).as_bytes())
            .expect("write");
        let mut tail = Vec::new();
        let _ = stream.read_to_end(&mut tail);
        // The cut must be observable: fewer bytes than a full frame.
        assert!(
            frame_end(&tail).is_none(),
            "expected a torn response, got {:?}",
            String::from_utf8_lossy(&tail)
        );
    }
    assert_eq!(failpoint::fired("serve.net.write_short"), 1);
    failpoint::disarm_global("serve.net.write_short");
    assert!(
        (server.ledger_total_spent() - EPS).abs() < 1e-12,
        "the spend was journaled before the tear"
    );

    // Retry with the same (user, id): the journaled outcome replays
    // verbatim; no second spend.
    let replay = raw_exchange(addr, &protect_request(3, 17));
    assert!(replay.contains("200 OK"), "{replay}");
    assert!(replay.contains(r#""status":"served""#), "{replay}");
    assert!(
        (server.ledger_total_spent() - EPS).abs() < 1e-12,
        "replay must not spend again"
    );
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 1, "one logical serve");
    assert_eq!(outcome.retried, 1, "one idempotent replay");
    assert!(outcome.report.torn >= 1);
    failpoint::reset_global();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_array_is_answered_in_order() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("pipeline");
    let server = start_server(&dir, 100.0);
    let items: Vec<String> = (0..8)
        .map(|i| format!(r#"{{"user":{},"id":{i},"x":{}.5,"y":1.0}}"#, i % 3, i % 4))
        .collect();
    let body = format!("[{}]", items.join(","));
    let request = format!(
        "POST /protect HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let response = raw_exchange(server.local_addr(), &request);
    assert!(response.contains("200 OK"), "{response}");
    assert_eq!(
        response.matches(r#""status":"served""#).count(),
        8,
        "{response}"
    );
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 8);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn connections_beyond_the_cap_are_shed_with_an_explicit_503() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("conn-cap");
    let config = WireConfig {
        max_connections: 1,
        ..wire_config()
    };
    let server = WireServer::start(
        mechanism(),
        sharded(&dir, 100.0, 2),
        Arc::new(SystemClock),
        config,
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();
    // First connection occupies the only slot (prove it works end to
    // end), then further connections must get the explicit refusal.
    let mut held = TcpStream::connect(addr).expect("first connect");
    held.set_read_timeout(Some(Duration::from_millis(2_000)))
        .expect("timeout");
    held.write_all(protect_request(1, 1).as_bytes())
        .expect("write");
    let mut buf = [0u8; 4096];
    let n = held.read(&mut buf).expect("first connection serves");
    assert!(String::from_utf8_lossy(&buf[..n]).contains("served"));

    let mut refused = 0u64;
    for _ in 0..3 {
        let response = raw_exchange(addr, ""); // refusal arrives unprompted
        if response.contains("too_many_connections") {
            refused += 1;
        }
    }
    assert!(refused >= 1, "no connection saw the 503 refusal");
    drop(held);
    let outcome = server.shutdown();
    assert!(outcome.report.shed_net >= refused);
    assert_eq!(outcome.report.served(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_shard_refuses_over_the_wire_while_healthy_shards_serve() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("shard-refuse");
    // Populate all four shards, then corrupt one on disk.
    {
        let ledger = sharded(&dir, 100.0, 4);
        for k in 0..4usize {
            let user = (0..64u64)
                .find(|&u| shard_of(u, 4) == k)
                .expect("user for shard");
            ledger.try_spend(user, EPS).expect("seed spend");
        }
        ledger.checkpoint_all().expect("checkpoint");
    }
    let bad = 2usize;
    let snap = dir.join(format!("shard-{bad}")).join("ledger.snap");
    let mut bytes = std::fs::read(&snap).expect("read snap");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&snap, &bytes).expect("corrupt snap");

    let server = WireServer::start(
        mechanism(),
        sharded(&dir, 100.0, 4),
        Arc::new(SystemClock),
        wire_config(),
        "127.0.0.1:0",
    )
    .expect("bind");
    assert_eq!(server.failed_shards().len(), 1);
    let addr = server.local_addr();

    let unlucky = (0..64)
        .find(|&u| shard_of(u, 4) == bad)
        .expect("user on bad shard");
    let lucky = (0..64)
        .find(|&u| shard_of(u, 4) != bad)
        .expect("user off bad shard");

    // The outage is typed, retryable, and names the shard — distinct
    // from a journal fault on a serving shard.
    let refusal = raw_exchange(addr, &protect_request(unlucky, 1));
    assert!(refusal.contains("503"), "{refusal}");
    assert!(
        refusal.contains(r#""status":"shard_unavailable""#),
        "{refusal}"
    );
    assert!(refusal.contains(r#""shard":2"#), "{refusal}");

    let served = raw_exchange(addr, &protect_request(lucky, 2));
    assert!(served.contains(r#""status":"served""#), "{served}");

    // /report exposes the failed shard for operators.
    let report = raw_exchange(addr, "GET /report HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(
        report.contains(r#""failed_shards":[{"shard":2,"#),
        "{report}"
    );
    // Readiness reflects the terminal failure (repair is off here).
    let health = raw_exchange(addr, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(health.contains("503"), "{health}");
    assert!(health.contains(r#""status":"degraded""#), "{health}");
    assert!(health.contains(r#""failed":1"#), "{health}");

    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 1);
    assert_eq!(outcome.report.refused_shard, 1, "typed shard refusal");
    assert_eq!(outcome.report.journal_faults, 0);
    assert_eq!(outcome.report.unaccounted_shards, 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Full online round trip, no restart: a shard whose WAL header was
/// corrupted opens quarantined, `GET /healthz` reports degraded,
/// `POST /repair` scavenges it back, readiness returns to `ready`, and
/// the very (user, id) that was refused during the outage is *served* on
/// retry — the retryable refusal released its idempotency key instead of
/// pinning the outage as that request's permanent answer.
#[test]
fn repair_over_the_wire_heals_a_quarantined_shard() {
    use geoind_serve::shard::RepairMode;
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("wire-repair");
    let bad = 2usize;
    let unlucky = (0..64)
        .find(|&u| shard_of(u, 4) == bad)
        .expect("user on bad shard");
    {
        let ledger = sharded(&dir, 100.0, 4);
        // No checkpoint: the spend lives in the WAL the corruption hits.
        ledger.try_spend(unlucky, EPS).expect("seed spend");
    }
    let wal = dir.join(format!("shard-{bad}")).join("ledger.wal");
    let mut bytes = std::fs::read(&wal).expect("read wal");
    bytes[9] ^= 0x20; // header integrity word: open refuses, scavenge salvages
    std::fs::write(&wal, &bytes).expect("corrupt wal header");

    let ledger = ShardedLedger::open_with_repair(
        &dir,
        LedgerConfig {
            cap_per_user: 100.0,
            epoch: 0,
            compact_after: 0,
        },
        4,
        RepairMode::Manual,
    );
    let server = WireServer::start(
        mechanism(),
        ledger,
        Arc::new(SystemClock),
        wire_config(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    let health = raw_exchange(addr, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(health.contains("503"), "{health}");
    assert!(health.contains(r#""status":"degraded""#), "{health}");
    assert!(health.contains(r#""quarantined":1"#), "{health}");

    let refusal = raw_exchange(addr, &protect_request(unlucky, 7));
    assert!(
        refusal.contains(r#""status":"shard_unavailable""#),
        "{refusal}"
    );

    let kicked = raw_exchange(addr, "POST /repair HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(kicked.contains(r#""started":1"#), "{kicked}");

    // Readiness flips back once the scavenge commits and the standard
    // open verifies it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let health = raw_exchange(addr, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        if health.contains(r#""status":"ready""#) {
            assert!(health.contains("200"), "{health}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "repair never completed: {health}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Same (user, id) as the refusal: served now, not replayed.
    let served = raw_exchange(addr, &protect_request(unlucky, 7));
    assert!(served.contains(r#""status":"served""#), "{served}");

    let outcome = server.shutdown();
    assert!(outcome.report.refused_shard >= 1);
    assert_eq!(outcome.report.repaired_shards, 1);
    assert_eq!(outcome.report.served(), 1);
    // Fail-closed across the round trip: the pre-outage spend and the
    // post-repair serve are both on the books, each exactly once.
    let reopened = sharded(&dir, 100.0, 4);
    let spent = reopened.spent(unlucky).expect("repaired shard serves");
    assert!(
        (spent - 2.0 * EPS).abs() < 1e-9,
        "salvage lost or double-charged: {spent}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A keep-alive connection that goes quiet is reaped once it idles past
/// `idle_timeout_ms`; the listener itself keeps serving new connections.
#[test]
fn idle_connections_are_reaped_after_the_timeout() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("idle-reap");
    let config = WireConfig {
        read_timeout_ms: 25,
        idle_timeout_ms: 100,
        ..wire_config()
    };
    let server = WireServer::start(
        mechanism(),
        sharded(&dir, 100.0, 2),
        Arc::new(SystemClock),
        config,
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(protect_request(1, 1).as_bytes())
        .expect("write");
    let mut buf = [0u8; 4096];
    let n = stream.read(&mut buf).expect("served before idling");
    assert!(n > 0, "no response before idle");

    // Go quiet: the reaper must close the socket (EOF) well before the
    // client's own 5s timeout would fire.
    let start = std::time::Instant::now();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break, // reaped
            Ok(_) => {}     // tail of the response frame
            Err(e) => panic!("expected EOF from the idle reaper, got {e}"),
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "idle reap took {:?}",
        start.elapsed()
    );

    // Only the idle connection died; the server still serves.
    let fresh = raw_exchange(addr, &protect_request(2, 2));
    assert!(fresh.contains(r#""status":"served""#), "{fresh}");
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Read exactly one HTTP response frame off an already-open stream
/// (keep-alive counterpart of [`raw_exchange`]).
fn read_one_frame(stream: &mut TcpStream) -> String {
    let mut pending = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(end) = frame_end(&pending) {
            return String::from_utf8_lossy(&pending[..end]).into_owned();
        }
        match stream.read(&mut buf) {
            Ok(0) => return String::from_utf8_lossy(&pending).into_owned(),
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e) => panic!("keep-alive read failed with {pending:?} buffered: {e}"),
        }
    }
}

fn protect_request_auth(user: u64, id: u64, token: &str) -> String {
    let body = format!(r#"{{"user":{user},"id":{id},"x":1.0,"y":2.0}}"#);
    format!(
        "POST /protect HTTP/1.1\r\nAuthorization: Bearer {token}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// A primary with a shipper attached: spends require the follower at
/// `--max-replica-lag` semantics (fail-closed before registration).
fn start_primary(dir: &std::path::Path, cap: f64, max_lag: u64) -> WireServer {
    let ledger = sharded(dir, cap, 4);
    let shipper = Shipper::new(ShipperConfig {
        dir: Some(dir.to_path_buf()),
        shards: 4,
        epoch: 0,
        max_lag,
        timeout_ms: 2_000,
        auth_token: None,
    })
    .expect("build shipper");
    assert!(ledger.attach_shipper(Arc::new(shipper)));
    WireServer::start(
        mechanism(),
        ledger,
        Arc::new(SystemClock),
        wire_config(),
        "127.0.0.1:0",
    )
    .expect("bind primary")
}

fn start_follower(dir: &std::path::Path, cap: f64) -> WireServer {
    WireServer::start(
        mechanism(),
        sharded(dir, cap, 4),
        Arc::new(SystemClock),
        WireConfig {
            standby: true,
            ..wire_config()
        },
        "127.0.0.1:0",
    )
    .expect("bind follower")
}

/// Satellite: Bearer auth. Requests without the token (or with a wrong
/// one) get a typed `401` that burns no budget; the right token — raw
/// or through the loadgen client — serves; `/healthz` stays open for
/// unauthenticated failover probes.
#[test]
fn bearer_auth_rejects_wrong_tokens_and_admits_the_right_one() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("auth");
    let server = WireServer::start(
        mechanism(),
        sharded(&dir, 100.0, 4),
        Arc::new(SystemClock),
        WireConfig {
            auth_token: Some("open-sesame".into()),
            ..wire_config()
        },
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    // The loadgen client carries the token and reconciles exactly (it
    // runs first: reconciliation demands the client's tallies match the
    // server's gate counters with nothing out of band).
    let report = run_load(&ClientConfig {
        auth_token: Some("open-sesame".into()),
        ..client_config(addr, 10)
    })
    .expect("authed load reconciles");
    assert_eq!(report.served, 10);

    // User/id outside the loadgen's (user = id % users, id < requests)
    // space above, so this raw serve is never a replay of one of its ids.
    let bare = raw_exchange(addr, &protect_request(42, 10_001));
    assert!(bare.contains("401"), "{bare}");
    assert!(bare.contains(r#""status":"unauthorized""#), "{bare}");
    let wrong = raw_exchange(addr, &protect_request_auth(42, 10_001, "open-sesame-NOT"));
    assert!(wrong.contains("401"), "{wrong}");
    assert!(
        (server.ledger_total_spent() - 10.0 * EPS).abs() < 1e-9,
        "401s must not spend"
    );

    let right = raw_exchange(addr, &protect_request_auth(42, 10_001, "open-sesame"));
    assert!(right.contains(r#""status":"served""#), "{right}");

    // Health stays unauthenticated: failover probes read standby state
    // without holding the secret.
    let health = raw_exchange(addr, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(!health.contains("401"), "{health}");
    assert!(health.contains(r#""standby":false"#), "{health}");

    let outcome = server.shutdown();
    assert_eq!(outcome.report.unauthorized, 2);
    assert_eq!(outcome.report.served(), 11);
    assert!(
        (server_spent(&dir) - 11.0 * EPS).abs() < 1e-9,
        "unauthorized requests reached the ledger"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a keep-alive client posting ever-fresh ids for
/// one user must not grow the idempotency table without bound — settled
/// entries are capped per user, oldest evicted first, and the evictions
/// are counted.
#[test]
fn idempotency_table_stays_bounded_under_unique_ids() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("idem-bound");
    let cap = 8usize;
    let server = WireServer::start(
        mechanism(),
        sharded(&dir, 1_000.0, 4),
        Arc::new(SystemClock),
        WireConfig {
            idem_max_per_user: cap,
            idem_ttl_ms: 0, // isolate the cap: no TTL sweeping
            ..wire_config()
        },
        "127.0.0.1:0",
    )
    .expect("bind");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(2_000)))
        .expect("timeout");
    let total = 40u64;
    for id in 0..total {
        stream
            .write_all(protect_request(1, id).as_bytes())
            .expect("write");
        let response = read_one_frame(&mut stream);
        assert!(response.contains(r#""status":"served""#), "{response}");
    }
    assert!(
        server.idem_entries() <= cap,
        "idempotency table grew to {} entries (cap {cap})",
        server.idem_entries()
    );

    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), total);
    assert_eq!(
        outcome.report.idem_evicted,
        total - cap as u64,
        "every settle past the cap evicts exactly the oldest entry"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole round trip over real sockets: a primary refuses spends
/// before any follower registers (fail-closed), ships every served
/// spend synchronously once one does, the follower refuses `/protect`
/// while in standby, promotion opens it for serving, and the stale
/// primary's very next spend is fenced — with the books on both
/// directories proving zero double-spend.
#[test]
fn replicated_standby_promotes_and_fences_the_stale_primary() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::reset_global();
    let primary_dir = temp_dir("repl-primary");
    let follower_dir = temp_dir("repl-follower");
    let follower = start_follower(&follower_dir, 100.0);
    let primary = start_primary(&primary_dir, 100.0, 8);
    let p_addr = primary.local_addr();
    let f_addr = follower.local_addr();

    // Fail-closed: with a lag bound configured and nobody to ship to,
    // the primary refuses rather than serving with unbounded lag.
    let lagged = raw_exchange(p_addr, &protect_request(1, 7_777));
    assert!(lagged.contains("503"), "{lagged}");
    assert!(lagged.contains(r#""status":"replica_lag""#), "{lagged}");
    assert_eq!(
        primary.ledger_total_spent(),
        0.0,
        "refusal must pre-empt the spend"
    );

    register_with_primary(&p_addr.to_string(), &f_addr.to_string(), None, 2_000)
        .expect("follower registers");

    // A standby never spends on its own.
    let standby = raw_exchange(f_addr, &protect_request(1, 7_778));
    assert!(standby.contains(r#""status":"standby""#), "{standby}");

    let report = run_load(&client_config(p_addr, 20)).expect("replicated load reconciles");
    assert_eq!(report.served, 20);

    // Every serve was acked durable on the follower before answering.
    let f_report = raw_exchange(f_addr, "GET /report HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(f_report.contains(r#""replica_applied":20"#), "{f_report}");

    let promoted = raw_exchange(
        f_addr,
        "POST /promote HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(promoted.contains(r#""status":"promoted""#), "{promoted}");
    assert!(promoted.contains(r#""gen":2"#), "{promoted}");
    assert!(!follower.standby(), "promotion opens /protect");
    let f_served = raw_exchange(f_addr, &protect_request(1, 9_000));
    assert!(f_served.contains(r#""status":"served""#), "{f_served}");

    // The stale primary's next spend journals locally, ships, and is
    // refused by the newer-generation follower: hard-fenced, refused,
    // and refused again without even reaching the wire.
    let fenced = raw_exchange(p_addr, &protect_request(1, 9_001));
    assert!(fenced.contains("503"), "{fenced}");
    assert!(fenced.contains(r#""status":"fenced""#), "{fenced}");
    let fenced_again = raw_exchange(p_addr, &protect_request(2, 9_002));
    assert!(
        fenced_again.contains(r#""status":"fenced""#),
        "{fenced_again}"
    );

    let p_outcome = primary.shutdown();
    assert_eq!(p_outcome.report.served(), 20);
    assert!(p_outcome.report.replica_lag >= 1);
    assert!(p_outcome.report.fenced >= 2);
    let f_outcome = follower.shutdown();
    assert_eq!(f_outcome.report.served(), 1, "one post-promotion serve");
    assert!(f_outcome.report.fenced >= 1, "the stale batch was counted");

    // Zero double-spend: the follower holds exactly the 20 replicated
    // spends plus its own serve. The fenced primary's first refused
    // spend is journaled locally (over-counting is the safe direction);
    // the second was pre-empted before spending.
    assert!(
        (server_spent(&follower_dir) - 21.0 * EPS).abs() < 1e-9,
        "follower books drifted: {}",
        server_spent(&follower_dir)
    );
    assert!(
        (server_spent(&primary_dir) - 21.0 * EPS).abs() < 1e-9,
        "primary books drifted: {}",
        server_spent(&primary_dir)
    );
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

/// Tentpole fault sweep: each `serve.repl.*` failpoint fires mid-run
/// and the system still reconciles exactly, with the follower's books
/// matching the primary's serve count — retransmits dedup by sequence,
/// so a lost ack or torn ship never double-spends.
#[test]
fn every_replication_failpoint_preserves_exact_books_on_both_nodes() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    for site in [
        "serve.repl.ship_torn",
        "serve.repl.ack_lost",
        "serve.repl.stale_gen",
    ] {
        failpoint::reset_global();
        let tag = site.replace('.', "-");
        let primary_dir = temp_dir(&format!("sweep-{tag}-p"));
        let follower_dir = temp_dir(&format!("sweep-{tag}-f"));
        let follower = start_follower(&follower_dir, 100.0);
        let primary = start_primary(&primary_dir, 100.0, 8);
        register_with_primary(
            &primary.local_addr().to_string(),
            &follower.local_addr().to_string(),
            None,
            2_000,
        )
        .expect("follower registers");

        // Two consecutive ship failures: the in-request retry loop must
        // absorb them without surfacing a refusal to the client.
        failpoint::arm_global(site, FailSpec::after(2, 2));
        let result = run_load(&client_config(primary.local_addr(), 20));
        let fired = failpoint::fired(site);
        failpoint::disarm_global(site);
        let report = result.unwrap_or_else(|e| panic!("{site}: {e}"));
        assert_eq!(report.served, 20, "{site}");
        assert_eq!(report.total(), 20, "{site}");
        assert!(fired > 0, "{site} never fired");

        let p_outcome = primary.shutdown();
        assert_eq!(p_outcome.report.served(), 20, "{site}");
        follower.shutdown();
        assert!(
            (server_spent(&primary_dir) - 20.0 * EPS).abs() < 1e-9,
            "{site}: primary spend drifted"
        );
        assert!(
            (server_spent(&follower_dir) - 20.0 * EPS).abs() < 1e-9,
            "{site}: follower double-applied or lost records"
        );
        std::fs::remove_dir_all(&primary_dir).ok();
        std::fs::remove_dir_all(&follower_dir).ok();
    }
    failpoint::reset_global();
}

#[test]
fn single_spend_ledger_still_drives_the_wire() {
    let _guard = NET_FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    // The pre-shard construction keeps working through the façade.
    let dir = temp_dir("single-ledger");
    let inner = SpendLedger::open(
        &dir,
        LedgerConfig {
            cap_per_user: 2.0 * EPS,
            epoch: 0,
            compact_after: 0,
        },
    )
    .expect("open ledger");
    let server = WireServer::start(
        mechanism(),
        ShardedLedger::single(inner),
        Arc::new(SystemClock),
        wire_config(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();
    for id in 0..2 {
        let response = raw_exchange(addr, &protect_request(9, id));
        assert!(response.contains("served"), "{response}");
    }
    let refused = raw_exchange(addr, &protect_request(9, 2));
    assert!(refused.contains("budget_exhausted"), "{refused}");
    let outcome = server.shutdown();
    assert_eq!(outcome.report.served(), 2);
    assert_eq!(outcome.report.refused_budget, 1);
    std::fs::remove_dir_all(&dir).ok();
}
