//! Figures 6 and 7 — utility loss of MSM vs planar Laplace as ε varies.
//!
//! For both datasets, `g ∈ {4, 6}` and `ε ∈ {0.1, …, 0.9}`, the paper plots
//! the mean loss of PL (remapped to the effective grid) and MSM under the
//! Euclidean metric (Fig. 6) and the squared Euclidean metric (Fig. 7).
//! Expected shape: both fall with ε; MSM wins by a large factor at small ε
//! (≈3× for `d`, ≈5× for `d²` at ε = 0.1) and the gap narrows toward ε = 1.

use crate::config::Config;
use crate::report::{fnum, Table};
use crate::workloads::{cities, msm_prior, City};
use geoind_core::eval::Evaluator;
use geoind_core::metrics::QualityMetric;
use geoind_core::msm::MsmMechanism;
use geoind_core::planar_laplace::PlanarLaplace;
use geoind_core::Mechanism;
use geoind_spatial::grid::Grid;

/// The ε sweep of the figures.
pub const EPSILONS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// The per-level granularities plotted.
pub const GS: [u32; 2] = [4, 6];

/// Run for one quality metric (Fig. 6 = Euclidean, Fig. 7 = squared).
pub fn run(cfg: &Config, metric: QualityMetric) -> Vec<Table> {
    let fig = if metric == QualityMetric::Euclidean {
        "Fig 6"
    } else {
        "Fig 7"
    };
    cities(cfg)
        .iter()
        .map(|c| one_city(cfg, c, metric, fig))
        .collect()
}

fn one_city(cfg: &Config, city: &City, metric: QualityMetric, fig: &str) -> Table {
    let mut table = Table::new(
        format!(
            "{fig}: utility loss ({}) vs eps, {} dataset",
            metric.unit(),
            city.name
        ),
        &[
            "eps",
            "PL g=4",
            "MSM g=4",
            "PL g=6",
            "MSM g=6",
            "msm_h(g4)",
            "msm_h(g6)",
        ],
    );
    for (i, &eps) in EPSILONS.iter().enumerate() {
        let mut cells = vec![fnum(eps)];
        let mut heights = Vec::new();
        for &g in &GS {
            let (pl_loss, msm_loss, h) =
                measure_pair(city, eps, g, metric, cfg.seed + 31 * i as u64 + g as u64);
            cells.push(fnum(pl_loss));
            cells.push(fnum(msm_loss));
            heights.push(h.to_string());
        }
        cells.extend(heights);
        table.push(cells);
    }
    table
}

/// Measure PL (remapped to MSM's effective leaf grid) and MSM for one
/// configuration. Returns `(pl_loss, msm_loss, msm_height)`.
pub fn measure_pair(
    city: &City,
    eps: f64,
    g: u32,
    metric: QualityMetric,
    seed: u64,
) -> (f64, f64, u32) {
    let msm = MsmMechanism::builder(city.dataset.domain(), msm_prior(&city.dataset, g))
        .epsilon(eps)
        .granularity(g)
        .rho(0.8)
        .metric(metric)
        .build()
        .expect("valid MSM config");
    // PL is remapped onto the same effective grid MSM reports on, as the
    // paper's benchmark does.
    let eff = msm.effective_granularity();
    let pl = PlanarLaplace::new(eps).with_grid_remap(Grid::new(city.dataset.domain(), eff));
    let msm_r = measure(&city.evaluator, &msm, metric, seed);
    let pl_r = measure(&city.evaluator, &pl, metric, seed + 1);
    (pl_r, msm_r, msm.height())
}

fn measure<M: Mechanism>(ev: &Evaluator, m: &M, metric: QualityMetric, seed: u64) -> f64 {
    ev.measure(m, metric, seed).mean_loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msm_beats_pl_at_tight_budgets_small_grid() {
        let mut cfg = Config::quick();
        cfg.queries = 150;
        let city = cities(&cfg).into_iter().next().unwrap();
        let (pl, msm, _) = measure_pair(&city, 0.1, 3, QualityMetric::Euclidean, 7);
        assert!(msm < pl, "MSM ({msm}) should beat PL ({pl}) at eps=0.1");
    }
}
