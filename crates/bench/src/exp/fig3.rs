//! Figure 3 — effect of grid granularity on OPT's utility and running time.
//!
//! The paper sweeps the plain optimal mechanism over a `g×g` grid of the
//! Gowalla region for `g = 2..11` at `ε = 0.5`, showing utility improving
//! while solve time explodes (hours past `g = 11`; `g = 12` never finished).
//! We sweep `g = 2..6` by default and to `g = 7` under `--full`: the cubic
//! constraint growth — and therefore the blow-up *shape* — is identical;
//! only the constant differs from the paper's Gurobi-on-Xeon setup.

use crate::config::Config;
use crate::report::{fnum, ftime, Table};
use crate::workloads::cities;
use geoind_core::metrics::QualityMetric;
use geoind_core::opt::OptimalMechanism;
use geoind_data::prior::GridPrior;
use geoind_spatial::grid::Grid;
use std::time::Instant;

/// Privacy budget used throughout Figure 3 (the paper's default).
pub const EPS: f64 = 0.5;

/// Run the sweep at the configured scale.
pub fn run(cfg: &Config) -> Vec<Table> {
    let max_g = if cfg.full {
        7
    } else if cfg.quick {
        4
    } else {
        6
    };
    run_to(cfg, max_g)
}

/// Run the sweep up to an explicit maximum granularity.
pub fn run_to(cfg: &Config, max_g: u32) -> Vec<Table> {
    let city = cities(cfg).into_iter().next().expect("gowalla city");
    let mut table = Table::new(
        "Fig 3: OPT utility loss and time vs granularity (Gowalla, eps=0.5)",
        &[
            "g",
            "cells",
            "lp_rows",
            "utility_km",
            "solve_time",
            "pivots",
            "ms_per_query",
        ],
    );
    for g in 2..=max_g {
        let grid = Grid::new(city.dataset.domain(), g);
        let prior = GridPrior::from_dataset(&city.dataset, g);
        let t = Instant::now();
        let opt = OptimalMechanism::on_grid(EPS, &grid, &prior, QualityMetric::Euclidean)
            .expect("OPT is feasible");
        let solve = t.elapsed().as_secs_f64();
        let report = city
            .evaluator
            .measure(&opt, QualityMetric::Euclidean, cfg.seed + g as u64);
        table.push(vec![
            g.to_string(),
            (g * g).to_string(),
            opt.stats().rows.to_string(),
            fnum(report.mean_loss),
            ftime(solve),
            opt.stats().iterations.to_string(),
            fnum(report.mean_time_s * 1e3),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows_with_growing_cost() {
        let mut cfg = Config::quick();
        cfg.queries = 50;
        let tables = run_to(&cfg, 3);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2); // g = 2, 3
    }
}
