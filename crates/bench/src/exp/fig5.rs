//! Figure 5 — accuracy of the Φ estimate behind the budget allocator.
//!
//! For each granularity `g` and target `ρ`, Algorithm 2 solves Problem 1
//! for the minimum level-1 budget; the figure then checks the *empirical*
//! self-map probability `Pr[x|x]` of the optimal mechanism run at that
//! budget (uniform prior, as in the paper). The paper reports agreement
//! within ±5 % except at `g = 2`.

use crate::config::Config;
use crate::report::{fnum, Table};
use geoind_core::alloc::BudgetAllocator;
use geoind_core::metrics::QualityMetric;
use geoind_core::opt::OptimalMechanism;
use geoind_data::prior::GridPrior;
use geoind_spatial::geom::BBox;
use geoind_spatial::grid::Grid;

/// Region side used by the paper's datasets (km).
pub const REGION_SIDE: f64 = 20.0;

/// The ρ values plotted in the figure.
pub const RHOS: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];

/// Run at the configured scale.
pub fn run(cfg: &Config) -> Vec<Table> {
    let max_g = if cfg.full {
        7
    } else if cfg.quick {
        4
    } else {
        6
    };
    run_range(2, max_g)
}

/// Run for an explicit granularity range.
pub fn run_range(min_g: u32, max_g: u32) -> Vec<Table> {
    let domain = BBox::square(REGION_SIDE);
    let mut table = Table::new(
        "Fig 5: empirical Pr[x|x] of OPT at the budget predicted by Phi (uniform prior)",
        &[
            "g",
            "rho=0.5",
            "rho=0.6",
            "rho=0.7",
            "rho=0.8",
            "rho=0.9",
            "max_abs_err",
        ],
    );
    for g in min_g..=max_g {
        let grid = Grid::new(domain, g);
        let prior = GridPrior::uniform(domain, g);
        let mut cells = vec![g.to_string()];
        let mut max_err = 0.0f64;
        for rho in RHOS {
            let eps1 = BudgetAllocator::new(REGION_SIDE, g, rho).min_budget_for_level(1);
            let opt = OptimalMechanism::on_grid(eps1, &grid, &prior, QualityMetric::Euclidean)
                .expect("OPT is feasible");
            // Φ models an interior lattice cell, so measure the most
            // central cell (edge/corner cells leak less and would bias the
            // estimate upward — visibly so at g=2, as the paper also notes).
            let empirical = opt.channel().central_self_probability();
            max_err = max_err.max((empirical - rho).abs());
            cells.push(fnum(empirical));
        }
        cells.push(fnum(max_err));
        table.push(cells);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grids_track_rho() {
        let tables = run_range(3, 4);
        assert_eq!(tables[0].len(), 2);
        // Parse the max_abs_err column: the paper claims <=5% beyond g=2;
        // give ourselves a slightly wider band on the synthetic setup.
        let rendered = tables[0].render();
        for line in rendered.lines().skip(3) {
            let err: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
            assert!(err < 0.08, "Phi estimate off by {err}: {line}");
        }
    }
}
