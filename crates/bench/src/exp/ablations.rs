//! Ablations for the design choices called out in DESIGN.md.
//!
//! * `abl-alloc` — Algorithm 2's cost-model allocation vs uniform and
//!   fixed-height splits.
//! * `abl-spanner` — δ-spanner constraint reduction vs the exact OPT
//!   formulation (utility premium vs LP size/time).
//! * `abl-index` — uniform-grid GIHI vs the prior-adaptive k-d partition
//!   and the adaptive quadtree on the skewed Yelp-like prior (the paper's
//!   Section-8 future work).
//! * `abl-remap` — Bayes-optimal post-processing of the PL baseline vs OPT
//!   (reference \[5\]'s utility-improvement claim).
//! * `abl-cache` — MSM's per-node channel memoization on vs off.

use crate::config::Config;
use crate::report::{fnum, ftime, Table};
use crate::workloads::{cities, msm_prior, City};
use geoind_core::alloc::AllocationStrategy;
use geoind_core::eval::Evaluator;
use geoind_core::metrics::QualityMetric;
use geoind_core::msm::MsmMechanism;
use geoind_core::opt::{ConstraintSet, OptOptions, OptimalMechanism};
use geoind_core::pmsm::{KdMsmMechanism, QuadMsmMechanism};
use geoind_data::prior::GridPrior;
use geoind_spatial::geom::Point;
use geoind_spatial::grid::Grid;
use geoind_spatial::kdpart::KdPartition;
use geoind_spatial::quadtree::AdaptiveQuadtree;
use std::time::Instant;

fn gowalla(cfg: &Config) -> City {
    cities(cfg).into_iter().next().expect("gowalla")
}

fn yelp(cfg: &Config) -> City {
    cities(cfg).into_iter().nth(1).expect("yelp")
}

/// Budget-allocation strategies head-to-head (g=3, ε=0.9 so that several
/// heights are affordable).
pub fn alloc(cfg: &Config) -> Vec<Table> {
    let city = gowalla(cfg);
    let eps = 0.9;
    let g = 3;
    let mut table = Table::new(
        "Ablation: budget allocation strategies (Gowalla, g=3, eps=0.9)",
        &["strategy", "height", "budgets", "loss_km"],
    );
    let strategies: [(&str, AllocationStrategy); 5] = [
        ("Auto (Alg. 2)", AllocationStrategy::Auto { max_height: 5 }),
        ("FixedHeight(2)", AllocationStrategy::FixedHeight(2)),
        ("FixedHeight(3)", AllocationStrategy::FixedHeight(3)),
        ("Uniform(2)", AllocationStrategy::Uniform(2)),
        ("Uniform(3)", AllocationStrategy::Uniform(3)),
    ];
    for (name, strategy) in strategies {
        let msm = MsmMechanism::builder(city.dataset.domain(), msm_prior(&city.dataset, g))
            .epsilon(eps)
            .granularity(g)
            .rho(0.8)
            .strategy(strategy)
            .build()
            .expect("valid MSM config");
        let r = city
            .evaluator
            .measure(&msm, QualityMetric::Euclidean, cfg.seed + 131);
        table.push(vec![
            name.into(),
            msm.height().to_string(),
            format!(
                "[{}]",
                msm.budgets()
                    .budgets()
                    .iter()
                    .map(|b| fnum(*b))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            fnum(r.mean_loss),
        ]);
    }
    vec![table]
}

/// Exact OPT vs δ-spanner constraint reduction.
pub fn spanner(cfg: &Config) -> Vec<Table> {
    let city = gowalla(cfg);
    let g = if cfg.quick { 3 } else { 5 };
    let eps = 0.5;
    let grid = Grid::new(city.dataset.domain(), g);
    let prior = GridPrior::from_dataset(&city.dataset, g);
    let mut table = Table::new(
        format!("Ablation: spanner constraint reduction (Gowalla, g={g}, eps=0.5)"),
        &["constraints", "lp_rows", "solve_time", "loss_km"],
    );
    let mut run_one = |label: String, constraints: ConstraintSet| {
        let t = Instant::now();
        let opt = OptimalMechanism::solve_with(
            eps,
            &grid.centers(),
            prior.probs(),
            QualityMetric::Euclidean,
            OptOptions {
                constraints,
                ..OptOptions::default()
            },
        )
        .expect("OPT feasible");
        let solve = t.elapsed().as_secs_f64();
        let r = city
            .evaluator
            .measure(&opt, QualityMetric::Euclidean, cfg.seed + 137);
        table.push(vec![
            label,
            opt.stats().rows.to_string(),
            ftime(solve),
            fnum(r.mean_loss),
        ]);
    };
    run_one("exact (full)".into(), ConstraintSet::Full);
    for delta in [1.1, 1.5, 2.0] {
        run_one(
            format!("spanner d={delta}"),
            ConstraintSet::Spanner { dilation: delta },
        );
    }
    vec![table]
}

/// Uniform-grid GIHI vs prior-adaptive k-d partition on the skewed prior.
pub fn index(cfg: &Config) -> Vec<Table> {
    let city = yelp(cfg);
    let eps = 0.5;
    let mut table = Table::new(
        "Ablation: grid vs k-d vs quadtree index (Yelp, eps=0.5, fanout 4)",
        &["index", "height", "loss_km", "ms_per_query"],
    );
    let pts: Vec<Point> = city.dataset.locations().collect();
    for h in [2u32, 3] {
        // Grid MSM: g=2 gives the same fan-out 4 per node.
        let msm = MsmMechanism::builder(city.dataset.domain(), msm_prior(&city.dataset, 2))
            .epsilon(eps)
            .granularity(2)
            .rho(0.8)
            .strategy(AllocationStrategy::FixedHeight(h))
            .build()
            .expect("valid MSM config");
        let budgets = msm.budgets().budgets().to_vec();
        let r = city
            .evaluator
            .measure(&msm, QualityMetric::Euclidean, cfg.seed + 139);
        table.push(vec![
            "uniform grid (g=2)".into(),
            h.to_string(),
            fnum(r.mean_loss),
            fnum(r.mean_time_s * 1e3),
        ]);
        // Kd MSM over the same fan-out/height with identical budgets.
        let part = KdPartition::build(city.dataset.domain(), &pts, 4, h);
        let kd = KdMsmMechanism::new(part, budgets.clone(), QualityMetric::Euclidean)
            .expect("valid KdMSM config");
        let r = city
            .evaluator
            .measure(&kd, QualityMetric::Euclidean, cfg.seed + 140);
        table.push(vec![
            "k-d partition".into(),
            h.to_string(),
            fnum(r.mean_loss),
            fnum(r.mean_time_s * 1e3),
        ]);
        // Adaptive quadtree with the same depth cap and budgets; the leaf
        // cap keeps roughly the same number of leaves as the uniform grid.
        let cap = (city.dataset.len() / 4usize.pow(h)).max(1);
        let qt = AdaptiveQuadtree::build(city.dataset.domain(), &pts, cap, h);
        let quad = QuadMsmMechanism::new(qt, budgets, QualityMetric::Euclidean)
            .expect("valid QuadMSM config");
        let r = city
            .evaluator
            .measure(&quad, QualityMetric::Euclidean, cfg.seed + 141);
        table.push(vec![
            "adaptive quadtree".into(),
            h.to_string(),
            fnum(r.mean_loss),
            fnum(r.mean_time_s * 1e3),
        ]);
    }
    vec![table]
}

/// Bayes-optimal remapping of the PL baseline (Chatzikokolakis et al.,
/// reference \[5\] of the paper): how much utility does post-processing
/// recover, and how close does it get to OPT?
pub fn remap(cfg: &Config) -> Vec<Table> {
    use geoind_core::remap::{empirical_channel, RemappedMechanism};
    use geoind_rng::SeededRng;
    let city = gowalla(cfg);
    let g = if cfg.quick { 3 } else { 5 };
    let eps = 0.3;
    let grid = Grid::new(city.dataset.domain(), g);
    let prior = GridPrior::from_dataset(&city.dataset, g);
    let metric = QualityMetric::SqEuclidean;
    let mut table = Table::new(
        format!("Ablation: Bayes-optimal remapping (Gowalla, g={g}, eps={eps}, d^2)"),
        &["mechanism", "loss_km2"],
    );
    let pl = || geoind_core::planar_laplace::PlanarLaplace::new(eps).with_grid_remap(grid.clone());
    let r = city.evaluator.measure(&pl(), metric, cfg.seed + 151);
    table.push(vec!["PL + grid snap".into(), fnum(r.mean_loss)]);

    let mut rng = SeededRng::from_seed(cfg.seed + 152);
    let centers = grid.centers();
    let samples = if cfg.quick { 1_000 } else { 5_000 };
    let channel = empirical_channel(&pl(), &centers, &centers, samples, &mut rng);
    let remapped = RemappedMechanism::new(pl(), &channel, prior.probs().to_vec(), metric)
        .expect("valid remap");
    let r = city.evaluator.measure(&remapped, metric, cfg.seed + 153);
    table.push(vec!["PL + Bayes remap".into(), fnum(r.mean_loss)]);

    let opt = OptimalMechanism::on_grid(eps, &grid, &prior, metric).expect("OPT feasible");
    let r = city.evaluator.measure(&opt, metric, cfg.seed + 154);
    table.push(vec!["OPT (reference)".into(), fnum(r.mean_loss)]);
    vec![table]
}

/// Channel memoization on vs off.
pub fn cache(cfg: &Config) -> Vec<Table> {
    let city = gowalla(cfg);
    let g = if cfg.quick { 3 } else { 5 };
    let queries =
        Evaluator::new(city.evaluator.queries()[..cfg.effective_queries().min(50)].to_vec());
    let mut table = Table::new(
        format!("Ablation: MSM channel cache (Gowalla, g={g}, eps=0.5, 50 queries)"),
        &["caching", "total_time", "ms_per_query", "loss_km"],
    );
    for caching in [true, false] {
        let msm = MsmMechanism::builder(city.dataset.domain(), msm_prior(&city.dataset, g))
            .epsilon(0.5)
            .granularity(g)
            .rho(0.8)
            .caching(caching)
            .build()
            .expect("valid MSM config");
        let r = queries.measure(&msm, QualityMetric::Euclidean, cfg.seed + 149);
        table.push(vec![
            if caching { "on" } else { "off" }.into(),
            ftime(r.total_time_s),
            fnum(r.mean_time_s * 1e3),
            fnum(r.mean_loss),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_ablation_produces_all_strategies() {
        let mut cfg = Config::quick();
        cfg.queries = 40;
        let t = alloc(&cfg);
        assert_eq!(t[0].len(), 5);
    }

    #[test]
    fn index_ablation_compares_all_indexes_at_both_heights() {
        let mut cfg = Config::quick();
        cfg.queries = 40;
        let t = index(&cfg);
        assert_eq!(t[0].len(), 6);
    }
}
