//! Figures 8 and 9 — utility loss of MSM as the granularity varies.
//!
//! For both datasets, `g ∈ {2..6}` and `ρ ∈ {0.5, 0.7, 0.9}` at `ε = 0.5`,
//! under the Euclidean (Fig. 8) and squared Euclidean (Fig. 9) metrics.
//! Expected shape: a "U" — loss falls as the grid refines, then rises once
//! high granularity forces cross-cell reports and budget starvation at the
//! lower levels.

use crate::config::Config;
use crate::report::{fnum, Table};
use crate::workloads::{cities, msm_prior, City};
use geoind_core::metrics::QualityMetric;
use geoind_core::msm::MsmMechanism;

/// Total budget used by the figures.
pub const EPS: f64 = 0.5;

/// The ρ settings plotted as separate lines.
pub const RHOS: [f64; 3] = [0.5, 0.7, 0.9];

/// Run for one quality metric (Fig. 8 = Euclidean, Fig. 9 = squared).
pub fn run(cfg: &Config, metric: QualityMetric) -> Vec<Table> {
    let fig = if metric == QualityMetric::Euclidean {
        "Fig 8"
    } else {
        "Fig 9"
    };
    let max_g = if cfg.quick { 4 } else { 6 };
    cities(cfg)
        .iter()
        .map(|c| one_city(cfg, c, metric, fig, max_g))
        .collect()
}

fn one_city(cfg: &Config, city: &City, metric: QualityMetric, fig: &str, max_g: u32) -> Table {
    let mut table = Table::new(
        format!(
            "{fig}: MSM utility loss ({}) vs granularity, {} dataset (eps=0.5)",
            metric.unit(),
            city.name
        ),
        &[
            "g", "rho=0.5", "rho=0.7", "rho=0.9", "h(0.5)", "h(0.7)", "h(0.9)",
        ],
    );
    for g in 2..=max_g {
        let mut losses = Vec::new();
        let mut heights = Vec::new();
        for (i, &rho) in RHOS.iter().enumerate() {
            let (loss, h) = measure_msm(city, g, rho, metric, cfg.seed + 57 + i as u64);
            losses.push(fnum(loss));
            heights.push(h.to_string());
        }
        let mut cells = vec![g.to_string()];
        cells.extend(losses);
        cells.extend(heights);
        table.push(cells);
    }
    table
}

/// Build and measure one MSM configuration; returns `(loss, height)`.
pub fn measure_msm(city: &City, g: u32, rho: f64, metric: QualityMetric, seed: u64) -> (f64, u32) {
    let msm = MsmMechanism::builder(city.dataset.domain(), msm_prior(&city.dataset, g))
        .epsilon(EPS)
        .granularity(g)
        .rho(rho)
        .metric(metric)
        .build()
        .expect("valid MSM config");
    let loss = city.evaluator.measure(&msm, metric, seed).mean_loss;
    (loss, msm.height())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::cities;

    #[test]
    fn g2_produces_multi_level_index_at_default_eps() {
        let mut cfg = Config::quick();
        cfg.queries = 100;
        let city = cities(&cfg).into_iter().next().unwrap();
        let (loss, h) = measure_msm(&city, 2, 0.7, QualityMetric::Euclidean, 3);
        assert!(
            h >= 2,
            "g=2 at eps=0.5 should afford multiple levels, got h={h}"
        );
        assert!(loss > 0.0);
    }
}
