//! One module per reproduced table/figure, plus the ablations.
//!
//! Every runner takes the shared [`Config`] and
//! returns the tables it produced; the CLI prints them and mirrors them to
//! CSV.

pub mod ablations;
pub mod charts;
pub mod fig10_11;
pub mod fig3;
pub mod fig5;
pub mod fig6_7;
pub mod fig8_9;
pub mod table2;

use crate::config::Config;
use crate::report::Table;

/// All experiment names understood by the CLI, in run order for `all`.
pub const ALL: &[&str] = &[
    "fig3",
    "fig5",
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "abl-alloc",
    "abl-spanner",
    "abl-index",
    "abl-remap",
    "abl-cache",
];

/// Dispatch one experiment by name.
///
/// # Panics
/// Panics on an unknown experiment name (the CLI validates first).
pub fn run(name: &str, cfg: &Config) -> Vec<Table> {
    match name {
        "fig3" => fig3::run(cfg),
        "fig5" => fig5::run(cfg),
        "table2" => table2::run(cfg),
        "fig6" => fig6_7::run(cfg, geoind_core::metrics::QualityMetric::Euclidean),
        "fig7" => fig6_7::run(cfg, geoind_core::metrics::QualityMetric::SqEuclidean),
        "fig8" => fig8_9::run(cfg, geoind_core::metrics::QualityMetric::Euclidean),
        "fig9" => fig8_9::run(cfg, geoind_core::metrics::QualityMetric::SqEuclidean),
        "fig10" => fig10_11::run(cfg, geoind_core::metrics::QualityMetric::Euclidean),
        "fig11" => fig10_11::run(cfg, geoind_core::metrics::QualityMetric::SqEuclidean),
        "abl-alloc" => ablations::alloc(cfg),
        "abl-spanner" => ablations::spanner(cfg),
        "abl-index" => ablations::index(cfg),
        "abl-remap" => ablations::remap(cfg),
        "abl-cache" => ablations::cache(cfg),
        other => panic!("unknown experiment: {other}"),
    }
}
