//! Figures 10 and 11 — utility loss of MSM as the self-map target ρ varies.
//!
//! For both datasets, `ρ ∈ {0.5..0.9}` and `g ∈ {2, 4, 6}` at `ε = 0.5`,
//! under the Euclidean (Fig. 10) and squared Euclidean (Fig. 11) metrics.
//! Expected shape: a clear decreasing trend at `g = 2` (smooth level
//! transitions); non-monotone at `g = 4` (budget starvation past a point);
//! roughly flat at `g = 6` (starvation everywhere — a single level gets the
//! entire budget regardless of ρ).

use crate::config::Config;
use crate::exp::fig8_9;
use crate::report::{fnum, Table};
use crate::workloads::{cities, City};
use geoind_core::metrics::QualityMetric;

/// The ρ sweep.
pub const RHOS: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];

/// The granularities plotted as separate lines.
pub const GS: [u32; 3] = [2, 4, 6];

/// Run for one quality metric (Fig. 10 = Euclidean, Fig. 11 = squared).
pub fn run(cfg: &Config, metric: QualityMetric) -> Vec<Table> {
    let fig = if metric == QualityMetric::Euclidean {
        "Fig 10"
    } else {
        "Fig 11"
    };
    cities(cfg)
        .iter()
        .map(|c| one_city(cfg, c, metric, fig))
        .collect()
}

fn one_city(cfg: &Config, city: &City, metric: QualityMetric, fig: &str) -> Table {
    let gs: &[u32] = if cfg.quick { &GS[..2] } else { &GS };
    let mut headers: Vec<String> = vec!["rho".into()];
    headers.extend(gs.iter().map(|g| format!("g={g}")));
    headers.extend(gs.iter().map(|g| format!("h(g={g})")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!(
            "{fig}: MSM utility loss ({}) vs rho, {} dataset (eps=0.5)",
            metric.unit(),
            city.name
        ),
        &header_refs,
    );
    for (i, &rho) in RHOS.iter().enumerate() {
        let mut losses = Vec::new();
        let mut heights = Vec::new();
        for &g in gs {
            let (loss, h) = fig8_9::measure_msm(city, g, rho, metric, cfg.seed + 91 + i as u64);
            losses.push(fnum(loss));
            heights.push(h.to_string());
        }
        let mut cells = vec![fnum(rho)];
        cells.extend(losses);
        cells.extend(heights);
        table.push(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_rhos() {
        let mut cfg = Config::quick();
        cfg.queries = 60;
        let tables = run(&cfg, QualityMetric::Euclidean);
        assert_eq!(tables.len(), 2); // both datasets
        assert_eq!(tables[0].len(), RHOS.len());
    }
}
