//! Derive terminal charts from the figure tables.
//!
//! The figure runners emit numeric tables with the x-variable in the first
//! column and one series per subsequent numeric column (auxiliary columns
//! like index heights are excluded by name). This module turns those tables
//! back into the line plots the paper prints.

use crate::chart::{render, Series};
use crate::report::Table;

/// Build charts for an experiment's tables, aligned one entry per table
/// (`None` where a table is not plottable). Non-figure experiments yield
/// an empty vector.
pub fn charts_for(experiment: &str, tables: &[Table]) -> Vec<Option<String>> {
    let (x_label, y_label) = match experiment {
        "fig3" => ("g", "km / seconds"),
        "fig5" => ("g", "Pr[x|x]"),
        "fig6" | "fig8" | "fig10" => ("x", "km"),
        "fig7" | "fig9" | "fig11" => ("x", "km^2"),
        _ => return Vec::new(),
    };
    tables
        .iter()
        .map(|t| table_chart(t, x_label, y_label))
        .collect()
}

/// Convert one table to a chart: first column = x, numeric columns whose
/// header is not an auxiliary (`h(...)`, `*_err`, counts/times) = series.
fn table_chart(table: &Table, x_label: &str, y_label: &str) -> Option<String> {
    let headers = table.headers();
    if headers.len() < 2 || table.rows().is_empty() {
        return None;
    }
    let xs: Vec<f64> = table
        .rows()
        .iter()
        .map(|r| r[0].parse::<f64>())
        .collect::<Result<_, _>>()
        .ok()?;
    let mut series = Vec::new();
    for (ci, h) in headers.iter().enumerate().skip(1) {
        if is_auxiliary(h) {
            continue;
        }
        let mut points = Vec::new();
        for (ri, row) in table.rows().iter().enumerate() {
            if let Ok(y) = row[ci].parse::<f64>() {
                points.push((xs[ri], y));
            }
        }
        if points.len() >= 2 {
            series.push(Series {
                name: h.clone(),
                points,
            });
        }
    }
    if series.is_empty() {
        return None;
    }
    let chart = render(&table.title, x_label, y_label, &series);
    (!chart.is_empty()).then_some(chart)
}

fn is_auxiliary(header: &str) -> bool {
    header.starts_with("h(")
        || header.starts_with("msm_h")
        || header.ends_with("_err")
        || header.contains("time")
        || header.contains("pivot")
        || header.contains("rows")
        || header.contains("cells")
        || header.contains("ms_per_query")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig_like_table() -> Table {
        let mut t = Table::new("Fig X", &["eps", "PL g=4", "MSM g=4", "msm_h(g4)"]);
        t.push(vec!["0.1".into(), "8.7".into(), "4.6".into(), "1".into()]);
        t.push(vec!["0.5".into(), "4.2".into(), "3.1".into(), "1".into()]);
        t.push(vec!["0.9".into(), "2.2".into(), "2.2".into(), "2".into()]);
        t
    }

    #[test]
    fn figure_tables_become_charts() {
        let charts = charts_for("fig6", &[fig_like_table()]);
        assert_eq!(charts.len(), 1);
        let chart = charts[0].as_deref().unwrap();
        assert!(chart.contains("PL g=4"));
        assert!(chart.contains("MSM g=4"));
        // The auxiliary height column is not plotted.
        assert!(!chart.contains("msm_h"));
    }

    #[test]
    fn non_figure_experiments_yield_none() {
        assert!(charts_for("table2", &[fig_like_table()]).is_empty());
        assert!(charts_for("abl-cache", &[fig_like_table()]).is_empty());
    }

    #[test]
    fn non_numeric_first_column_yields_aligned_none() {
        let mut t = Table::new("T", &["strategy", "loss"]);
        t.push(vec!["Auto".into(), "2.5".into()]);
        let charts = charts_for("fig6", &[t, fig_like_table()]);
        assert_eq!(charts.len(), 2);
        assert!(charts[0].is_none());
        assert!(charts[1].is_some());
    }
}
