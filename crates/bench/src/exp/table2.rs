//! Table 2 — MSM vs OPT at matched effective granularity (Gowalla, ε=0.5).
//!
//! Paper rows: OPT on a `4×4` / `9×9` / `16×16` grid against MSM with
//! `g = 2 / 3 / 4` and two levels (so the leaf level matches OPT's grid).
//! The paper could not finish OPT at `16×16` within 72 hours; we keep the
//! same row with OPT marked as skipped. OPT at `9×9` (81 locations,
//! ~0.5 M constraints) takes tens of minutes on this solver and runs only
//! under `--full`.

use crate::config::Config;
use crate::report::{fnum, ftime, Table};
use crate::workloads::{cities, msm_prior};
use geoind_core::alloc::AllocationStrategy;
use geoind_core::eval::Evaluator;
use geoind_core::metrics::QualityMetric;
use geoind_core::msm::MsmMechanism;
use geoind_core::opt::OptimalMechanism;
use geoind_data::prior::GridPrior;
use geoind_spatial::grid::Grid;
use std::time::Instant;

/// Privacy budget for the whole table (paper default).
pub const EPS: f64 = 0.5;

/// Run the comparison.
pub fn run(cfg: &Config) -> Vec<Table> {
    let city = cities(cfg).into_iter().next().expect("gowalla city");
    let mut table = Table::new(
        "Table 2: MSM vs OPT at matched effective granularity (Gowalla, eps=0.5)",
        &[
            "eff_grid",
            "msm_g",
            "opt_loss_km",
            "msm_loss_km",
            "opt_time",
            "msm_ms_per_query",
        ],
    );
    for (opt_g, msm_g) in [(4u32, 2u32), (9, 3), (16, 4)] {
        // OPT side: 4x4 always; 9x9 only under --full; 16x16 never (the
        // paper's own 72h+ row).
        let (opt_loss, opt_time) = if opt_g == 4 || (opt_g == 9 && cfg.full) {
            let grid = Grid::new(city.dataset.domain(), opt_g);
            let prior = GridPrior::from_dataset(&city.dataset, opt_g);
            let t = Instant::now();
            let opt = OptimalMechanism::on_grid(EPS, &grid, &prior, QualityMetric::Euclidean)
                .expect("OPT feasible");
            let solve = t.elapsed().as_secs_f64();
            let r = city
                .evaluator
                .measure(&opt, QualityMetric::Euclidean, cfg.seed + 17);
            (fnum(r.mean_loss), ftime(solve))
        } else if opt_g == 9 {
            ("(--full)".into(), "(--full)".into())
        } else {
            ("—".into(), "72h+ (paper)".into())
        };
        let (msm_loss, msm_time) = measure_msm(&city.evaluator, &city.dataset, msm_g, cfg);
        table.push(vec![
            format!("{opt_g}x{opt_g}"),
            msm_g.to_string(),
            opt_loss,
            msm_loss,
            opt_time,
            msm_time,
        ]);
    }
    vec![table]
}

fn measure_msm(
    evaluator: &Evaluator,
    dataset: &geoind_data::checkin::Dataset,
    g: u32,
    cfg: &Config,
) -> (String, String) {
    let msm = MsmMechanism::builder(dataset.domain(), msm_prior(dataset, g))
        .epsilon(EPS)
        .granularity(g)
        .rho(0.8)
        .strategy(AllocationStrategy::FixedHeight(2))
        .build()
        .expect("valid MSM config");
    let r = evaluator.measure(&msm, QualityMetric::Euclidean, cfg.seed + 18 + g as u64);
    (fnum(r.mean_loss), fnum(r.mean_time_s * 1e3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msm_side_runs_quickly() {
        let mut cfg = Config::quick();
        cfg.queries = 50;
        let city = cities(&cfg).into_iter().next().unwrap();
        let (loss, _) = measure_msm(&city.evaluator, &city.dataset, 2, &cfg);
        let v: f64 = loss.parse().unwrap();
        assert!(v > 0.0 && v < 15.0, "implausible loss {v}");
    }
}
