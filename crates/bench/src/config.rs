//! Shared experiment configuration.

use std::path::PathBuf;

/// Knobs shared by every experiment runner.
#[derive(Debug, Clone)]
pub struct Config {
    /// Queries per measurement (paper: 3,000).
    pub queries: usize,
    /// Base RNG seed; every sub-measurement derives from it.
    pub seed: u64,
    /// Directory for CSV mirrors of the printed tables.
    pub out_dir: PathBuf,
    /// Run reduced workloads (CI-friendly).
    pub quick: bool,
    /// Include the very expensive configurations (e.g. the OPT 9×9 row of
    /// Table 2, Figure 3 up to g=7).
    pub full: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            queries: 3_000,
            seed: 0x9E01_2019,
            out_dir: PathBuf::from("results"),
            quick: false,
            full: false,
        }
    }
}

impl Config {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            queries: 200,
            quick: true,
            ..Self::default()
        }
    }

    /// Effective query count (reduced under `--quick`).
    pub fn effective_queries(&self) -> usize {
        if self.quick {
            self.queries.min(300)
        } else {
            self.queries
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_reduces_queries() {
        assert!(Config::quick().effective_queries() <= 300);
        assert_eq!(Config::default().effective_queries(), 3_000);
    }
}
