//! Experiment CLI — regenerates every table and figure of the paper's
//! evaluation plus the workspace ablations.
//!
//! ```text
//! experiments all
//! experiments fig3 fig6 abl-spanner
//! experiments table2 --full          # include the expensive OPT 9x9 row
//! experiments fig8 --quick           # reduced workloads
//! experiments all --out results/     # CSV mirror directory
//! ```

use geoind_bench::config::Config;
use geoind_bench::exp;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--full" => cfg.full = true,
            "--queries" => {
                cfg.queries = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queries needs a positive integer"));
            }
            "--seed" => {
                cfg.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                cfg.out_dir = iter
                    .next()
                    .map(Into::into)
                    .unwrap_or_else(|| die("--out needs a directory"));
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            name if name.starts_with("--") => die(&format!("unknown flag {name}")),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        print_help();
        return;
    }
    if names.iter().any(|n| n == "all") {
        names = exp::ALL.iter().map(|s| s.to_string()).collect();
    }
    for n in &names {
        if !exp::ALL.contains(&n.as_str()) {
            die(&format!(
                "unknown experiment '{n}'; known: all {}",
                exp::ALL.join(" ")
            ));
        }
    }

    println!(
        "# geoind experiments: {} (queries={}, seed={}, quick={}, full={})\n",
        names.join(" "),
        cfg.effective_queries(),
        cfg.seed,
        cfg.quick,
        cfg.full
    );
    for name in names {
        let t = Instant::now();
        println!("## {name}");
        let tables = exp::run(&name, &cfg);
        let mut charts = exp::charts::charts_for(&name, &tables);
        charts.resize(tables.len(), None);
        for (table, chart) in tables.iter().zip(charts) {
            table.print();
            if let Some(chart) = chart {
                println!("{chart}");
            }
            let path = cfg.out_dir.join(format!("{}.csv", table.file_stem()));
            if let Err(e) = table.write_csv(&path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(csv: {})", path.display());
            }
            println!();
        }
        println!("## {name} done in {:.1}s\n", t.elapsed().as_secs_f64());
    }
}

fn print_help() {
    println!(
        "usage: experiments [EXPERIMENT...] [--quick] [--full] [--queries N] [--seed S] [--out DIR]\n\
         experiments: all {}",
        exp::ALL.join(" ")
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
