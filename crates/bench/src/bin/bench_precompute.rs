//! Benchmarks for the parallel precompute path and the simplex pricing
//! rule — the two knobs behind `geoind precompute --jobs`.
//!
//! ```text
//! bench_precompute precompute --g 4 --height 3 --eps 0.5 --jobs-max 4
//! bench_precompute cutgen --g 8 --g-small 6 --eps 0.7 --dilation 1.2
//! bench_precompute pricing --grids 6,8,10 --eps 0.5
//! ```
//!
//! `precompute` runs the four-cell grid {jobs 1, jobs max} × {cold, warm}
//! over a fresh mechanism each time (cold channel cache) and emits one
//! JSON object on stdout — `scripts/bench.sh` redirects it into
//! `BENCH_precompute.json`. The headline `speedup` compares the old
//! sequential cold implementation (jobs=1, cold) against the full new
//! path (jobs=max, warm-started), so it reflects what a user upgrading
//! actually gets; `pivot_reduction` isolates the warm-start effect at
//! jobs=1, where scheduling cannot contribute.
//!
//! `cutgen` times single-node OPT solves across constraint strategies:
//! eager (every row materialized) vs delayed constraint generation, at a
//! tractable size (`--g-small`) and at the headline size (`--g`, the
//! node that DNF'd after 24 CPU-minutes before this engine), plus the
//! `Spanner` (δ·ε)-guarantee target at the headline size. It emits a
//! JSON fragment that `scripts/bench.sh` folds into
//! `BENCH_precompute.json` — every row records
//! `{"constraints", "cutgen", "g", rows_total, rows_active, cut_rounds,
//! pivots, wall_s, loss}` so the working-set ratio behind each wall
//! clock is part of the artifact.
//!
//! `pricing` solves a single OPT dual per grid size with Dantzig and
//! with Devex pricing and prints a markdown table of pivot counts — the
//! evidence behind `SimplexOptions::default().pricing`.

use geoind_core::alloc::AllocationStrategy;
use geoind_core::metrics::QualityMetric;
use geoind_core::msm::MsmMechanism;
use geoind_core::opt::{ConstraintSet, CutGenOptions, OptOptions, OptimalMechanism};
use geoind_data::prior::GridPrior;
use geoind_lp::simplex::Pricing;
use geoind_spatial::geom::BBox;
use geoind_spatial::grid::Grid;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("precompute");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    match mode {
        "precompute" => {
            let g: u32 = flag("--g").and_then(|v| v.parse().ok()).unwrap_or(4);
            let height: u32 = flag("--height").and_then(|v| v.parse().ok()).unwrap_or(3);
            let eps: f64 = flag("--eps").and_then(|v| v.parse().ok()).unwrap_or(0.5);
            let jobs_max: usize = flag("--jobs-max")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
                .max(1);
            let max_nodes: usize = flag("--max-nodes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(usize::MAX);
            bench_precompute(g, height, eps, jobs_max, max_nodes);
        }
        "cutgen" => {
            let g: u32 = flag("--g").and_then(|v| v.parse().ok()).unwrap_or(8);
            let g_small: u32 = flag("--g-small").and_then(|v| v.parse().ok()).unwrap_or(6);
            let eps: f64 = flag("--eps").and_then(|v| v.parse().ok()).unwrap_or(0.7);
            let dilation: f64 = flag("--dilation")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.2);
            bench_cutgen(g, g_small, eps, dilation);
        }
        "dilation" => {
            let g: u32 = flag("--g").and_then(|v| v.parse().ok()).unwrap_or(6);
            let eps: f64 = flag("--eps").and_then(|v| v.parse().ok()).unwrap_or(0.7);
            let dilations: Vec<f64> = flag("--dilations")
                .unwrap_or_else(|| "1.0,1.05,1.1,1.2,1.5".into())
                .split(',')
                .filter_map(|v| v.trim().parse().ok())
                .collect();
            bench_dilation(g, eps, &dilations);
        }
        "pricing" => {
            let grids: Vec<u32> = flag("--grids")
                .unwrap_or_else(|| "6,8".into())
                .split(',')
                .filter_map(|v| v.trim().parse().ok())
                .collect();
            let eps: f64 = flag("--eps").and_then(|v| v.parse().ok()).unwrap_or(0.5);
            bench_pricing(&grids, eps);
        }
        other => {
            eprintln!("unknown mode '{other}' (expected precompute|cutgen|pricing)");
            std::process::exit(2);
        }
    }
}

/// A deterministic, mildly non-uniform, strictly positive prior on a
/// `g × g` grid: siblings get distinct LPs (a uniform prior would make
/// every sibling channel identical and the warm start trivially
/// perfect), while positive mass everywhere keeps the LPs well-posed.
fn skewed_prior(domain: BBox, g: u32) -> GridPrior {
    let cells = (g as usize) * (g as usize);
    let weights: Vec<f64> = (0..cells)
        .map(|i| 1.0 + ((i * 37) % 101) as f64 / 25.0)
        .collect();
    GridPrior::from_weights(Grid::new(domain, g), weights)
}

fn build(g: u32, height: u32, eps: f64) -> MsmMechanism {
    let domain = BBox::square(16.0);
    // Prior at leaf resolution (g^height per side): strictly positive in
    // every cell the tree can condition on, so no node LP degenerates.
    MsmMechanism::builder(domain, skewed_prior(domain, g.pow(height)))
        .epsilon(eps)
        .granularity(g)
        .strategy(AllocationStrategy::FixedHeight(height))
        .build()
        .expect("benchmark configuration must build")
}

fn bench_precompute(g: u32, height: u32, eps: f64, jobs_max: usize, max_nodes: usize) {
    let mut cells = Vec::new();
    let mut lookup = |jobs: usize, warm: bool| -> (f64, u64) {
        let msm = build(g, height, eps);
        let start = Instant::now();
        let nodes = msm
            .precompute_opts(max_nodes, jobs, warm)
            .expect("benchmark precompute must succeed");
        let wall = start.elapsed().as_secs_f64();
        let pivots = msm.lp_pivot_count();
        eprintln!("# jobs={jobs} warm={warm}: {nodes} nodes, {wall:.3}s, {pivots} pivots");
        cells.push(format!(
            "    {{\"jobs\": {jobs}, \"warm\": {warm}, \"nodes\": {nodes}, \
             \"wall_s\": {wall:.6}, \"pivots\": {pivots}}}"
        ));
        (wall, pivots)
    };
    let (wall_seq_cold, pivots_cold) = lookup(1, false);
    let (_, pivots_warm) = lookup(1, true);
    let (_, _) = lookup(jobs_max, false);
    let (wall_par_warm, _) = lookup(jobs_max, true);

    let speedup = wall_seq_cold / wall_par_warm.max(1e-12);
    let pivot_reduction = if pivots_cold > 0 {
        1.0 - pivots_warm as f64 / pivots_cold as f64
    } else {
        0.0
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "{{\n  \"bench\": \"precompute\",\n  \"g\": {g},\n  \"height\": {height},\n  \
         \"eps\": {eps},\n  \"cores\": {cores},\n  \"jobs_max\": {jobs_max},\n  \
         \"cells\": [\n{}\n  ],\n  \
         \"speedup\": {speedup:.4},\n  \"pivot_reduction\": {pivot_reduction:.4}\n}}",
        cells.join(",\n")
    );
}

/// One single-node OPT solve under the given constraint strategy,
/// formatted as a `BENCH_precompute.json` cell.
fn cutgen_cell(g: u32, eps: f64, constraints: ConstraintSet, cutgen: bool) -> (f64, String) {
    let domain = BBox::square(16.0);
    let grid = Grid::new(domain, g);
    let prior = skewed_prior(domain, g);
    let opts = OptOptions {
        constraints,
        cutgen: CutGenOptions {
            enabled: cutgen,
            ..CutGenOptions::default()
        },
        ..OptOptions::default()
    };
    let start = Instant::now();
    let opt = OptimalMechanism::solve_with(
        eps,
        &grid.centers(),
        prior.probs(),
        QualityMetric::Euclidean,
        opts,
    )
    .expect("cutgen benchmark solve must admit");
    let wall = start.elapsed().as_secs_f64();
    let st = opt.stats();
    let loss = opt.expected_loss(prior.probs());
    let label = match constraints {
        ConstraintSet::Full => "full".to_string(),
        ConstraintSet::Spanner { dilation } => format!("spanner:{dilation}"),
    };
    eprintln!(
        "# g={g} constraints={label} cutgen={cutgen}: {wall:.2}s, {} pivots, \
         {} rounds, {}/{} rows, loss {loss:.6}",
        st.iterations, st.cut_rounds, st.rows_active, st.rows_total
    );
    let cell = format!(
        "    {{\"constraints\": \"{label}\", \"cutgen\": {cutgen}, \"g\": {g}, \
         \"rows_total\": {}, \"rows_active\": {}, \"cut_rounds\": {}, \
         \"pivots\": {}, \"wall_s\": {wall:.6}, \"loss\": {loss:.9}}}",
        st.rows_total, st.rows_active, st.cut_rounds, st.iterations
    );
    (wall, cell)
}

fn bench_cutgen(g: u32, g_small: u32, eps: f64, dilation: f64) {
    // Both strategies at both sizes. The eager/cutgen ratio is reported
    // at the headline size, not extrapolated from the small one — and it
    // is a finding, not a victory lap: after the engine-level work
    // (block refactorization, incremental duals, blocked LU; DESIGN.md
    // §16) the eager build finishes the headline grid too, and the cut
    // loop's extra warm-restarted round costs real dense pivots on these
    // fully-dense optima. The spanner cell relaxes the guarantee to
    // (δ·ε) on top and is the one structurally-guaranteed speedup.
    let (_, c0) = cutgen_cell(g_small, eps, ConstraintSet::Full, false);
    let (_, c1) = cutgen_cell(g_small, eps, ConstraintSet::Full, true);
    let (wall_eager, c2) = cutgen_cell(g, eps, ConstraintSet::Full, false);
    let (wall_full, c3) = cutgen_cell(g, eps, ConstraintSet::Full, true);
    let (wall_spanner, c4) = cutgen_cell(g, eps, ConstraintSet::Spanner { dilation }, true);
    let cutgen_speedup = wall_eager / wall_full.max(1e-12);
    let spanner_speedup = wall_full / wall_spanner.max(1e-12);
    println!(
        "{{\n  \"bench\": \"precompute-cutgen\",\n  \"g\": {g},\n  \
         \"g_small\": {g_small},\n  \"eps\": {eps},\n  \
         \"cells\": [\n{}\n  ],\n  \
         \"cutgen_speedup\": {cutgen_speedup:.4},\n  \
         \"spanner_speedup\": {spanner_speedup:.4}\n}}",
        [c0, c1, c2, c3, c4].join(",\n")
    );
}

/// The utility-vs-dilation trade (EXPERIMENTS.md): expected loss and LP
/// size of the spanner-target solve at each δ, against the exact OPT at
/// the same ε. δ = 1.0 degenerates to the full pair set (a 1-spanner
/// keeps every non-collinear pair), so its row doubles as a self-check.
fn bench_dilation(g: u32, eps: f64, dilations: &[f64]) {
    let domain = BBox::square(16.0);
    let grid = Grid::new(domain, g);
    let prior = skewed_prior(domain, g);
    let solve = |constraints: ConstraintSet| {
        let start = Instant::now();
        let opt = OptimalMechanism::solve_with(
            eps,
            &grid.centers(),
            prior.probs(),
            QualityMetric::Euclidean,
            OptOptions {
                constraints,
                ..OptOptions::default()
            },
        )
        .expect("dilation benchmark solve must admit");
        (
            opt.stats(),
            opt.expected_loss(prior.probs()),
            start.elapsed().as_secs_f64(),
        )
    };
    let (exact_stats, exact_loss, exact_wall) = solve(ConstraintSet::Full);
    println!("| δ | guarantee | target rows | pivots | wall s | E[loss] | Δ vs exact |");
    println!("|---|-----------|-------------|--------|--------|---------|------------|");
    println!(
        "| exact | ε | {} | {} | {exact_wall:.2} | {exact_loss:.6} | — |",
        exact_stats.rows_total, exact_stats.iterations
    );
    for &dilation in dilations {
        let (st, loss, wall) = solve(ConstraintSet::Spanner { dilation });
        let delta = (loss - exact_loss) / exact_loss * 100.0;
        println!(
            "| {dilation} | {dilation}·ε | {} | {} | {wall:.2} | {loss:.6} | {delta:+.2} % |",
            st.rows_total, st.iterations
        );
    }
}

fn bench_pricing(grids: &[u32], eps: f64) {
    println!(
        "| grid | locations | dual rows | Dantzig pivots | Devex pivots | Dantzig s | Devex s |"
    );
    println!(
        "|------|-----------|-----------|----------------|--------------|-----------|---------|"
    );
    for &g in grids {
        let domain = BBox::square(16.0);
        let grid = Grid::new(domain, g);
        let prior = skewed_prior(domain, g);
        let mut row = vec![
            format!("{g}x{g}"),
            format!("{}", g * g),
            format!("{}", (g as usize * g as usize).pow(2)),
        ];
        let mut cells = Vec::new();
        for pricing in [Pricing::Dantzig, Pricing::Devex] {
            let mut opts = OptOptions::default();
            opts.simplex.pricing = pricing;
            let start = Instant::now();
            let opt = OptimalMechanism::solve_with(
                eps,
                &grid.centers(),
                prior.probs(),
                QualityMetric::Euclidean,
                opts,
            )
            .expect("pricing benchmark solve must succeed");
            let wall = start.elapsed().as_secs_f64();
            cells.push((opt.stats().iterations, wall));
        }
        row.push(format!("{}", cells[0].0));
        row.push(format!("{}", cells[1].0));
        row.push(format!("{:.2}", cells[0].1));
        row.push(format!("{:.2}", cells[1].1));
        println!("| {} |", row.join(" | "));
    }
}
