//! Benchmark for the served sampling hot path — the admission-built
//! flattened alias tables behind `MsmMechanism::flatten`.
//!
//! ```text
//! bench_sample --g 4 --height 3 --eps 0.5 --requests 200000 --batch 256
//! ```
//!
//! Four cells, each over a fully warm mechanism (every channel admitted
//! and cached before timing starts, so no LP solve is ever on the clock):
//!
//! * `seed` — the pre-flattening serving path: per-level channel-cache
//!   fetch, child-id `Vec` assembly, inverse-CDF row scan. Reconstructed
//!   by admitting every channel with the `sample.alias.build` failpoint
//!   armed, which is exactly how a degraded table build serves today —
//!   and byte-for-byte the only serving path the seed tree had. Needs
//!   the `failpoints` feature (`scripts/bench.sh` builds with it);
//!   without it the cell is skipped and `unfused_alias` is the baseline.
//! * `unfused_alias` — the same per-level walk, but each row sampled
//!   through its admission-built alias table;
//! * `fused` — single requests through the fused flattened-tree walk
//!   (one contiguous table, no cache fetch, no allocation);
//! * `fused_batched` — `report_many` batches through the same tree, the
//!   shape the serve worker loop uses.
//!
//! The last three paths are bit-identical per seed (pinned by the
//! determinism suite, and re-asserted on the sums below); this binary
//! measures only the cost. Output is one JSON object on stdout —
//! `scripts/bench.sh` redirects it into `BENCH_sample.json` and
//! `scripts/check_bench.sh` gates it in CI.

use geoind_core::alloc::AllocationStrategy;
use geoind_core::msm::MsmMechanism;
use geoind_core::Mechanism;
use geoind_data::prior::GridPrior;
use geoind_rng::SeededRng;
use geoind_spatial::geom::{BBox, Point};
use geoind_spatial::grid::Grid;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let g: u32 = flag("--g").and_then(|v| v.parse().ok()).unwrap_or(4);
    let height: u32 = flag("--height").and_then(|v| v.parse().ok()).unwrap_or(3);
    let eps: f64 = flag("--eps").and_then(|v| v.parse().ok()).unwrap_or(0.5);
    let requests: usize = flag("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let batch: usize = flag("--batch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
        .max(1);
    let points: usize = flag("--points")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096)
        .max(1);
    bench_sample(g, height, eps, requests, batch, points);
}

/// Deterministic, mildly non-uniform, strictly positive prior (same
/// construction as `bench_precompute`): siblings get distinct LPs and no
/// node degenerates.
fn skewed_prior(domain: BBox, g: u32) -> GridPrior {
    let cells = (g as usize) * (g as usize);
    let weights: Vec<f64> = (0..cells)
        .map(|i| 1.0 + ((i * 37) % 101) as f64 / 25.0)
        .collect();
    GridPrior::from_weights(Grid::new(domain, g), weights)
}

fn build(g: u32, height: u32, eps: f64) -> MsmMechanism {
    let domain = BBox::square(16.0);
    MsmMechanism::builder(domain, skewed_prior(domain, g.pow(height)))
        .epsilon(eps)
        .granularity(g)
        .strategy(AllocationStrategy::FixedHeight(height))
        .build()
        .expect("benchmark configuration must build")
}

/// The seed-path mechanism: every channel admitted with the alias-table
/// build degraded, so serving is the pre-flattening cache-fetch +
/// inverse-CDF walk. `None` when the binary was built without live
/// failpoints.
fn seed_mechanism(g: u32, height: u32, eps: f64) -> Option<MsmMechanism> {
    #[cfg(feature = "failpoints")]
    {
        use geoind_testkit::failpoint::{self, FailSpec};
        failpoint::arm_global("sample.alias.build", FailSpec::always());
        let msm = build(g, height, eps);
        msm.precompute(usize::MAX).expect("precompute");
        failpoint::reset_global();
        // Prove the reconstruction: with no table admitted anywhere,
        // flattening must refuse and serving must stay on the CDF path.
        assert!(
            msm.flatten().is_err(),
            "seed baseline unexpectedly built alias tables"
        );
        assert!(!msm.is_flattened());
        Some(msm)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = (g, height, eps);
        eprintln!("# failpoints feature off: skipping the seed-path cell");
        None
    }
}

struct Cell {
    json: String,
    ns_per_op: f64,
}

/// Laps per timed cell; the fastest is reported (the classic defense
/// against scheduler noise on a shared box — the mechanism's cost is the
/// floor, interference only ever adds).
const LAPS: usize = 3;

/// Time `requests` single reports through `msm`, returning the emitted
/// cell and the bitwise sum of all reported coordinates. One untimed
/// warm lap over the inputs first, so no cell pays first-touch costs for
/// the structures its path uses.
fn time_single(msm: &MsmMechanism, path: &str, xs: &[Point], requests: usize) -> (Cell, f64) {
    let mut warm = SeededRng::from_seed(1);
    for &x in xs {
        let _ = msm.report(x, &mut warm);
    }
    let mut wall = f64::INFINITY;
    let mut sum = 0.0f64;
    for _ in 0..LAPS {
        let mut rng = SeededRng::from_seed(0xBE_AC);
        sum = 0.0;
        let start = Instant::now();
        for i in 0..requests {
            let z = msm.report(xs[i % xs.len()], &mut rng);
            sum += z.x + z.y;
        }
        wall = wall.min(start.elapsed().as_secs_f64());
    }
    let ns = wall * 1e9 / requests as f64;
    eprintln!("# {path}: {ns:.1} ns/op");
    let json = format!(
        "    {{\"path\": \"{path}\", \"requests\": {requests}, \
         \"wall_s\": {wall:.6}, \"ns_per_op\": {ns:.2}}}"
    );
    (
        Cell {
            json,
            ns_per_op: ns,
        },
        sum,
    )
}

fn bench_sample(g: u32, height: u32, eps: f64, requests: usize, batch: usize, points: usize) {
    let domain = BBox::square(16.0);
    let side = domain.side();
    let xs: Vec<Point> = (0..points)
        .map(|i| {
            let a = (i % 61) as f64 / 61.0;
            let b = (i % 53) as f64 / 53.0;
            Point::new(domain.min.x + a * side, domain.min.y + b * side)
        })
        .collect();

    let mut cells = Vec::new();

    // Cell 1: the seed path — cache fetch + inverse-CDF scan per level.
    let seed_cell =
        seed_mechanism(g, height, eps).map(|msm| time_single(&msm, "seed", &xs, requests).0);

    let msm = build(g, height, eps);
    eprintln!("# warming: solving and admitting every channel");
    let start = Instant::now();
    let nodes = msm.precompute(usize::MAX).expect("precompute");
    eprintln!(
        "# {nodes} nodes admitted in {:.2}s",
        start.elapsed().as_secs_f64()
    );
    // Cell 2: the per-level walk with admission-built alias tables.
    assert!(!msm.is_flattened());
    let (alias_cell, alias_sum) = time_single(&msm, "unfused_alias", &xs, requests);

    // Cell 3: single requests through the fused flattened tree.
    msm.flatten().expect("flatten");
    let (fused_cell, fused_sum) = time_single(&msm, "fused", &xs, requests);

    // Cell 4: report_many batches through the same tree (the serve
    // worker-loop shape: one tree resolution per batch).
    let rounds = requests / batch;
    let batched_requests = rounds * batch;
    let mut wall_batched = f64::INFINITY;
    let mut batched_sum = 0.0f64;
    let mut scratch = Vec::with_capacity(batch);
    for _ in 0..LAPS {
        let mut rng = SeededRng::from_seed(0xBE_AC);
        batched_sum = 0.0;
        let start = Instant::now();
        for round in 0..rounds {
            scratch.clear();
            scratch.extend((0..batch).map(|i| xs[(round * batch + i) % xs.len()]));
            let zs = msm.report_many(&scratch, &mut rng).expect("batch");
            for z in zs {
                batched_sum += z.x + z.y;
            }
        }
        wall_batched = wall_batched.min(start.elapsed().as_secs_f64());
    }
    let ns_batched = wall_batched * 1e9 / batched_requests as f64;
    eprintln!("# fused_batched (batch {batch}): {ns_batched:.1} ns/op");

    // The three flattened-era paths drew identical streams from the same
    // seed, so their sums must agree to the last bit (the per-request
    // cells over `requests` inputs, the batched cell over its rounds).
    assert_eq!(
        alias_sum.to_bits(),
        fused_sum.to_bits(),
        "alias and fused walks diverged"
    );
    let mut check = SeededRng::from_seed(0xBE_AC);
    let mut sequential_sum = 0.0f64;
    for i in 0..batched_requests {
        let z = msm.report(xs[i % xs.len()], &mut check);
        sequential_sum += z.x + z.y;
    }
    assert_eq!(
        batched_sum.to_bits(),
        sequential_sum.to_bits(),
        "batched serving diverged from sequential"
    );

    let baseline = match &seed_cell {
        Some(c) => ("seed", c.ns_per_op),
        None => ("unfused_alias", alias_cell.ns_per_op),
    };
    if let Some(c) = seed_cell {
        cells.push(c.json);
    }
    cells.push(alias_cell.json);
    cells.push(fused_cell.json);
    cells.push(format!(
        "    {{\"path\": \"fused_batched\", \"batch\": {batch}, \
         \"requests\": {batched_requests}, \"wall_s\": {wall_batched:.6}, \
         \"ns_per_op\": {ns_batched:.2}}}"
    ));

    let speedup = baseline.1 / fused_cell.ns_per_op.max(1e-12);
    let batched_speedup = baseline.1 / ns_batched.max(1e-12);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "{{\n  \"bench\": \"sample\",\n  \"g\": {g},\n  \"height\": {height},\n  \
         \"eps\": {eps},\n  \"cores\": {cores},\n  \"nodes\": {nodes},\n  \
         \"baseline\": \"{}\",\n  \"cells\": [\n{}\n  ],\n  \
         \"speedup\": {speedup:.4},\n  \"batched_speedup\": {batched_speedup:.4}\n}}",
        baseline.0,
        cells.join(",\n")
    );
}
