//! Minimal ASCII line charts for the figure experiments.
//!
//! The paper's artifacts are *figures*; the CLI renders each one as a small
//! terminal plot next to the numeric table so trends (the Fig. 6 gap, the
//! Fig. 8 "U", the Fig. 10 flattening) are visible at a glance without
//! leaving the shell.

/// One named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, any order.
    pub points: Vec<(f64, f64)>,
}

/// Plot dimensions (plot area, excluding axes/labels).
const WIDTH: usize = 56;
const HEIGHT: usize = 12;
const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Render series into a text chart with axes and a legend.
///
/// Returns an empty string when there is nothing plottable (no series or a
/// degenerate value range), so callers can print unconditionally.
pub fn render(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if !(x1 - x0).is_finite() || !(y1 - y0).is_finite() || x1 <= x0 {
        return String::new();
    }
    if y1 <= y0 {
        // Flat line: pad the range so it renders mid-chart.
        y0 -= 0.5;
        y1 += 0.5;
    }
    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x0) / (x1 - x0)) * (WIDTH - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (HEIGHT - 1) as f64).round() as usize;
            let row = HEIGHT - 1 - cy.min(HEIGHT - 1);
            let col = cx.min(WIDTH - 1);
            // Later series overwrite; collisions show the last mark.
            grid[row][col] = mark;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let ytop = format!("{y1:.2}");
    let ybot = format!("{y0:.2}");
    let margin = ytop.len().max(ybot.len());
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{ytop:>margin$}")
        } else if r == HEIGHT - 1 {
            format!("{ybot:>margin$}")
        } else {
            " ".repeat(margin)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(margin));
    out.push('+');
    out.push_str(&"-".repeat(WIDTH));
    out.push('\n');
    let x0_label = format!("{x0:.2}");
    let x1_label = format!("{x1:.2} ({x_label})");
    out.push_str(&format!(
        "{}{x0_label:<w$}{x1_label}\n",
        " ".repeat(margin + 1),
        w = WIDTH - 12
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", MARKS[i % MARKS.len()], s.name))
        .collect();
    out.push_str(&format!("  [{y_label}]  {}\n", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, f: impl Fn(f64) -> f64) -> Series {
        Series {
            name: name.into(),
            points: (0..=10).map(|i| (i as f64, f(i as f64))).collect(),
        }
    }

    #[test]
    fn renders_axes_and_legend() {
        let chart = render(
            "demo",
            "eps",
            "km",
            &[line("up", |x| x), line("down", |x| 10.0 - x)],
        );
        assert!(chart.contains("demo"));
        assert!(chart.contains("* up"));
        assert!(chart.contains("o down"));
        assert!(chart.contains("10.00")); // y max label
        assert!(chart.contains("(eps)"));
        // All chart rows share the same width.
        let rows: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), HEIGHT);
    }

    #[test]
    fn increasing_series_slopes_up() {
        let chart = render("t", "x", "y", &[line("s", |x| x)]);
        let rows: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        let col_of = |row: &str| row.find('*');
        // Topmost mark is to the right of the bottommost mark.
        let top = rows.iter().find_map(|r| col_of(r)).unwrap();
        let bottom = rows.iter().rev().find_map(|r| col_of(r)).unwrap();
        assert!(top > bottom, "top {top} vs bottom {bottom}");
    }

    #[test]
    fn empty_and_degenerate_inputs_render_nothing() {
        assert_eq!(render("t", "x", "y", &[]), "");
        let single_x = Series {
            name: "s".into(),
            points: vec![(1.0, 2.0), (1.0, 3.0)],
        };
        assert_eq!(render("t", "x", "y", &[single_x]), "");
    }

    #[test]
    fn flat_series_still_renders() {
        let flat = Series {
            name: "f".into(),
            points: vec![(0.0, 2.0), (5.0, 2.0)],
        };
        let chart = render("t", "x", "y", &[flat]);
        assert!(chart.contains('*'));
    }
}
