//! Shared workloads: the two synthetic cities at paper scale, per-granularity
//! priors, and query sets.

use crate::config::Config;
use geoind_core::eval::Evaluator;
use geoind_data::checkin::Dataset;
use geoind_data::prior::GridPrior;
use geoind_data::synth::SyntheticCity;

/// One evaluation city: a named dataset plus its query workload.
pub struct City {
    /// Display name used in table titles ("Gowalla" / "Yelp").
    pub name: &'static str,
    /// The check-in dataset.
    pub dataset: Dataset,
    /// The fixed query workload sampled from the check-ins.
    pub evaluator: Evaluator,
}

/// Build the two evaluation cities. Paper scale by default
/// (265,571 / 81,201 check-ins); reduced under `--quick`.
pub fn cities(cfg: &Config) -> Vec<City> {
    let (austin, vegas) = if cfg.quick {
        (
            SyntheticCity::austin_like().generate_with_size(30_000, 3_000),
            SyntheticCity::vegas_like().generate_with_size(12_000, 1_500),
        )
    } else {
        (
            SyntheticCity::austin_like().generate(),
            SyntheticCity::vegas_like().generate(),
        )
    };
    let q = cfg.effective_queries();
    vec![
        City {
            name: "Gowalla",
            evaluator: Evaluator::sample_from(&austin, q, cfg.seed),
            dataset: austin,
        },
        City {
            name: "Yelp",
            evaluator: Evaluator::sample_from(&vegas, q, cfg.seed + 1),
            dataset: vegas,
        },
    ]
}

/// The fine prior granularity used for MSM at per-level granularity `g`:
/// chosen so every effective granularity `g^i` the allocator can reach at
/// ε ≤ 1 divides it exactly, making the restricted sub-priors exact.
pub fn fine_granularity_for(g: u32) -> u32 {
    match g {
        2 => 32, // heights up to 5
        3 => 27, // up to 3
        4 => 16, // up to 2
        5 => 25, // up to 2
        6 => 36, // up to 2
        _ => g * g,
    }
}

/// The global prior for MSM runs at per-level granularity `g` (Section 6.1:
/// finest effective granularity, aggregated on demand).
pub fn msm_prior(dataset: &Dataset, g: u32) -> GridPrior {
    GridPrior::from_dataset(dataset, fine_granularity_for(g))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cities_are_smaller() {
        let quick = cities(&Config::quick());
        assert_eq!(quick.len(), 2);
        assert_eq!(quick[0].name, "Gowalla");
        assert!(quick[0].dataset.len() <= 30_000);
        assert_eq!(quick[0].evaluator.queries().len(), 200);
    }

    #[test]
    fn fine_granularities_divide_effective() {
        // g=2 can reach h=5 (eff 32), g=3 h=3 (27), others h=2.
        assert_eq!(fine_granularity_for(2) % 32, 0);
        assert_eq!(fine_granularity_for(3) % 27, 0);
        assert_eq!(fine_granularity_for(4) % 16, 0);
        assert_eq!(fine_granularity_for(5) % 25, 0);
        assert_eq!(fine_granularity_for(6) % 36, 0);
    }

    #[test]
    fn msm_prior_has_expected_granularity() {
        let ds = SyntheticCity::vegas_like().generate_with_size(1_000, 100);
        let p = msm_prior(&ds, 4);
        assert_eq!(p.grid().granularity(), 16);
    }
}
