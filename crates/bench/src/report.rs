//! Plain-text table rendering and CSV mirroring for experiment output.

use std::io::Write;
use std::path::Path;

/// A simple titled table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (also used for the CSV filename by the CLI).
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Write a CSV mirror.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{}", escape_row(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", escape_row(row))?;
        }
        f.flush()
    }

    /// Sanitized filename stem derived from the title.
    pub fn file_stem(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-")
    }
}

fn escape_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Format a float with a sensible number of digits for tables.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Format seconds adaptively (s / ms).
pub fn ftime(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2}s")
    } else {
        format!("{:.1}ms", seconds * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["g", "loss"]);
        t.push(vec!["2".into(), "4.3".into()]);
        t.push(vec!["10".into(), "2.1".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.lines().count() >= 4);
        // Right-aligned: the "2" under the wider "10" (line 3 is the first
        // data row; 0=title, 1=header, 2=separator).
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[3].starts_with(' '));
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push(vec!["1,5".into(), "x\"y".into()]);
        let dir = std::env::temp_dir().join(format!("geoind-csv-{}", std::process::id()));
        let p = dir.join("t.csv");
        t.write_csv(&p).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s.lines().next().unwrap(), "a,b");
        assert!(s.contains("\"1,5\""));
        assert!(s.contains("\"x\"\"y\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_stem_sanitizes() {
        let t = Table::new("Fig 6a: Gowalla (d)", &["x"]);
        assert_eq!(t.file_stem(), "fig-6a-gowalla-d");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(2.34567), "2.346");
        assert_eq!(fnum(0.1234567), "0.1235");
        assert_eq!(fnum(123.456), "123.5");
        assert_eq!(ftime(2.5), "2.50s");
        assert_eq!(ftime(0.0123), "12.3ms");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push(vec!["1".into()]);
    }
}
