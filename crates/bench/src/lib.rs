//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 6), plus the ablations called out in DESIGN.md.
//!
//! Each experiment is a function from a [`config::Config`] to one or more
//! [`report::Table`]s, printed to stdout and mirrored as CSV under the
//! output directory. The `experiments` binary is the CLI front-end:
//!
//! ```text
//! experiments all                 # everything at default scale
//! experiments fig3 fig5 table2    # a subset
//! experiments fig6 --quick        # smaller workloads, faster
//! experiments table2 --full       # include the very expensive OPT rows
//! ```

#![warn(missing_docs)]
// Index-based loops over parallel arrays are the clearest style for the
// numeric kernels here; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Test reference constants keep full printed precision from their sources.
#![allow(clippy::excessive_precision)]

pub mod chart;
pub mod config;
pub mod exp;
pub mod report;
pub mod workloads;
