//! Wall-clock micro-benchmarks for the LP substrate.

use geoind_lp::model::{Model, Op, Sense, SolveVia};
use geoind_lp::tableau::solve_dense;
use geoind_rng::{Rng, SeededRng};
use geoind_testkit::bench::Bench;
use std::hint::black_box;

/// An OPT-shaped LP over `n` collinear unit-spaced locations.
fn opt_shaped(n: usize, eps: f64) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let pts: Vec<f64> = (0..n).map(|i| i as f64).collect();
    for x in 0..n {
        for z in 0..n {
            m.add_var((pts[x] - pts[z]).abs() / n as f64);
        }
    }
    for x in 0..n {
        let row: Vec<(usize, f64)> = (0..n).map(|z| (x * n + z, 1.0)).collect();
        m.add_row(&row, Op::Eq, 1.0);
    }
    for x in 0..n {
        for xp in 0..n {
            if x == xp {
                continue;
            }
            let scale = (-eps * (pts[x] - pts[xp]).abs()).exp();
            for z in 0..n {
                m.add_row(&[(x * n + z, scale), (xp * n + z, -1.0)], Op::Le, 0.0);
            }
        }
    }
    m
}

fn bench_paths(b: &mut Bench) {
    for n in [6usize, 10] {
        let model = opt_shaped(n, 0.6);
        b.iter(&format!("opt_shaped_n{n}/dual_path"), || {
            black_box(model.solve(SolveVia::Dual).unwrap())
        });
        {
            use geoind_lp::simplex::{Pricing, SimplexOptions};
            let opts = SimplexOptions {
                pricing: Pricing::Devex,
                ..SimplexOptions::default()
            };
            b.iter(&format!("opt_shaped_n{n}/dual_path_devex"), || {
                black_box(model.solve_with(SolveVia::Dual, opts.clone()).unwrap())
            });
        }
        if n <= 6 {
            b.iter(&format!("opt_shaped_n{n}/primal_path"), || {
                black_box(model.solve(SolveVia::Primal).unwrap())
            });
        }
    }
}

fn bench_oracle_vs_revised(b: &mut Bench) {
    // A modest random feasible LP where both solvers apply.
    let mut rng = SeededRng::from_seed(9);
    let n = 12usize;
    let m = 14usize;
    let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let witness: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
    let rows: Vec<(Vec<f64>, Op, f64)> = (0..m)
        .map(|_| {
            let coefs: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let ax: f64 = coefs.iter().zip(&witness).map(|(a, x)| a * x).sum();
            (coefs, Op::Le, ax + rng.gen_range(0.0..2.0))
        })
        .collect();
    let mut model = Model::new(Sense::Minimize);
    let vars: Vec<usize> = costs.iter().map(|&c| model.add_var(c)).collect();
    for (coefs, op, rhs) in &rows {
        let entries: Vec<(usize, f64)> = vars.iter().zip(coefs).map(|(&v, &c)| (v, c)).collect();
        model.add_row(&entries, *op, *rhs);
    }
    b.iter("revised_simplex_random_lp", || {
        black_box(model.solve(SolveVia::Primal).unwrap())
    });
    b.iter("tableau_oracle_random_lp", || {
        black_box(solve_dense(Sense::Minimize, &costs, &rows).unwrap())
    });
}

fn bench_lu(b: &mut Bench) {
    use geoind_lp::dense::{DenseMatrix, LuFactors};
    let mut rng = SeededRng::from_seed(10);
    let n = 200usize;
    let mut a = DenseMatrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            a.set(i, j, rng.gen_range(-1.0..1.0));
        }
        a.set(j, j, a.get(j, j) + 5.0);
    }
    let rhs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let lu = LuFactors::factor(&a).unwrap();
    b.iter("dense_lu_200/factor", || {
        black_box(LuFactors::factor(&a).unwrap())
    });
    b.iter("dense_lu_200/solve", || black_box(lu.solve(&rhs)));
    b.iter("dense_lu_200/solve_transpose", || {
        black_box(lu.solve_transpose(&rhs))
    });
}

fn main() {
    let mut b = Bench::new("lp_solver");
    bench_paths(&mut b);
    bench_oracle_vs_revised(&mut b);
    bench_lu(&mut b);
    b.finish();
}
