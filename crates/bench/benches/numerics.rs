//! Criterion micro-benchmarks for the numerical substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use geoind_core::alloc::{AllocationStrategy, BudgetAllocator};
use geoind_math::lattice::{lattice_sum_direct, lattice_sum_expansion};
use geoind_math::sampling::{planar_laplace_radius, AliasTable};
use geoind_math::{dirichlet_beta, lambert_wm1, riemann_zeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_lattice(c: &mut Criterion) {
    c.bench_function("lattice_direct_beta1.5", |b| {
        b.iter(|| black_box(lattice_sum_direct(black_box(1.5))))
    });
    c.bench_function("lattice_expansion_beta0.5", |b| {
        b.iter(|| black_box(lattice_sum_expansion(black_box(0.5))))
    });
    c.bench_function("lattice_expansion_beta0.05", |b| {
        b.iter(|| black_box(lattice_sum_expansion(black_box(0.05))))
    });
}

fn bench_special_functions(c: &mut Criterion) {
    c.bench_function("lambert_wm1", |b| {
        b.iter(|| black_box(lambert_wm1(black_box(-0.123))))
    });
    c.bench_function("riemann_zeta_1.5", |b| {
        b.iter(|| black_box(riemann_zeta(black_box(1.5))))
    });
    c.bench_function("dirichlet_beta_1.5", |b| {
        b.iter(|| black_box(dirichlet_beta(black_box(1.5))))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let weights: Vec<f64> = (0..256).map(|_| rng.gen_range(0.0..1.0)).collect();
    c.bench_function("alias_build_256", |b| {
        b.iter(|| black_box(AliasTable::new(black_box(&weights))))
    });
    let table = AliasTable::new(&weights);
    c.bench_function("alias_sample", |b| {
        b.iter(|| black_box(table.sample(&mut rng)))
    });
    c.bench_function("planar_laplace_radius", |b| {
        b.iter(|| black_box(planar_laplace_radius(black_box(0.5), &mut rng)))
    });
}

fn bench_budget_allocation(c: &mut Criterion) {
    let alloc = BudgetAllocator::new(20.0, 4, 0.8);
    c.bench_function("problem1_min_budget_level1", |b| {
        b.iter(|| black_box(alloc.min_budget_for_level(black_box(1))))
    });
    c.bench_function("algorithm2_allocate", |b| {
        b.iter(|| {
            black_box(alloc.allocate(black_box(0.9), AllocationStrategy::Auto { max_height: 5 }))
        })
    });
}

criterion_group!(
    benches,
    bench_lattice,
    bench_special_functions,
    bench_sampling,
    bench_budget_allocation
);
criterion_main!(benches);
