//! Wall-clock micro-benchmarks for the numerical substrate.

use geoind_core::alloc::{AllocationStrategy, BudgetAllocator};
use geoind_math::lattice::{lattice_sum_direct, lattice_sum_expansion};
use geoind_math::sampling::{planar_laplace_radius, AliasTable};
use geoind_math::{dirichlet_beta, lambert_wm1, riemann_zeta};
use geoind_rng::{Rng, SeededRng};
use geoind_testkit::bench::Bench;
use std::hint::black_box;

fn bench_lattice(b: &mut Bench) {
    b.iter("lattice_direct_beta1.5", || {
        black_box(lattice_sum_direct(black_box(1.5)))
    });
    b.iter("lattice_expansion_beta0.5", || {
        black_box(lattice_sum_expansion(black_box(0.5)))
    });
    b.iter("lattice_expansion_beta0.05", || {
        black_box(lattice_sum_expansion(black_box(0.05)))
    });
}

fn bench_special_functions(b: &mut Bench) {
    b.iter("lambert_wm1", || black_box(lambert_wm1(black_box(-0.123))));
    b.iter("riemann_zeta_1.5", || {
        black_box(riemann_zeta(black_box(1.5)))
    });
    b.iter("dirichlet_beta_1.5", || {
        black_box(dirichlet_beta(black_box(1.5)))
    });
}

fn bench_sampling(b: &mut Bench) {
    let mut rng = SeededRng::from_seed(4);
    let weights: Vec<f64> = (0..256).map(|_| rng.gen_range(0.0..1.0)).collect();
    b.iter("alias_build_256", || {
        black_box(AliasTable::new(black_box(&weights)))
    });
    let table = AliasTable::new(&weights);
    let mut rng2 = SeededRng::from_seed(5);
    b.iter("alias_sample", || black_box(table.sample(&mut rng2)));
    let mut rng3 = SeededRng::from_seed(6);
    b.iter("planar_laplace_radius", || {
        black_box(planar_laplace_radius(black_box(0.5), &mut rng3))
    });
}

fn bench_budget_allocation(b: &mut Bench) {
    let alloc = BudgetAllocator::new(20.0, 4, 0.8);
    b.iter("problem1_min_budget_level1", || {
        black_box(alloc.min_budget_for_level(black_box(1)))
    });
    b.iter("algorithm2_allocate", || {
        black_box(alloc.allocate(black_box(0.9), AllocationStrategy::Auto { max_height: 5 }))
    });
}

fn main() {
    let mut b = Bench::new("numerics");
    bench_lattice(&mut b);
    bench_special_functions(&mut b);
    bench_sampling(&mut b);
    bench_budget_allocation(&mut b);
    b.finish();
}
