//! Criterion micro-benchmarks for the three mechanisms.
//!
//! These complement the `experiments` binary (which regenerates the paper's
//! tables/figures): here we pin the per-operation costs — a PL sample, a
//! warm MSM report, an OPT solve — that the paper's Section 6.2 discusses
//! qualitatively ("PL takes ~10 ms, MSM 100–200 ms amortized, OPT minutes").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use geoind_core::metrics::QualityMetric;
use geoind_core::msm::MsmMechanism;
use geoind_core::opt::OptimalMechanism;
use geoind_core::planar_laplace::PlanarLaplace;
use geoind_core::Mechanism;
use geoind_data::prior::GridPrior;
use geoind_data::synth::SyntheticCity;
use geoind_spatial::geom::Point;
use geoind_spatial::grid::Grid;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_planar_laplace(c: &mut Criterion) {
    let pl = PlanarLaplace::new(0.5);
    let grid = Grid::new(geoind_spatial::geom::BBox::square(20.0), 16);
    let pl_grid = PlanarLaplace::new(0.5).with_grid_remap(grid);
    let x = Point::new(10.0, 10.0);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("pl_report_continuous", |b| {
        b.iter(|| black_box(pl.report(black_box(x), &mut rng)))
    });
    c.bench_function("pl_report_grid_remap", |b| {
        b.iter(|| black_box(pl_grid.report(black_box(x), &mut rng)))
    });
}

fn bench_opt_solve(c: &mut Criterion) {
    let dataset = SyntheticCity::austin_like().generate_with_size(30_000, 3_000);
    let domain = dataset.domain();
    for g in [3u32, 4] {
        let grid = Grid::new(domain, g);
        let prior = GridPrior::from_dataset(&dataset, g);
        let mut group = c.benchmark_group("opt_solve");
        group.sample_size(10);
        group.bench_function(format!("g{g}_{}cells", g * g), |b| {
            b.iter(|| {
                black_box(
                    OptimalMechanism::on_grid(0.5, &grid, &prior, QualityMetric::Euclidean)
                        .unwrap(),
                )
            })
        });
        group.finish();
    }
}

fn bench_msm_report(c: &mut Criterion) {
    let dataset = SyntheticCity::austin_like().generate_with_size(30_000, 3_000);
    let prior = GridPrior::from_dataset(&dataset, 16);
    let msm = MsmMechanism::builder(dataset.domain(), prior)
        .epsilon(0.5)
        .granularity(4)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    // Warm the per-node channel cache first (the client's steady state).
    for i in 0..50 {
        msm.report(Point::new((i % 19) as f64, (i % 17) as f64), &mut rng);
    }
    let x = Point::new(9.3, 8.7);
    c.bench_function("msm_report_warm_cache", |b| {
        b.iter(|| black_box(msm.report(black_box(x), &mut rng)))
    });
}

fn bench_channel_sampling(c: &mut Criterion) {
    let dataset = SyntheticCity::austin_like().generate_with_size(30_000, 3_000);
    let grid = Grid::new(dataset.domain(), 4);
    let prior = GridPrior::from_dataset(&dataset, 4);
    let opt = OptimalMechanism::on_grid(0.5, &grid, &prior, QualityMetric::Euclidean).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("channel_sample_row", |b| {
        b.iter(|| black_box(opt.channel().sample(black_box(5), &mut rng)))
    });
    c.bench_function("channel_geoind_check_16cells", |b| {
        b.iter_batched(
            || opt.channel().clone(),
            |ch| black_box(ch.geoind_violation(0.5)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_planar_laplace,
    bench_opt_solve,
    bench_msm_report,
    bench_channel_sampling
);
criterion_main!(benches);
