//! Wall-clock micro-benchmarks for the three mechanisms.
//!
//! These complement the `experiments` binary (which regenerates the paper's
//! tables/figures): here we pin the per-operation costs — a PL sample, a
//! warm MSM report, an OPT solve — that the paper's Section 6.2 discusses
//! qualitatively ("PL takes ~10 ms, MSM 100–200 ms amortized, OPT minutes").

use geoind_core::metrics::QualityMetric;
use geoind_core::msm::MsmMechanism;
use geoind_core::opt::OptimalMechanism;
use geoind_core::planar_laplace::PlanarLaplace;
use geoind_core::Mechanism;
use geoind_data::prior::GridPrior;
use geoind_data::synth::SyntheticCity;
use geoind_rng::SeededRng;
use geoind_spatial::geom::Point;
use geoind_spatial::grid::Grid;
use geoind_testkit::bench::Bench;
use std::hint::black_box;

fn bench_planar_laplace(b: &mut Bench) {
    let pl = PlanarLaplace::new(0.5);
    let grid = Grid::new(geoind_spatial::geom::BBox::square(20.0), 16);
    let pl_grid = PlanarLaplace::new(0.5).with_grid_remap(grid);
    let x = Point::new(10.0, 10.0);
    let mut rng = SeededRng::from_seed(1);
    b.iter("pl_report_continuous", || {
        black_box(pl.report(black_box(x), &mut rng))
    });
    let mut rng2 = SeededRng::from_seed(1);
    b.iter("pl_report_grid_remap", || {
        black_box(pl_grid.report(black_box(x), &mut rng2))
    });
}

fn bench_opt_solve(b: &mut Bench) {
    let dataset = SyntheticCity::austin_like().generate_with_size(30_000, 3_000);
    let domain = dataset.domain();
    for g in [3u32, 4] {
        let grid = Grid::new(domain, g);
        let prior = GridPrior::from_dataset(&dataset, g);
        b.iter(&format!("opt_solve/g{g}_{}cells", g * g), || {
            black_box(
                OptimalMechanism::on_grid(0.5, &grid, &prior, QualityMetric::Euclidean).unwrap(),
            )
        });
    }
}

fn bench_msm_report(b: &mut Bench) {
    let dataset = SyntheticCity::austin_like().generate_with_size(30_000, 3_000);
    let prior = GridPrior::from_dataset(&dataset, 16);
    let msm = MsmMechanism::builder(dataset.domain(), prior)
        .epsilon(0.5)
        .granularity(4)
        .build()
        .unwrap();
    let mut rng = SeededRng::from_seed(2);
    // Warm the per-node channel cache first (the client's steady state).
    for i in 0..50 {
        msm.report(Point::new((i % 19) as f64, (i % 17) as f64), &mut rng);
    }
    let x = Point::new(9.3, 8.7);
    b.iter("msm_report_warm_cache", || {
        black_box(msm.report(black_box(x), &mut rng))
    });
}

fn bench_channel_sampling(b: &mut Bench) {
    let dataset = SyntheticCity::austin_like().generate_with_size(30_000, 3_000);
    let grid = Grid::new(dataset.domain(), 4);
    let prior = GridPrior::from_dataset(&dataset, 4);
    let opt = OptimalMechanism::on_grid(0.5, &grid, &prior, QualityMetric::Euclidean).unwrap();
    let mut rng = SeededRng::from_seed(3);
    b.iter("channel_sample_row", || {
        black_box(opt.channel().sample(black_box(5), &mut rng))
    });
    b.iter_batched(
        "channel_geoind_check_16cells",
        || opt.channel().clone(),
        |ch| black_box(ch.geoind_violation(0.5)),
    );
}

fn main() {
    let mut b = Bench::new("mechanisms");
    bench_planar_laplace(&mut b);
    bench_opt_solve(&mut b);
    bench_msm_report(&mut b);
    bench_channel_sampling(&mut b);
    b.finish();
}
