//! # geoind-rng — deterministic randomness for a hermetic workspace
//!
//! A from-scratch seeded PRNG so the workspace builds and tests with zero
//! external dependencies. The generator is **xoshiro256++** (Blackman &
//! Vigna), whose 256-bit state is expanded from a single `u64` seed with
//! **SplitMix64** — the standard pairing recommended by the xoshiro authors,
//! which guarantees a non-zero state and decorrelates nearby seeds.
//!
//! This is a *statistical* PRNG for sampling mechanisms and experiments; it
//! is explicitly **not** cryptographically secure. Every draw is a pure
//! function of the seed, so any experiment is reproducible bit-for-bit by
//! recording one `u64`.
//!
//! ```
//! use geoind_rng::{Rng, SeededRng};
//!
//! let mut rng = SeededRng::from_seed(42);
//! let u = rng.gen_f64();          // uniform in [0, 1)
//! let i = rng.gen_range(0..10);   // uniform in {0, .., 9}
//! let x = rng.gen_range(-2.0..2.0);
//! assert!((0.0..1.0).contains(&u) && i < 10 && (-2.0..2.0).contains(&x));
//!
//! // Same seed, same stream — always.
//! let (mut a, mut b) = (SeededRng::from_seed(7), SeededRng::from_seed(7));
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// next output. Used for seed expansion and for deriving per-case seeds in
/// the test harness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of uniform randomness.
///
/// The trait is deliberately tiny: everything derives from [`next_u64`].
/// It mirrors the subset of `rand::Rng` this workspace actually used, so
/// call sites read the same (`gen_f64`, `gen_range`, `gen_bool`).
///
/// [`next_u64`]: Rng::next_u64
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        // Take the top 53 bits: the low bits of xoshiro256++ are its
        // weakest, and 53 is all an f64 mantissa can hold anyway.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[0, n)` without modulo bias (rejection sampling).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn gen_u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_u64_below: empty range");
        // Accept x < zone where zone is the largest multiple of n <= 2^64;
        // each residue then appears exactly zone/n times.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % n;
            }
        }
    }

    /// A uniform sample from `range` (exclusive `a..b` or inclusive
    /// `a..=b`, over the float and integer types used in this workspace).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draw one uniform sample using `rng`.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Largest `f64` strictly below `x` (for `x` finite and positive-normal
/// arithmetic results); used to keep `gen_range(a..b)` strictly below `b`
/// when rounding would otherwise land exactly on `b`.
fn next_below(x: f64) -> f64 {
    // Bit-decrement works for all finite positive-magnitude cases we can
    // reach here (a < b implies the sampled value is finite).
    if x == f64::NEG_INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x > 0.0 {
        bits - 1
    } else if x < 0.0 {
        bits + 1
    } else {
        // x == 0.0 (either sign): step to the smallest negative subnormal.
        (-f64::from_bits(1)).to_bits()
    };
    f64::from_bits(next)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range: empty f64 range {:?}",
            self
        );
        let v = self.start + (self.end - self.start) * rng.gen_f64();
        // Rounding can land exactly on `end`; keep the contract half-open.
        if v < self.end {
            v
        } else {
            next_below(self.end)
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "gen_range: empty f64 range {:?}", self);
        a + (b - a) * rng.gen_f64()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range {:?}", self);
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.gen_u64_below(width) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range {:?}", self);
                let width = (b as i128 - a as i128) as u64;
                if width == u64::MAX {
                    // Full-width range: every u64 pattern is valid.
                    return a.wrapping_add(rng.next_u64() as $t);
                }
                a.wrapping_add(rng.gen_u64_below(width + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seeded xoshiro256++ generator — the workspace's only PRNG.
///
/// Construct with [`SeededRng::from_seed`]; identical seeds yield identical
/// streams on every platform (the algorithm is pure 64-bit integer
/// arithmetic, no floating point in the state transition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Expand a single `u64` seed into the 256-bit state via SplitMix64.
    ///
    /// SplitMix64 never produces four zero outputs in a row, so the
    /// all-zero fixed point of xoshiro is unreachable.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Construct from a raw 256-bit state (must not be all zeros).
    ///
    /// # Panics
    /// Panics if `state == [0; 4]` — the degenerate fixed point.
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(state != [0; 4], "xoshiro256++ state must be non-zero");
        Self { s: state }
    }

    /// Derive an independent generator from this one (e.g. one stream per
    /// thread or per test case) by reseeding through SplitMix64.
    pub fn fork(&mut self) -> Self {
        Self::from_seed(self.next_u64())
    }
}

impl Rng for SeededRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector for xoshiro256++ from state [1, 2, 3, 4]
    /// (cross-checked against an independent implementation and the
    /// published rand_xoshiro test vector).
    #[test]
    fn xoshiro_reference_vector() {
        let mut rng = SeededRng::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// Reference vector for SplitMix64 from state 0.
    #[test]
    fn splitmix_reference_vector() {
        let mut state = 0u64;
        let expected: [u64; 4] = [
            16294208416658607535,
            7960286522194355700,
            487617019471545679,
            17909611376780542444,
        ];
        for &e in &expected {
            assert_eq!(splitmix64(&mut state), e);
        }
    }

    /// from_seed = SplitMix64 expansion feeding xoshiro256++ (pinned so a
    /// refactor cannot silently change every seeded experiment).
    #[test]
    fn seeding_is_pinned() {
        let mut rng = SeededRng::from_seed(42);
        let expected: [u64; 5] = [
            15021278609987233951,
            5881210131331364753,
            18149643915985481100,
            12933668939759105464,
            14637574242682825331,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::from_seed(1234567);
        let mut b = SeededRng::from_seed(1234567);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_is_half_open_unit() {
        let mut rng = SeededRng::from_seed(9);
        for _ in 0..10_000 {
            let u = rng.gen_f64();
            assert!((0.0..1.0).contains(&u), "out of [0,1): {u}");
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SeededRng::from_seed(10);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&v), "out of range: {v}");
            let w = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(w > 0.0 && w < 1.0);
        }
    }

    #[test]
    fn int_ranges_cover_exactly_their_support() {
        let mut rng = SeededRng::from_seed(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residue never sampled");
        for _ in 0..1000 {
            let v = rng.gen_range(1..=10usize);
            assert!((1..=10).contains(&v));
            let n = rng.gen_range(-3..3i64);
            assert!((-3..3).contains(&n));
        }
        // Degenerate one-element ranges.
        assert_eq!(rng.gen_range(5..6usize), 5);
        assert_eq!(rng.gen_range(7..=7u32), 7);
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = SeededRng::from_seed(3);
        let mut b = a.fork();
        let pa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let pb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = SeededRng::from_state([0; 4]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_range_panics() {
        let mut rng = SeededRng::from_seed(1);
        let _ = rng.gen_range(5..5usize);
    }
}
