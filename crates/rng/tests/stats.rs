//! Statistical smoke tests for the in-repo PRNG: the workspace's privacy
//! mechanisms sample from this generator, so it must not be trusted blindly.
//! All tests use fixed seeds and therefore deterministic pass/fail: the
//! bounds are 3σ (or the χ² p=0.001 critical value), checked once at seeds
//! that are known-good — they guard against regressions in the generator,
//! not against cosmic bad luck.

use geoind_rng::{Rng, SeededRng};

const N: usize = 100_000;

/// Mean of n uniforms: E = 1/2, Var of the mean = 1/(12n).
#[test]
fn uniform_mean_within_3_sigma() {
    for seed in [1u64, 42, 0xDEADBEEF] {
        let mut rng = SeededRng::from_seed(seed);
        let mean = (0..N).map(|_| rng.gen_f64()).sum::<f64>() / N as f64;
        let sigma = (1.0 / (12.0 * N as f64)).sqrt();
        assert!(
            (mean - 0.5).abs() < 3.0 * sigma,
            "seed {seed}: mean {mean} deviates from 1/2 by more than 3σ ({sigma:.2e})"
        );
    }
}

/// Sample variance of n uniforms: E = 1/12; Var(s²) ≈ (μ₄ − σ⁴)/n with
/// μ₄ = 1/80 for U(0,1), giving σ(s²) = sqrt(1/180/n).
#[test]
fn uniform_variance_within_3_sigma() {
    for seed in [2u64, 77, 0xC0FFEE] {
        let mut rng = SeededRng::from_seed(seed);
        let draws: Vec<f64> = (0..N).map(|_| rng.gen_f64()).collect();
        let mean = draws.iter().sum::<f64>() / N as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (N as f64 - 1.0);
        let sigma = (1.0 / (180.0 * N as f64)).sqrt();
        assert!(
            (var - 1.0 / 12.0).abs() < 3.0 * sigma,
            "seed {seed}: variance {var} deviates from 1/12 by more than 3σ ({sigma:.2e})"
        );
    }
}

/// χ² goodness-of-fit on 16 equiprobable bins of [0,1). With 15 degrees of
/// freedom the p=0.001 critical value is 37.70; exceeding it at a fixed
/// seed means the generator (not luck) changed.
#[test]
fn uniform_chi_square_16_bins() {
    for seed in [3u64, 1001, 0xFEED] {
        let mut rng = SeededRng::from_seed(seed);
        let mut counts = [0u64; 16];
        for _ in 0..N {
            let bin = (rng.gen_f64() * 16.0) as usize;
            counts[bin.min(15)] += 1;
        }
        let expected = N as f64 / 16.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(
            chi2 < 37.70,
            "seed {seed}: χ² = {chi2:.2} exceeds the df=15, p=0.001 critical value 37.70"
        );
    }
}

/// The same χ² check on the *low* bits of `next_u64` (the weakest bits of
/// xoshiro-family generators) via integer ranges.
#[test]
fn integer_range_chi_square_16_bins() {
    for seed in [4u64, 2024] {
        let mut rng = SeededRng::from_seed(seed);
        let mut counts = [0u64; 16];
        for _ in 0..N {
            counts[rng.gen_range(0..16usize)] += 1;
        }
        let expected = N as f64 / 16.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(
            chi2 < 37.70,
            "seed {seed}: χ² = {chi2:.2} exceeds the df=15, p=0.001 critical value 37.70"
        );
    }
}

/// Serial correlation at lag 1 should be ~0: |r| < 3/sqrt(n).
#[test]
fn lag_1_autocorrelation_is_negligible() {
    let mut rng = SeededRng::from_seed(5);
    let draws: Vec<f64> = (0..N).map(|_| rng.gen_f64()).collect();
    let mean = draws.iter().sum::<f64>() / N as f64;
    let var: f64 = draws.iter().map(|x| (x - mean) * (x - mean)).sum();
    let cov: f64 = draws
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum();
    let r = cov / var;
    assert!(
        r.abs() < 3.0 / (N as f64).sqrt(),
        "lag-1 autocorrelation {r} too large"
    );
}
