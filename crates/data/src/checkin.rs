//! Check-in records and dataset containers.

use geoind_spatial::geom::{BBox, Point};

/// One check-in: a user reporting presence at a location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckIn {
    /// Opaque user identifier.
    pub user: u64,
    /// Location on the local km-plane.
    pub location: Point,
}

/// An in-memory check-in dataset over a square domain.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    domain: BBox,
    checkins: Vec<CheckIn>,
}

impl Dataset {
    /// Build a dataset, dropping check-ins that fall outside `domain`.
    pub fn new(name: impl Into<String>, domain: BBox, checkins: Vec<CheckIn>) -> Self {
        let checkins: Vec<CheckIn> = checkins
            .into_iter()
            .filter(|c| domain.contains(c.location))
            .collect();
        Self {
            name: name.into(),
            domain,
            checkins,
        }
    }

    /// Human-readable dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The square spatial domain.
    pub fn domain(&self) -> BBox {
        self.domain
    }

    /// All check-ins.
    pub fn checkins(&self) -> &[CheckIn] {
        &self.checkins
    }

    /// All check-in locations.
    pub fn locations(&self) -> impl Iterator<Item = Point> + '_ {
        self.checkins.iter().map(|c| c.location)
    }

    /// Number of check-ins.
    pub fn len(&self) -> usize {
        self.checkins.len()
    }

    /// True when the dataset holds no check-ins.
    pub fn is_empty(&self) -> bool {
        self.checkins.is_empty()
    }

    /// Number of distinct users.
    pub fn num_users(&self) -> usize {
        let mut ids: Vec<u64> = self.checkins.iter().map(|c| c.user).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_domain_checkins_dropped() {
        let d = Dataset::new(
            "t",
            BBox::square(10.0),
            vec![
                CheckIn {
                    user: 1,
                    location: Point::new(5.0, 5.0),
                },
                CheckIn {
                    user: 2,
                    location: Point::new(15.0, 5.0),
                },
                CheckIn {
                    user: 1,
                    location: Point::new(-1.0, 0.0),
                },
            ],
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d.num_users(), 1);
    }

    #[test]
    fn user_counting() {
        let mk = |u, x| CheckIn {
            user: u,
            location: Point::new(x, 1.0),
        };
        let d = Dataset::new(
            "t",
            BBox::square(10.0),
            vec![mk(1, 1.0), mk(2, 2.0), mk(1, 3.0), mk(3, 4.0)],
        );
        assert_eq!(d.len(), 4);
        assert_eq!(d.num_users(), 3);
        assert!(!d.is_empty());
    }
}
