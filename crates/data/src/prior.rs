//! Grid-histogram priors — the adversary's background knowledge `Π`.
//!
//! Following Section 6.1 of the paper: a global prior is computed on the
//! finest effective grid by counting check-ins per cell relative to the
//! total, and aggregated to coarser grids as needed. The prior describes the
//! behaviour of an *average* user and feeds the optimal mechanism's
//! objective.

use crate::checkin::Dataset;
use geoind_spatial::geom::{BBox, Point};
use geoind_spatial::grid::{CellId, Grid};

/// A probability distribution over the cells of a [`Grid`].
#[derive(Debug, Clone)]
pub struct GridPrior {
    grid: Grid,
    probs: Vec<f64>,
}

impl GridPrior {
    /// Count check-ins of `dataset` on a `g×g` grid and normalize.
    pub fn from_dataset(dataset: &Dataset, g: u32) -> Self {
        Self::from_points(dataset.domain(), g, dataset.locations())
    }

    /// Count arbitrary points on a `g×g` grid over `domain` and normalize.
    /// Points outside the domain are ignored. An empty point set yields the
    /// uniform prior.
    pub fn from_points(domain: BBox, g: u32, points: impl IntoIterator<Item = Point>) -> Self {
        let grid = Grid::new(domain, g);
        let mut counts = vec![0.0f64; grid.num_cells()];
        for p in points {
            if domain.contains(p) {
                counts[grid.cell_of(p)] += 1.0;
            }
        }
        Self::from_weights(grid, counts)
    }

    /// The uniform prior on a `g×g` grid.
    pub fn uniform(domain: BBox, g: u32) -> Self {
        let grid = Grid::new(domain, g);
        let n = grid.num_cells();
        Self {
            probs: vec![1.0 / n as f64; n],
            grid,
        }
    }

    /// Normalize non-negative weights into a prior. All-zero weights fall
    /// back to uniform.
    ///
    /// # Panics
    /// Panics on negative/non-finite weights or a length mismatch.
    pub fn from_weights(grid: Grid, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            grid.num_cells(),
            "weight/cell count mismatch"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "invalid prior weight {w}");
                w
            })
            .sum();
        if total <= 0.0 {
            return Self::uniform(grid.domain(), grid.granularity());
        }
        let probs = weights.into_iter().map(|w| w / total).collect();
        Self { grid, probs }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Cell probabilities, in cell-id order (sums to 1).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability mass of one cell.
    pub fn prob(&self, cell: CellId) -> f64 {
        self.probs[cell]
    }

    /// Probability mass inside an axis-aligned region, attributing each cell
    /// to the region containing its center. Exact whenever `region` is
    /// aligned with cell boundaries (the only way the mechanisms call it).
    pub fn mass_in(&self, region: BBox) -> f64 {
        let g = self.grid.granularity() as i64;
        let side = self.grid.cell_side();
        let min = self.grid.domain().min;
        // Index range of cells whose centers can lie inside the region.
        let c0 = (((region.min.x - min.x) / side - 0.5).ceil() as i64).clamp(0, g - 1);
        let c1 = (((region.max.x - min.x) / side - 0.5).floor() as i64).clamp(0, g - 1);
        let r0 = (((region.min.y - min.y) / side - 0.5).ceil() as i64).clamp(0, g - 1);
        let r1 = (((region.max.y - min.y) / side - 0.5).floor() as i64).clamp(0, g - 1);
        let mut total = 0.0;
        for r in r0..=r1 {
            for c in c0..=c1 {
                let id = (r * g + c) as usize;
                if region.contains(self.grid.center_of(id)) {
                    total += self.probs[id];
                }
            }
        }
        total
    }

    /// Aggregate to a coarser `g×g` prior by summing fine cells into the
    /// coarse cell containing their center (exact when granularities divide).
    pub fn aggregate_to(&self, g: u32) -> GridPrior {
        let coarse = Grid::new(self.grid.domain(), g);
        let mut weights = vec![0.0f64; coarse.num_cells()];
        for (id, &p) in self.probs.iter().enumerate() {
            weights[coarse.cell_of(self.grid.center_of(id))] += p;
        }
        GridPrior::from_weights(coarse, weights)
    }

    /// Raw (unnormalized) masses of a list of regions, each by center
    /// membership. Renormalization is the caller's business — the multi-step
    /// mechanism renormalizes within the sub-grid it is currently expanding.
    pub fn masses(&self, regions: &[BBox]) -> Vec<f64> {
        regions.iter().map(|r| self.mass_in(*r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::CheckIn;

    fn point_dataset(points: &[(f64, f64)]) -> Dataset {
        Dataset::new(
            "t",
            BBox::square(8.0),
            points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| CheckIn {
                    user: i as u64,
                    location: Point::new(x, y),
                })
                .collect(),
        )
    }

    #[test]
    fn counts_normalize() {
        let ds = point_dataset(&[(1.0, 1.0), (1.5, 1.5), (7.0, 7.0), (6.5, 7.5)]);
        let p = GridPrior::from_dataset(&ds, 2);
        assert_eq!(p.probs().len(), 4);
        assert!((p.prob(0) - 0.5).abs() < 1e-12);
        assert!((p.prob(3) - 0.5).abs() < 1e-12);
        assert!((p.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_gives_uniform() {
        let ds = point_dataset(&[]);
        let p = GridPrior::from_dataset(&ds, 4);
        for &q in p.probs() {
            assert!((q - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_constructor() {
        let p = GridPrior::uniform(BBox::square(8.0), 3);
        assert!((p.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p.prob(4) - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_preserves_mass() {
        let ds = point_dataset(&[(0.5, 0.5), (1.5, 0.5), (7.9, 7.9), (4.5, 4.5), (5.5, 5.5)]);
        let fine = GridPrior::from_dataset(&ds, 8);
        let coarse = fine.aggregate_to(2);
        assert!((coarse.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Bottom-left quadrant holds 2 of 5 points.
        assert!((coarse.prob(0) - 0.4).abs() < 1e-12);
        // Top-right quadrant holds 3 of 5 (7.9,7.9 / 4.5,4.5 / 5.5,5.5).
        assert!((coarse.prob(3) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn mass_in_aligned_regions_is_exact() {
        let ds = point_dataset(&[(0.5, 0.5), (3.5, 0.5), (7.5, 7.5)]);
        let p = GridPrior::from_dataset(&ds, 8);
        let left_half = BBox::new(Point::new(0.0, 0.0), Point::new(4.0, 8.0));
        assert!((p.mass_in(left_half) - 2.0 / 3.0).abs() < 1e-12);
        let whole = BBox::square(8.0);
        assert!((p.mass_in(whole) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn masses_of_quadrants_sum_to_one() {
        let ds = point_dataset(&[(1.0, 1.0), (5.0, 1.0), (1.0, 5.0), (5.0, 5.0), (6.0, 6.0)]);
        let p = GridPrior::from_dataset(&ds, 8);
        let q = |x0: f64, y0: f64| BBox::new(Point::new(x0, y0), Point::new(x0 + 4.0, y0 + 4.0));
        let regions = [q(0.0, 0.0), q(4.0, 0.0), q(0.0, 4.0), q(4.0, 4.0)];
        let m = p.masses(&regions);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((m[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid prior weight")]
    fn negative_weights_panic() {
        let grid = Grid::new(BBox::square(4.0), 2);
        GridPrior::from_weights(grid, vec![0.5, -0.1, 0.3, 0.3]);
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let grid = Grid::new(BBox::square(4.0), 2);
        let p = GridPrior::from_weights(grid, vec![0.0; 4]);
        for &q in p.probs() {
            assert!((q - 0.25).abs() < 1e-12);
        }
    }
}
