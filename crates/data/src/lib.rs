//! Check-in datasets, synthetic urban generators, and grid-histogram priors.
//!
//! The paper evaluates on check-ins from two geo-social apps — Gowalla
//! (Austin, TX: 265,571 check-ins / 12,155 users) and Yelp (Las Vegas, NV:
//! 81,201 check-ins / 7,581 users) — each clipped to a 20×20 km urban box.
//! Those raw dumps are not redistributable, so this crate ships:
//!
//! * [`checkin`] — the dataset container used throughout the workspace;
//! * [`synth`] — seeded synthetic city generators that reproduce the
//!   statistical shape the mechanisms care about (a heavily skewed,
//!   multi-cluster prior over a 20×20 km square) at the paper's scale;
//! * [`loader`] — parsers for the genuine SNAP-Gowalla and Yelp CSV layouts,
//!   so the real data drops in when available;
//! * [`prior`] — the grid-histogram prior `Π` of Section 6.1, including
//!   fine→coarse aggregation and sub-grid restriction for the multi-step
//!   mechanism.

#![warn(missing_docs)]
// Index-based loops over parallel arrays are the clearest style for the
// numeric kernels here; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Test reference constants keep full printed precision from their sources.
#![allow(clippy::excessive_precision)]

pub mod checkin;
pub mod loader;
pub mod prior;
pub mod synth;

pub use checkin::{CheckIn, Dataset};
pub use prior::GridPrior;
pub use synth::SyntheticCity;
