//! Loaders for the genuine dataset formats used by the paper.
//!
//! * [`load_gowalla`] reads the SNAP Gowalla dump
//!   (`user \t check-in-time \t latitude \t longitude \t location-id`, one
//!   check-in per line).
//! * [`load_checkin_csv`] reads a simple `user,lat,lon` CSV with a header —
//!   the shape of a Yelp-review extract after projecting reviews to
//!   (user, business location) pairs.
//!
//! Both clip to a lat/lon window ([`GeoBounds`]; the paper's Austin and Las
//! Vegas windows ship as constants), project to a local km-plane, and shift
//! so the window's south-west corner sits at the origin of a square domain.

use crate::checkin::{CheckIn, Dataset};
use geoind_spatial::geom::{BBox, Point, Projection};
use geoind_testkit::failpoint;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// A latitude/longitude window.
#[derive(Debug, Clone, Copy)]
pub struct GeoBounds {
    /// Southern edge, degrees.
    pub min_lat: f64,
    /// Northern edge, degrees.
    pub max_lat: f64,
    /// Western edge, degrees.
    pub min_lon: f64,
    /// Eastern edge, degrees.
    pub max_lon: f64,
}

/// The paper's Gowalla window: Austin, TX (20×20 km).
pub const AUSTIN: GeoBounds = GeoBounds {
    min_lat: 30.1927,
    max_lat: 30.3723,
    min_lon: -97.8698,
    max_lon: -97.6618,
};

/// The paper's Yelp window: Las Vegas, NV (20×20 km).
pub const LAS_VEGAS: GeoBounds = GeoBounds {
    min_lat: 36.0645,
    max_lat: 36.2442,
    min_lon: -115.291,
    max_lon: -115.069,
};

impl GeoBounds {
    /// True if a coordinate lies inside the window.
    pub fn contains(&self, lat: f64, lon: f64) -> bool {
        lat >= self.min_lat && lat <= self.max_lat && lon >= self.min_lon && lon <= self.max_lon
    }

    /// Projection anchored at the window center.
    pub fn projection(&self) -> Projection {
        Projection::new(
            0.5 * (self.min_lat + self.max_lat),
            0.5 * (self.min_lon + self.max_lon),
        )
    }

    /// The square km-plane domain for this window (south-west corner at the
    /// origin; side = the larger of the projected extents).
    pub fn domain(&self) -> BBox {
        let proj = self.projection();
        let sw = proj.project(self.min_lat, self.min_lon);
        let ne = proj.project(self.max_lat, self.max_lon);
        BBox::new(Point::new(0.0, 0.0), Point::new(ne.x - sw.x, ne.y - sw.y)).enclosing_square()
    }

    /// Project a coordinate into [`GeoBounds::domain`] space.
    pub fn to_plane(&self, lat: f64, lon: f64) -> Point {
        let proj = self.projection();
        let sw = proj.project(self.min_lat, self.min_lon);
        let p = proj.project(lat, lon);
        Point::new(p.x - sw.x, p.y - sw.y)
    }
}

/// Errors raised while loading a dataset file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and description).
    Parse(usize, String),
    /// The file ended mid-record (1-based line count read so far).
    Truncated(usize),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(_) => write!(f, "i/o failure"),
            LoadError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            LoadError::Truncated(line) => {
                write!(f, "file ends mid-record after line {line}")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Load a SNAP-format Gowalla dump, keeping check-ins inside `bounds`.
///
/// Lines that fail to parse raise [`LoadError::Parse`]; out-of-window
/// check-ins are silently skipped (that is the paper's clipping step).
pub fn load_gowalla(path: impl AsRef<Path>, bounds: GeoBounds) -> Result<Dataset, LoadError> {
    let file = std::fs::File::open(path.as_ref())?;
    let reader = BufReader::new(file);
    let mut checkins = Vec::new();
    let mut lines_read = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let user: u64 = next_field(&mut fields, lineno, "user")?
            .parse()
            .map_err(|e| LoadError::Parse(lineno + 1, format!("user id: {e}")))?;
        let _time = next_field(&mut fields, lineno, "timestamp")?;
        let lat: f64 = next_field(&mut fields, lineno, "latitude")?
            .parse()
            .map_err(|e| LoadError::Parse(lineno + 1, format!("latitude: {e}")))?;
        let lon: f64 = next_field(&mut fields, lineno, "longitude")?
            .parse()
            .map_err(|e| LoadError::Parse(lineno + 1, format!("longitude: {e}")))?;
        if bounds.contains(lat, lon) {
            checkins.push(CheckIn {
                user,
                location: bounds.to_plane(lat, lon),
            });
        }
        lines_read = lineno + 1;
    }
    if failpoint::hit("data.loader.truncated") {
        return Err(LoadError::Truncated(lines_read));
    }
    Ok(Dataset::new("gowalla", bounds.domain(), checkins))
}

/// Load a `user,lat,lon` CSV (header required), keeping rows inside
/// `bounds`.
pub fn load_checkin_csv(
    path: impl AsRef<Path>,
    name: &str,
    bounds: GeoBounds,
) -> Result<Dataset, LoadError> {
    let file = std::fs::File::open(path.as_ref())?;
    let reader = BufReader::new(file);
    let mut checkins = Vec::new();
    let mut lines_read = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        let mut fields = line.split(',');
        let user: u64 = next_field(&mut fields, lineno, "user")?
            .trim()
            .parse()
            .map_err(|e| LoadError::Parse(lineno + 1, format!("user id: {e}")))?;
        let lat: f64 = next_field(&mut fields, lineno, "lat")?
            .trim()
            .parse()
            .map_err(|e| LoadError::Parse(lineno + 1, format!("latitude: {e}")))?;
        let lon: f64 = next_field(&mut fields, lineno, "lon")?
            .trim()
            .parse()
            .map_err(|e| LoadError::Parse(lineno + 1, format!("longitude: {e}")))?;
        if bounds.contains(lat, lon) {
            checkins.push(CheckIn {
                user,
                location: bounds.to_plane(lat, lon),
            });
        }
        lines_read = lineno + 1;
    }
    if failpoint::hit("data.loader.truncated") {
        return Err(LoadError::Truncated(lines_read));
    }
    Ok(Dataset::new(name, bounds.domain(), checkins))
}

fn next_field<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<&'a str, LoadError> {
    fields
        .next()
        .ok_or_else(|| LoadError::Parse(lineno + 1, format!("missing field: {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, content: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("geoind-test-{}-{name}", std::process::id()));
        let mut f = std::fs::File::create(&p).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        p
    }

    #[test]
    fn austin_window_is_20km_square() {
        let d = AUSTIN.domain();
        assert!((d.side() - 20.0).abs() < 0.5, "side {}", d.side());
    }

    #[test]
    fn vegas_window_is_20km_square() {
        let d = LAS_VEGAS.domain();
        assert!((d.side() - 20.0).abs() < 0.5, "side {}", d.side());
    }

    #[test]
    fn gowalla_roundtrip() {
        let content = "\
0\t2010-10-19T23:55:27Z\t30.2357\t-97.7947\t22847
0\t2010-10-18T22:17:43Z\t30.2691\t-97.7494\t420315
1\t2010-10-17T23:42:03Z\t40.6438\t-73.7828\t316637

2\t2010-10-17T19:26:05Z\t30.2557\t-97.7633\t16516
";
        let path = temp_file("gowalla.txt", content);
        let ds = load_gowalla(&path, AUSTIN).unwrap();
        std::fs::remove_file(&path).ok();
        // The New-York check-in is clipped away.
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.num_users(), 2);
        for c in ds.checkins() {
            assert!(ds.domain().contains(c.location));
        }
    }

    #[test]
    fn gowalla_bad_line_reports_position() {
        let path = temp_file("bad.txt", "0\t2010\tnot-a-lat\t-97.7\t1\n");
        let err = load_gowalla(&path, AUSTIN).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            LoadError::Parse(line, msg) => {
                assert_eq!(line, 1);
                assert!(msg.contains("latitude"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn csv_loader_with_header() {
        let content = "user,lat,lon\n7,36.1,-115.17\n8,36.12,-115.2\n9,10.0,10.0\n";
        let path = temp_file("yelp.csv", content);
        let ds = load_checkin_csv(&path, "yelp", LAS_VEGAS).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.name(), "yelp");
    }

    #[test]
    fn armed_truncation_failpoint_surfaces_as_truncated() {
        let content = "\
0\t2010-10-19T23:55:27Z\t30.2357\t-97.7947\t22847
2\t2010-10-17T19:26:05Z\t30.2557\t-97.7633\t16516
";
        let path = temp_file("trunc.txt", content);
        let mut session = failpoint::Session::new();
        session.arm("data.loader.truncated", failpoint::FailSpec::times(1));
        let err = load_gowalla(&path, AUSTIN).unwrap_err();
        match err {
            LoadError::Truncated(lines) => assert_eq!(lines, 2),
            other => panic!("unexpected error {other:?}"),
        }
        // The spec is consumed: the next load succeeds.
        let ds = load_gowalla(&path, AUSTIN).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ds.len(), 2);
        assert_eq!(session.fired("data.loader.truncated"), 1);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_gowalla("/nonexistent/definitely/missing.txt", AUSTIN).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }

    #[test]
    fn plane_projection_keeps_relative_positions() {
        // A point on the window's west edge maps near x=0; east edge near
        // the domain side.
        let w = AUSTIN.to_plane(30.28, AUSTIN.min_lon);
        let e = AUSTIN.to_plane(30.28, AUSTIN.max_lon);
        assert!(w.x.abs() < 1e-9);
        assert!((e.x - AUSTIN.domain().side()).abs() < 0.5);
    }
}
