//! Seeded synthetic city generators.
//!
//! The real Gowalla/Yelp dumps the paper uses are not redistributable, so
//! the workspace ships generators that reproduce the *statistical shape*
//! that drives every result in the evaluation: check-ins concentrated on a
//! handful of POI clusters (downtown core plus secondary centers) over a
//! 20×20 km box, with a thin uniform background and heavy-tailed per-user
//! activity. The mechanisms only ever consume the resulting prior
//! histogram, so matching this shape is what preserves the paper's
//! utility-loss orderings (OPT < MSM < PL).
//!
//! Generators are fully deterministic given their seed.

use crate::checkin::{CheckIn, Dataset};
use geoind_rng::{Rng, SeededRng};
use geoind_spatial::geom::{BBox, Point};

/// One Gaussian POI cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Cluster center on the km-plane.
    pub center: Point,
    /// Isotropic standard deviation, km.
    pub sigma: f64,
    /// Relative popularity (need not be normalized).
    pub weight: f64,
}

/// A parametric synthetic city.
#[derive(Debug, Clone)]
pub struct SyntheticCity {
    name: String,
    domain: BBox,
    clusters: Vec<ClusterSpec>,
    /// Fraction of check-ins drawn uniformly over the whole domain.
    background: f64,
    seed: u64,
    default_checkins: usize,
    default_users: usize,
}

impl SyntheticCity {
    /// A city with a custom cluster layout over a square domain.
    ///
    /// # Panics
    /// Panics if `clusters` is empty or `background` is outside `[0, 1]`.
    pub fn custom(
        name: impl Into<String>,
        domain: BBox,
        clusters: Vec<ClusterSpec>,
        background: f64,
    ) -> Self {
        assert!(!clusters.is_empty(), "need at least one cluster");
        assert!(
            (0.0..=1.0).contains(&background),
            "background must be in [0,1]"
        );
        Self {
            name: name.into(),
            domain,
            clusters,
            background,
            seed: 0xA057_1420_19ED_B700,
            default_checkins: 50_000,
            default_users: 5_000,
        }
    }

    /// Austin-like layout (the paper's Gowalla partition): one dominant
    /// downtown core by the river, a university cluster just north, and a
    /// string of secondary centers; 265,571 check-ins from 12,155 users by
    /// default.
    pub fn austin_like() -> Self {
        let mut c = Self::custom(
            "gowalla-austin-synthetic",
            BBox::square(20.0),
            vec![
                ClusterSpec {
                    center: Point::new(9.5, 9.0),
                    sigma: 0.9,
                    weight: 0.34,
                },
                ClusterSpec {
                    center: Point::new(9.8, 11.2),
                    sigma: 0.7,
                    weight: 0.18,
                },
                ClusterSpec {
                    center: Point::new(12.5, 13.0),
                    sigma: 1.3,
                    weight: 0.12,
                },
                ClusterSpec {
                    center: Point::new(6.0, 6.5),
                    sigma: 1.5,
                    weight: 0.10,
                },
                ClusterSpec {
                    center: Point::new(14.5, 7.0),
                    sigma: 1.2,
                    weight: 0.08,
                },
                ClusterSpec {
                    center: Point::new(4.5, 13.5),
                    sigma: 1.6,
                    weight: 0.07,
                },
                ClusterSpec {
                    center: Point::new(16.5, 15.5),
                    sigma: 1.4,
                    weight: 0.06,
                },
                ClusterSpec {
                    center: Point::new(10.5, 4.0),
                    sigma: 1.4,
                    weight: 0.05,
                },
            ],
            0.08,
        );
        c.default_checkins = 265_571;
        c.default_users = 12_155;
        c.seed = 0x6077_A11A_2019_0001;
        c
    }

    /// Las-Vegas-like layout (the paper's Yelp partition): an extremely
    /// concentrated Strip corridor plus a downtown cluster; 81,201 check-ins
    /// from 7,581 users by default.
    pub fn vegas_like() -> Self {
        let mut c = Self::custom(
            "yelp-vegas-synthetic",
            BBox::square(20.0),
            vec![
                ClusterSpec {
                    center: Point::new(10.2, 7.5),
                    sigma: 0.5,
                    weight: 0.30,
                },
                ClusterSpec {
                    center: Point::new(10.5, 9.2),
                    sigma: 0.5,
                    weight: 0.22,
                },
                ClusterSpec {
                    center: Point::new(10.8, 11.0),
                    sigma: 0.6,
                    weight: 0.16,
                },
                ClusterSpec {
                    center: Point::new(11.5, 14.0),
                    sigma: 0.9,
                    weight: 0.12,
                },
                ClusterSpec {
                    center: Point::new(6.5, 10.5),
                    sigma: 1.6,
                    weight: 0.07,
                },
                ClusterSpec {
                    center: Point::new(15.0, 6.0),
                    sigma: 1.7,
                    weight: 0.06,
                },
            ],
            0.07,
        );
        c.default_checkins = 81_201;
        c.default_users = 7_581;
        c.seed = 0x7E1F_0E6A_2019_0002;
        c
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generator name (also the produced dataset's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The spatial domain.
    pub fn domain(&self) -> BBox {
        self.domain
    }

    /// Generate the paper-scale dataset for this city.
    pub fn generate(&self) -> Dataset {
        self.generate_with_size(self.default_checkins, self.default_users)
    }

    /// Generate an arbitrary-scale dataset.
    ///
    /// # Panics
    /// Panics if `num_users == 0` or `num_checkins == 0`.
    pub fn generate_with_size(&self, num_checkins: usize, num_users: usize) -> Dataset {
        assert!(num_checkins > 0 && num_users > 0);
        let mut rng = SeededRng::from_seed(self.seed);

        // Heavy-tailed per-user activity: weight_u ∝ U^(-1/a) (Pareto-ish,
        // a = 1.5), normalized to the requested check-in count.
        let user_weights: Vec<f64> = (0..num_users)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-4..1.0);
                u.powf(-1.0 / 1.5)
            })
            .collect();
        let wsum: f64 = user_weights.iter().sum();

        // Each user favors a home cluster but roams: 70% home, 30% global.
        let cluster_weights: Vec<f64> = self.clusters.iter().map(|c| c.weight).collect();
        let home: Vec<usize> = (0..num_users)
            .map(|_| sample_weighted(&cluster_weights, &mut rng))
            .collect();

        let mut checkins = Vec::with_capacity(num_checkins);
        let mut assigned = 0usize;
        for u in 0..num_users {
            // Integer share of this user's check-ins, clamped so rounding
            // never overshoots; the top-up loop below covers any shortfall.
            let rounded = ((user_weights[u] / wsum) * num_checkins as f64).round() as usize;
            let share = rounded.min(num_checkins - assigned);
            assigned += share;
            for _ in 0..share {
                let location = if rng.gen_f64() < self.background {
                    Point::new(
                        rng.gen_range(self.domain.min.x..self.domain.max.x),
                        rng.gen_range(self.domain.min.y..self.domain.max.y),
                    )
                } else {
                    let ci = if rng.gen_f64() < 0.7 {
                        home[u]
                    } else {
                        sample_weighted(&cluster_weights, &mut rng)
                    };
                    self.sample_cluster(&self.clusters[ci], &mut rng)
                };
                checkins.push(CheckIn {
                    user: u as u64,
                    location,
                });
            }
            if assigned >= num_checkins {
                break;
            }
        }
        // Rounding shortfall: attribute the remainder to random users.
        while checkins.len() < num_checkins {
            let u = rng.gen_range(0..num_users);
            let location = if rng.gen_f64() < self.background {
                Point::new(
                    rng.gen_range(self.domain.min.x..self.domain.max.x),
                    rng.gen_range(self.domain.min.y..self.domain.max.y),
                )
            } else {
                let ci = sample_weighted(&cluster_weights, &mut rng);
                self.sample_cluster(&self.clusters[ci], &mut rng)
            };
            checkins.push(CheckIn {
                user: u as u64,
                location,
            });
        }
        Dataset::new(self.name.clone(), self.domain, checkins)
    }

    /// Draw one point from a cluster, rejected back into the domain.
    fn sample_cluster(&self, c: &ClusterSpec, rng: &mut SeededRng) -> Point {
        for _ in 0..32 {
            let (gx, gy) = gaussian_pair(rng);
            let p = Point::new(c.center.x + c.sigma * gx, c.center.y + c.sigma * gy);
            if self.domain.contains(p) {
                return p;
            }
        }
        // Pathological cluster far outside the domain: clamp.
        let p = self.domain.clamp(c.center);
        Point::new(
            p.x.min(self.domain.max.x - 1e-9),
            p.y.min(self.domain.max.y - 1e-9),
        )
    }
}

/// Standard-normal pair via Box–Muller.
fn gaussian_pair(rng: &mut SeededRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_f64();
    let r = (-2.0 * u1.ln()).sqrt();
    let t = 2.0 * std::f64::consts::PI * u2;
    (r * t.cos(), r * t.sin())
}

/// Draw an index proportional to `weights`.
fn sample_weighted(weights: &[f64], rng: &mut SeededRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut t = rng.gen_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticCity::austin_like().generate_with_size(2_000, 100);
        let b = SyntheticCity::austin_like().generate_with_size(2_000, 100);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.checkins().iter().zip(b.checkins()) {
            assert_eq!(x.user, y.user);
            assert_eq!(x.location, y.location);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCity::austin_like().generate_with_size(500, 50);
        let b = SyntheticCity::austin_like()
            .with_seed(99)
            .generate_with_size(500, 50);
        let same = a
            .checkins()
            .iter()
            .zip(b.checkins())
            .filter(|(x, y)| x.location == y.location)
            .count();
        assert!(same < a.len() / 2);
    }

    #[test]
    fn scale_matches_request() {
        let d = SyntheticCity::vegas_like().generate_with_size(10_000, 1_000);
        assert_eq!(d.len(), 10_000);
        // Not every user necessarily checks in (tiny shares round to 0),
        // but most should.
        assert!(d.num_users() > 500);
    }

    #[test]
    fn all_checkins_inside_domain() {
        let d = SyntheticCity::austin_like().generate_with_size(20_000, 2_000);
        for c in d.checkins() {
            assert!(d.domain().contains(c.location));
        }
    }

    #[test]
    fn prior_is_skewed_toward_downtown() {
        // The downtown quadrant must carry far more than its area share.
        let d = SyntheticCity::austin_like().generate_with_size(50_000, 5_000);
        let downtown = BBox::new(Point::new(7.0, 6.0), Point::new(13.0, 13.0));
        let inside = d.locations().filter(|p| downtown.contains(*p)).count();
        let frac = inside as f64 / d.len() as f64;
        let area_frac = (6.0 * 7.0) / 400.0; // = 0.105
        assert!(
            frac > 3.0 * area_frac,
            "downtown fraction {frac} not skewed (area share {area_frac})"
        );
    }

    #[test]
    fn heavy_tail_user_activity() {
        let d = SyntheticCity::austin_like().generate_with_size(50_000, 5_000);
        let mut counts = std::collections::HashMap::new();
        for c in d.checkins() {
            *counts.entry(c.user).or_insert(0usize) += 1;
        }
        let mut v: Vec<usize> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        // Top 1% of users produce a disproportionate share of check-ins.
        let top: usize = v.iter().take(v.len() / 100).sum();
        assert!(top as f64 > 0.05 * d.len() as f64);
    }

    #[test]
    fn paper_scale_defaults() {
        let austin = SyntheticCity::austin_like();
        let vegas = SyntheticCity::vegas_like();
        assert_eq!(austin.default_checkins, 265_571);
        assert_eq!(austin.default_users, 12_155);
        assert_eq!(vegas.default_checkins, 81_201);
        assert_eq!(vegas.default_users, 7_581);
    }
}
