//! Property tests for datasets and priors (on the deterministic
//! `geoind-testkit` harness; failures print a per-case seed).

use geoind_data::checkin::{CheckIn, Dataset};
use geoind_data::prior::GridPrior;
use geoind_data::synth::{ClusterSpec, SyntheticCity};
use geoind_spatial::geom::{BBox, Point};
use geoind_testkit::gens::{f64_range, u32_range, u64_any, usize_range, vec_of};
use geoind_testkit::{check, ensure, ensure_eq, Config};

/// Priors from arbitrary point sets are probability distributions, and
/// aggregation preserves total mass at every coarser granularity.
#[test]
fn prior_is_distribution_and_aggregates() {
    check(
        "prior_is_distribution_and_aggregates",
        Config::cases(128),
        &(
            vec_of((f64_range(0.0, 20.0), f64_range(0.0, 20.0)), 0, 300),
            u32_range(1, 24),
            u32_range(1, 8),
        ),
        |&(ref pts, g, coarse)| {
            let domain = BBox::square(20.0);
            let prior =
                GridPrior::from_points(domain, g, pts.iter().map(|&(x, y)| Point::new(x, y)));
            let sum: f64 = prior.probs().iter().sum();
            ensure!((sum - 1.0).abs() < 1e-9);
            ensure!(prior.probs().iter().all(|&p| p >= 0.0));
            let agg = prior.aggregate_to(coarse);
            ensure!((agg.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Whole-domain mass query is exact.
            ensure!((prior.mass_in(domain) - 1.0).abs() < 1e-9);
            Ok(())
        },
    );
}

/// Quadrant masses partition the total for any point set.
#[test]
fn quadrant_masses_partition() {
    check(
        "quadrant_masses_partition",
        Config::cases(128),
        &vec_of((f64_range(0.0, 16.0), f64_range(0.0, 16.0)), 1, 200),
        |pts: &Vec<(f64, f64)>| {
            let domain = BBox::square(16.0);
            let prior =
                GridPrior::from_points(domain, 16, pts.iter().map(|&(x, y)| Point::new(x, y)));
            let q =
                |x0: f64, y0: f64| BBox::new(Point::new(x0, y0), Point::new(x0 + 8.0, y0 + 8.0));
            let total: f64 = prior
                .masses(&[q(0.0, 0.0), q(8.0, 0.0), q(0.0, 8.0), q(8.0, 8.0)])
                .iter()
                .sum();
            ensure!((total - 1.0).abs() < 1e-9);
            Ok(())
        },
    );
}

/// Synthetic cities respect their requested size and domain for any
/// cluster layout.
#[test]
fn synthetic_city_respects_contract() {
    check(
        "synthetic_city_respects_contract",
        Config::cases(64),
        &(
            (f64_range(2.0, 18.0), f64_range(2.0, 18.0)),
            f64_range(0.2, 3.0),
            f64_range(0.0, 0.5),
            usize_range(50, 1500),
            usize_range(5, 100),
            u64_any(),
        ),
        |&((cx, cy), sigma, background, n, users, seed)| {
            let city = SyntheticCity::custom(
                "prop",
                BBox::square(20.0),
                vec![ClusterSpec {
                    center: Point::new(cx, cy),
                    sigma,
                    weight: 1.0,
                }],
                background,
            )
            .with_seed(seed);
            let ds = city.generate_with_size(n, users);
            ensure_eq!(ds.len(), n);
            for c in ds.checkins() {
                ensure!(ds.domain().contains(c.location));
                ensure!((c.user as usize) < users);
            }
            Ok(())
        },
    );
}

/// Dataset construction filters exactly the out-of-domain check-ins.
#[test]
fn dataset_filtering() {
    check(
        "dataset_filtering",
        Config::cases(128),
        &vec_of((f64_range(-5.0, 25.0), f64_range(-5.0, 25.0)), 0, 200),
        |pts: &Vec<(f64, f64)>| {
            let domain = BBox::square(20.0);
            let checkins: Vec<CheckIn> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| CheckIn {
                    user: i as u64,
                    location: Point::new(x, y),
                })
                .collect();
            let expected = checkins
                .iter()
                .filter(|c| domain.contains(c.location))
                .count();
            let ds = Dataset::new("prop", domain, checkins);
            ensure_eq!(ds.len(), expected);
            Ok(())
        },
    );
}
