//! Property tests for datasets and priors.

use geoind_data::checkin::{CheckIn, Dataset};
use geoind_data::prior::GridPrior;
use geoind_data::synth::{ClusterSpec, SyntheticCity};
use geoind_spatial::geom::{BBox, Point};
use proptest::prelude::*;

proptest! {
    /// Priors from arbitrary point sets are probability distributions, and
    /// aggregation preserves total mass at every coarser granularity.
    #[test]
    fn prior_is_distribution_and_aggregates(
        pts in prop::collection::vec((0.0..20.0f64, 0.0..20.0f64), 0..300),
        g in 1u32..24,
        coarse in 1u32..8,
    ) {
        let domain = BBox::square(20.0);
        let prior =
            GridPrior::from_points(domain, g, pts.iter().map(|&(x, y)| Point::new(x, y)));
        let sum: f64 = prior.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(prior.probs().iter().all(|&p| p >= 0.0));
        let agg = prior.aggregate_to(coarse);
        prop_assert!((agg.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Whole-domain mass query is exact.
        prop_assert!((prior.mass_in(domain) - 1.0).abs() < 1e-9);
    }

    /// Quadrant masses partition the total for any point set.
    #[test]
    fn quadrant_masses_partition(
        pts in prop::collection::vec((0.0..16.0f64, 0.0..16.0f64), 1..200),
    ) {
        let domain = BBox::square(16.0);
        let prior =
            GridPrior::from_points(domain, 16, pts.iter().map(|&(x, y)| Point::new(x, y)));
        let q = |x0: f64, y0: f64| {
            BBox::new(Point::new(x0, y0), Point::new(x0 + 8.0, y0 + 8.0))
        };
        let total: f64 = prior
            .masses(&[q(0.0, 0.0), q(8.0, 0.0), q(0.0, 8.0), q(8.0, 8.0)])
            .iter()
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Synthetic cities respect their requested size and domain for any
    /// cluster layout.
    #[test]
    fn synthetic_city_respects_contract(
        cx in 2.0..18.0f64,
        cy in 2.0..18.0f64,
        sigma in 0.2..3.0f64,
        background in 0.0..0.5f64,
        n in 50usize..1500,
        users in 5usize..100,
        seed in any::<u64>(),
    ) {
        let city = SyntheticCity::custom(
            "prop",
            BBox::square(20.0),
            vec![ClusterSpec { center: Point::new(cx, cy), sigma, weight: 1.0 }],
            background,
        )
        .with_seed(seed);
        let ds = city.generate_with_size(n, users);
        prop_assert_eq!(ds.len(), n);
        for c in ds.checkins() {
            prop_assert!(ds.domain().contains(c.location));
            prop_assert!((c.user as usize) < users);
        }
    }

    /// Dataset construction filters exactly the out-of-domain check-ins.
    #[test]
    fn dataset_filtering(pts in prop::collection::vec((-5.0..25.0f64, -5.0..25.0f64), 0..200)) {
        let domain = BBox::square(20.0);
        let checkins: Vec<CheckIn> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| CheckIn { user: i as u64, location: Point::new(x, y) })
            .collect();
        let expected = checkins.iter().filter(|c| domain.contains(c.location)).count();
        let ds = Dataset::new("prop", domain, checkins);
        prop_assert_eq!(ds.len(), expected);
    }
}
