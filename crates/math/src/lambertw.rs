//! Real branches of the Lambert W function.
//!
//! `W(x)` solves `W·e^W = x`. Two real branches exist:
//!
//! * the principal branch `W₀` on `[-1/e, ∞)` with `W₀ ≥ -1`, and
//! * the lower branch `W₋₁` on `[-1/e, 0)` with `W₋₁ ≤ -1`.
//!
//! The planar-Laplace mechanism needs `W₋₁` to invert the radial CDF
//! `C(r) = 1 − (1 + εr)·e^{−εr}`: with `p ~ U(0,1)` the sampled radius is
//! `r = −(1/ε)·(W₋₁((p − 1)/e) + 1)`.
//!
//! Both branches are computed with a branch-point / logarithmic initial
//! guess refined by Halley's method, giving ~1 ulp accuracy in a handful of
//! iterations.

/// `1/e`, the negated left endpoint of both real branches.
pub const INV_E: f64 = 1.0 / std::f64::consts::E;

const MAX_ITER: usize = 64;
const TOL: f64 = 1e-15;

/// Halley refinement of an initial guess `w` for `W(x)`.
fn halley(x: f64, mut w: f64) -> f64 {
    for _ in 0..MAX_ITER {
        let ew = w.exp();
        let f = w * ew - x;
        // Halley: w -= f / (e^w (w+1) - (w+2) f / (2w+2))
        let denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        if denom == 0.0 {
            break;
        }
        let dw = f / denom;
        w -= dw;
        if dw.abs() <= TOL * (1.0 + w.abs()) {
            break;
        }
    }
    w
}

/// Principal branch `W₀(x)` for `x ≥ -1/e`.
///
/// Returns `NaN` for `x < -1/e` (outside the real domain).
///
/// # Examples
/// ```
/// use geoind_math::lambert_w0;
/// let w = lambert_w0(1.0);
/// assert!((w * w.exp() - 1.0).abs() < 1e-12); // Ω constant ≈ 0.5671
/// ```
pub fn lambert_w0(x: f64) -> f64 {
    if x.is_nan() || x < -INV_E - 1e-12 {
        return f64::NAN;
    }
    if x <= -INV_E {
        return -1.0;
    }
    if x == 0.0 {
        return 0.0;
    }
    // Initial guess.
    let w0 = if x < -0.25 {
        // Near the branch point: series in q = sqrt(2(1 + e x)).
        let q = (2.0 * (1.0 + std::f64::consts::E * x)).max(0.0).sqrt();
        -1.0 + q - q * q / 3.0 + 11.0 / 72.0 * q * q * q
    } else if x < 3.0 {
        // Padé-ish rational start around 0.
        x * (1.0 - x * (1.0 - 1.5 * x) / (1.0 + x * (2.0 + x)))
    } else {
        // Asymptotic: W ≈ ln x − ln ln x.
        let l1 = x.ln();
        let l2 = l1.ln();
        l1 - l2 + l2 / l1
    };
    halley(x, w0)
}

/// Lower branch `W₋₁(x)` for `x ∈ [-1/e, 0)`.
///
/// Returns `NaN` outside the domain.
///
/// # Examples
/// ```
/// use geoind_math::lambert_wm1;
/// let w = lambert_wm1(-0.1);
/// assert!(w < -1.0);
/// assert!((w * w.exp() + 0.1).abs() < 1e-12);
/// ```
pub fn lambert_wm1(x: f64) -> f64 {
    if x.is_nan() || !(-INV_E - 1e-12..0.0).contains(&x) {
        return f64::NAN;
    }
    if x <= -INV_E {
        return -1.0;
    }
    // Initial guess.
    let w0 = if x > -0.25 * INV_E {
        // Away from the branch point: W₋₁(x) ≈ ln(−x) − ln(−ln(−x)).
        let l1 = (-x).ln();
        let l2 = (-l1).ln();
        l1 - l2 + l2 / l1
    } else {
        // Near the branch point: series with q = −sqrt(2(1 + e x)).
        let q = -((2.0 * (1.0 + std::f64::consts::E * x)).max(0.0)).sqrt();
        -1.0 + q - q * q / 3.0 + 11.0 / 72.0 * q * q * q
    };
    halley(x, w0)
}

/// Lower branch `W₋₁(x)` refined from a caller-supplied starting guess
/// `w0` instead of the analytic one — the hot-path entry point for
/// samplers that precompute a table of guesses over their input range
/// (e.g. the planar-Laplace radial sampler, which buckets `p ∈ (0, 1)`
/// once at construction and re-enters Halley's method per draw).
///
/// Domain handling matches [`lambert_wm1`]; the guess only changes how
/// many Halley iterations the refinement needs, never which root it
/// converges to, provided `w0 ≤ -1` (anywhere on the lower branch).
///
/// Returns `NaN` outside `[-1/e, 0)`.
pub fn lambert_wm1_with_guess(x: f64, w0: f64) -> f64 {
    if x.is_nan() || !(-INV_E - 1e-12..0.0).contains(&x) {
        return f64::NAN;
    }
    if x <= -INV_E {
        return -1.0;
    }
    halley(x, w0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_inverse(x: f64, w: f64) {
        let back = w * w.exp();
        assert!(
            (back - x).abs() <= 1e-12 * (1.0 + x.abs()),
            "W({x}) = {w}: W e^W = {back}"
        );
    }

    #[test]
    fn w0_known_values() {
        // Omega constant: W0(1).
        assert!((lambert_w0(1.0) - 0.567_143_290_409_783_8).abs() < 1e-14);
        // W0(e) = 1.
        assert!((lambert_w0(std::f64::consts::E) - 1.0).abs() < 1e-14);
        // W0(0) = 0.
        assert_eq!(lambert_w0(0.0), 0.0);
        // W0(-1/e) = -1.
        assert!((lambert_w0(-INV_E) + 1.0).abs() < 1e-7);
    }

    #[test]
    fn w0_inverse_sweep() {
        let mut x = -INV_E + 1e-6;
        while x < 1e6 {
            check_inverse(x, lambert_w0(x));
            x = if x < 0.0 {
                x / 2.0 + 0.05
            } else {
                x * 3.0 + 0.1
            };
        }
    }

    #[test]
    fn wm1_known_values() {
        // W-1(-1/e) = -1.
        assert!((lambert_wm1(-INV_E) + 1.0).abs() < 1e-7);
        // Reference: W-1(-0.1) ≈ -3.577152063957297.
        assert!((lambert_wm1(-0.1) + 3.577_152_063_957_297).abs() < 1e-12);
        // W-1(-0.2) ≈ -2.542641357773526.
        assert!((lambert_wm1(-0.2) + 2.542_641_357_773_526).abs() < 1e-12);
    }

    #[test]
    fn wm1_inverse_sweep() {
        // Geometric sweep across the whole domain (-1/e, 0).
        let mut x = -INV_E * 0.999_999;
        while x < -1e-300 {
            check_inverse(x, lambert_wm1(x));
            x *= 0.7;
        }
    }

    #[test]
    fn wm1_is_below_minus_one_and_w0_above() {
        for i in 1..100 {
            let x = -INV_E * (i as f64) / 100.0;
            assert!(lambert_wm1(x) <= -1.0 + 1e-9);
            assert!(lambert_w0(x) >= -1.0 - 1e-9);
        }
    }

    #[test]
    fn out_of_domain_is_nan() {
        assert!(lambert_w0(-1.0).is_nan());
        assert!(lambert_wm1(0.5).is_nan());
        assert!(lambert_wm1(-1.0).is_nan());
        assert!(lambert_wm1(0.0).is_nan());
        assert!(lambert_w0(f64::NAN).is_nan());
    }

    #[test]
    fn wm1_with_guess_agrees_with_analytic_guess() {
        // Any lower-branch starting point converges to the same root; a
        // tabulated guess is a speed lever, never an accuracy one.
        let mut x = -INV_E * 0.999;
        while x < -1e-12 {
            let reference = lambert_wm1(x);
            for w0 in [reference, reference - 0.4, -1.5, -6.0] {
                let w = lambert_wm1_with_guess(x, w0);
                assert!(
                    (w - reference).abs() <= 1e-12 * (1.0 + reference.abs()),
                    "W-1({x}) from guess {w0}: {w} vs {reference}"
                );
            }
            x *= 0.5;
        }
        assert!(lambert_wm1_with_guess(0.5, -2.0).is_nan());
        assert_eq!(lambert_wm1_with_guess(-INV_E - 1e-13, -2.0), -1.0);
    }

    #[test]
    fn planar_laplace_cdf_inversion() {
        // r = -(1/eps) (W-1((p-1)/e) + 1) must invert C(r) = 1-(1+eps r)e^{-eps r}.
        let eps = 0.7;
        for p in [0.001, 0.1, 0.5, 0.9, 0.999] {
            let w = lambert_wm1((p - 1.0) * INV_E);
            let r = -(w + 1.0) / eps;
            assert!(r >= 0.0);
            let cdf = 1.0 - (1.0 + eps * r) * (-eps * r).exp();
            assert!((cdf - p).abs() < 1e-10, "p={p} r={r} cdf={cdf}");
        }
    }
}
