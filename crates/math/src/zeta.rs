//! Riemann zeta function on the real axis, `s > 1`.
//!
//! The Poisson-summation expansion of the lattice sum (Eq. 8–9 of the paper)
//! needs `ζ(k + 1/2)` for `k = 1, 2, …`. We evaluate `ζ(s)` with the
//! Euler–Maclaurin formula:
//!
//! ```text
//! ζ(s) = Σ_{n=1}^{N-1} n^{-s} + N^{1-s}/(s-1) + N^{-s}/2
//!        + Σ_{j=1}^{J} B_{2j}/(2j)! · (s)_{2j-1} · N^{-s-2j+1} + R
//! ```
//!
//! with Bernoulli numbers `B_{2j}` and Pochhammer `(s)_m = s(s+1)…(s+m−1)`.
//! With `N = 20` and `J = 10` the truncation error is far below 1e-15 for all
//! `s ≥ 1.1`.

/// Bernoulli numbers B₂, B₄, …, B₂₀.
const BERNOULLI_EVEN: [f64; 10] = [
    1.0 / 6.0,
    -1.0 / 30.0,
    1.0 / 42.0,
    -1.0 / 30.0,
    5.0 / 66.0,
    -691.0 / 2730.0,
    7.0 / 6.0,
    -3617.0 / 510.0,
    43867.0 / 798.0,
    -174611.0 / 330.0,
];

/// Riemann zeta `ζ(s)` for real `s > 1`.
///
/// Accuracy is ~1e-15 relative for `s ≥ 1.1`; closer to the pole the
/// Euler–Maclaurin tail still converges but the leading `N^{1-s}/(s-1)` term
/// dominates and relative accuracy degrades gracefully.
///
/// # Panics
/// Panics if `s <= 1` (the series diverges at the pole and the analytic
/// continuation is out of scope for this crate).
///
/// # Examples
/// ```
/// use geoind_math::riemann_zeta;
/// let z2 = riemann_zeta(2.0);
/// assert!((z2 - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-14);
/// ```
pub fn riemann_zeta(s: f64) -> f64 {
    assert!(s > 1.0, "riemann_zeta requires s > 1, got {s}");
    let n = 20usize;
    let nf = n as f64;
    let mut sum = 0.0;
    for k in 1..n {
        sum += (k as f64).powf(-s);
    }
    sum += nf.powf(1.0 - s) / (s - 1.0);
    sum += 0.5 * nf.powf(-s);
    // Euler–Maclaurin correction terms.
    let mut poch = s; // (s)_1
    let mut fact = 2.0; // (2j)! running value, starts at 2! = 2
    let mut npow = nf.powf(-s - 1.0);
    for (j, &b) in BERNOULLI_EVEN.iter().enumerate() {
        // term_j = B_{2j} / (2j)! * (s)(s+1)...(s+2j-2) * N^{-s-2j+1}
        let term = b / fact * poch * npow;
        sum += term;
        if term.abs() < 1e-18 * sum.abs() {
            break;
        }
        // Advance to j+1: multiply Pochhammer by (s+2j-1)(s+2j) and factorial
        // by (2j+1)(2j+2); shift the power of N by -2.
        let tj = 2.0 * (j as f64 + 1.0);
        poch *= (s + tj - 1.0) * (s + tj);
        fact *= (tj + 1.0) * (tj + 2.0);
        npow /= nf * nf;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn even_integer_values() {
        assert!((riemann_zeta(2.0) - PI * PI / 6.0).abs() < 1e-14);
        assert!((riemann_zeta(4.0) - PI.powi(4) / 90.0).abs() < 1e-14);
        assert!((riemann_zeta(6.0) - PI.powi(6) / 945.0).abs() < 1e-14);
    }

    #[test]
    fn half_integer_values() {
        // Reference values (Mathematica, 16 digits).
        assert!((riemann_zeta(1.5) - 2.612_375_348_685_488).abs() < 1e-13);
        assert!((riemann_zeta(2.5) - 1.341_487_257_250_917).abs() < 1e-14);
        assert!((riemann_zeta(3.5) - 1.126_733_867_317_056).abs() < 1e-14);
        assert!((riemann_zeta(4.5) - 1.054_707_510_761_454).abs() < 1e-14);
    }

    #[test]
    fn large_s_tends_to_one() {
        assert!((riemann_zeta(30.0) - 1.0).abs() < 1e-9);
        assert!((riemann_zeta(60.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn monotone_decreasing() {
        let mut prev = riemann_zeta(1.05);
        for i in 1..200 {
            let s = 1.05 + i as f64 * 0.1;
            let z = riemann_zeta(s);
            assert!(z < prev, "zeta not decreasing at s={s}");
            assert!(z > 1.0);
            prev = z;
        }
    }

    #[test]
    #[should_panic(expected = "requires s > 1")]
    fn pole_panics() {
        riemann_zeta(1.0);
    }
}
