//! Dirichlet beta function `β(s) = L(s, χ₄)`.
//!
//! Eq. (10) of the paper:
//!
//! ```text
//! L(s, χ₄) = Σ_{n≥0} (−1)ⁿ / (2n+1)^s = 1 − 3^{−s} + 5^{−s} − 7^{−s} + …
//! ```
//!
//! The alternating series converges for `s > 0`; we accelerate it with
//! Euler-transform-style Cohen–Villegas–Zagier (CVZ) summation so even
//! `s = 1/2 + k` values used by the lattice-sum expansion reach ~1e-15 with a
//! few dozen terms.

/// Dirichlet beta `β(s)` for real `s > 0`.
///
/// # Panics
/// Panics if `s <= 0`.
///
/// # Examples
/// ```
/// use geoind_math::dirichlet_beta;
/// // β(1) = π/4 (Leibniz)
/// assert!((dirichlet_beta(1.0) - std::f64::consts::FRAC_PI_4).abs() < 1e-14);
/// ```
pub fn dirichlet_beta(s: f64) -> f64 {
    assert!(s > 0.0, "dirichlet_beta requires s > 0, got {s}");
    // CVZ algorithm for alternating series sum_{k>=0} (-1)^k a_k with
    // a_k = (2k+1)^{-s}. Error ~ (3+sqrt 8)^{-n}.
    let n = 40usize;
    let mut d = (3.0 + 8.0f64.sqrt()).powi(n as i32);
    d = 0.5 * (d + 1.0 / d);
    let mut b = -1.0;
    let mut c = -d;
    let mut sum = 0.0;
    for k in 0..n {
        c = b - c;
        let a_k = (2.0 * k as f64 + 1.0).powf(-s);
        sum += c * a_k;
        b *= (k as f64 + n as f64) * (k as f64 - n as f64) / ((k as f64 + 0.5) * (k as f64 + 1.0));
    }
    sum / d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn known_values() {
        // β(1) = π/4.
        assert!((dirichlet_beta(1.0) - PI / 4.0).abs() < 1e-15);
        // β(2) = Catalan's constant.
        assert!((dirichlet_beta(2.0) - 0.915_965_594_177_219_0).abs() < 1e-14);
        // β(3) = π³/32.
        assert!((dirichlet_beta(3.0) - PI.powi(3) / 32.0).abs() < 1e-14);
        // β(1/2) ≈ 0.6676914571896091 (reference value).
        assert!((dirichlet_beta(0.5) - 0.667_691_457_189_609_1).abs() < 1e-12);
        // β(3/2) ≈ 0.8645026534612020.
        assert!((dirichlet_beta(1.5) - 0.864_502_653_461_202_0).abs() < 1e-13);
        // β(5/2) ≈ 0.9638637280836101 (direct sum cross-check below).
    }

    #[test]
    fn matches_direct_sum_for_large_s() {
        for s in [3.0, 4.5, 6.0, 10.0] {
            let direct: f64 = (0..2_000_000)
                .map(|n| {
                    let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
                    sign * (2.0 * n as f64 + 1.0).powf(-s)
                })
                .sum();
            assert!(
                (dirichlet_beta(s) - direct).abs() < 1e-10,
                "mismatch at s={s}"
            );
        }
    }

    #[test]
    fn tends_to_one() {
        assert!((dirichlet_beta(40.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn monotone_increasing_for_s_above_half() {
        let mut prev = dirichlet_beta(0.5);
        for i in 1..100 {
            let s = 0.5 + i as f64 * 0.25;
            let b = dirichlet_beta(s);
            assert!(b >= prev, "beta not increasing at s={s}");
            prev = b;
        }
    }

    #[test]
    #[should_panic(expected = "requires s > 0")]
    fn nonpositive_panics() {
        dirichlet_beta(0.0);
    }
}
