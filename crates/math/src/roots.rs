//! Root bracketing and bisection on monotone functions.
//!
//! The paper's Problem 1 asks for the minimum budget `ε` with
//! `Φ(ε) − ρ ≥ 0`. `Φ` is strictly increasing in `ε` but has no closed form,
//! so (as the paper notes) a simple branch-and-bound / bisection on the
//! monotone constraint recovers `ε` to arbitrary precision.

/// Find the smallest `x > 0` with `f(x) >= target`, assuming `f` is
/// monotonically increasing. Returns `None` if no such `x` exists below
/// `upper_limit`.
///
/// The routine first grows an exponential bracket from `seed`, then bisects
/// to an absolute tolerance of `tol`.
///
/// # Examples
/// ```
/// use geoind_math::bisect_increasing;
/// let x = bisect_increasing(|x| x * x, 9.0, 1.0, 1e6, 1e-12).unwrap();
/// assert!((x - 3.0).abs() < 1e-9);
/// ```
pub fn bisect_increasing<F: Fn(f64) -> f64>(
    f: F,
    target: f64,
    seed: f64,
    upper_limit: f64,
    tol: f64,
) -> Option<f64> {
    assert!(seed > 0.0 && upper_limit > seed && tol > 0.0);
    // Grow the bracket.
    let mut hi = seed;
    while f(hi) < target {
        hi *= 2.0;
        if hi > upper_limit {
            return None;
        }
    }
    let mut lo = hi / 2.0;
    // If even the seed satisfies the target, shrink the lower edge to ~0.
    while f(lo) >= target {
        lo /= 2.0;
        if lo < 1e-300 {
            return Some(lo);
        }
    }
    // Invariant: f(lo) < target <= f(hi).
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if f(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_root_of_monotone_function() {
        let x = bisect_increasing(|x| 1.0 - (-x).exp(), 0.5, 0.1, 100.0, 1e-12).unwrap();
        assert!((x - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn respects_upper_limit() {
        assert!(bisect_increasing(|x| x, 10.0, 1.0, 5.0, 1e-9).is_none());
    }

    #[test]
    fn target_below_all_values_returns_tiny() {
        let x = bisect_increasing(|_| 1.0, 0.5, 1.0, 10.0, 1e-9).unwrap();
        assert!(x < 1e-200);
    }

    #[test]
    fn result_is_minimal() {
        let f = |x: f64| x.powi(3);
        let x = bisect_increasing(f, 8.0, 0.5, 1e9, 1e-12).unwrap();
        assert!(f(x) >= 8.0);
        assert!(f(x - 1e-9) < 8.0 + 1e-6);
    }
}
