//! The 2-D exponential lattice sum of Section 5 of the paper.
//!
//! For a grid of granularity `g` over a square region of side `L`, protected
//! with per-level budget `ε`, the paper estimates the probability that the
//! optimal mechanism maps a cell to itself as `Φ = 1/T(β)` with `β = εL/g`
//! (the cell side times the budget) and
//!
//! ```text
//! T(β) = Σ_{(a,b) ∈ Z²} exp(−β·√(a² + b²))           (Eq. 7)
//! ```
//!
//! Two evaluation strategies are provided:
//!
//! * [`lattice_sum_direct`] — summation over square rings with a rigorous
//!   tail bound; efficient for `β ≳ 1`.
//! * [`lattice_sum_expansion`] — the Poisson-summation expansion of
//!   Eq. (8)–(9),
//!   `T(β) = 2π/β² + Σ_{k≥1} c_{2k−1} β^{2k−1}` with
//!   `c_{2k−1} = 4·C(−3/2, k−1)·(2π)^{−2k}·ζ(k+1/2)·L(k+1/2, χ₄)`,
//!   convergent for `β < 2π` and fast for small `β` where direct summation
//!   would need millions of lattice points.
//!
//! [`lattice_sum`] picks the better of the two automatically.

use crate::beta::dirichlet_beta;
use crate::zeta::riemann_zeta;

/// Crossover point between the expansion (below) and direct summation
/// (above). Both methods are accurate to ~1e-12 in `[0.5, 2]`, which the
/// tests exploit.
pub const CROSSOVER_BETA: f64 = 1.0;

/// Direct evaluation of `T(β)` by square-ring summation.
///
/// Ring `r` (all `(a,b)` with `max(|a|,|b|) = r`) has `8r` points, each at
/// Euclidean distance `≥ r`, so its contribution is `≤ 8r·e^{−βr}`; we stop
/// once that bound drops below `1e-16` of the running sum.
///
/// # Panics
/// Panics if `β <= 0` (the sum diverges).
pub fn lattice_sum_direct(beta: f64) -> f64 {
    assert!(beta > 0.0, "lattice sum requires beta > 0, got {beta}");
    let mut total = 1.0; // (0,0) term
    let mut r = 1i64;
    loop {
        let mut ring = 0.0;
        // Top and bottom edges: b = ±r, a in [-r, r].
        for a in -r..=r {
            let d = ((a * a + r * r) as f64).sqrt();
            ring += 2.0 * (-beta * d).exp();
        }
        // Left and right edges: a = ±r, b in [-(r-1), r-1].
        for b in -(r - 1)..=(r - 1) {
            let d = ((r * r + b * b) as f64).sqrt();
            ring += 2.0 * (-beta * d).exp();
        }
        total += ring;
        // Tail bound: sum over rings r' > r of 8 r' e^{-beta r'} — geometric
        // domination once e^{-beta} < 1.
        let q = (-beta).exp();
        let tail = 8.0 * q.powi(r as i32 + 1) * ((r + 1) as f64 + q / (1.0 - q)) / (1.0 - q);
        if tail < 1e-16 * total {
            break;
        }
        r += 1;
        if r > 5_000_000 {
            break; // unreachable for beta >= 1e-5; safety valve
        }
    }
    total
}

/// Binomial coefficient `C(−3/2, j)` with real upper argument.
fn binom_neg_three_halves(j: usize) -> f64 {
    let mut prod = 1.0;
    for i in 0..j {
        prod *= (-1.5 - i as f64) / (i as f64 + 1.0);
    }
    prod
}

/// Series coefficient `c_{2k−1}` of Eq. (9).
pub fn expansion_coefficient(k: usize) -> f64 {
    assert!(k >= 1);
    let two_pi = 2.0 * std::f64::consts::PI;
    4.0 * binom_neg_three_halves(k - 1)
        * two_pi.powi(-2 * k as i32)
        * riemann_zeta(k as f64 + 0.5)
        * dirichlet_beta(k as f64 + 0.5)
}

/// Poisson-summation expansion of `T(β)` (Eq. 8), valid for `0 < β < 2π`.
///
/// # Panics
/// Panics if `β` is outside `(0, 2π)`.
pub fn lattice_sum_expansion(beta: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    assert!(
        beta > 0.0 && beta < two_pi,
        "expansion requires 0 < beta < 2*pi, got {beta}"
    );
    let mut total = two_pi / (beta * beta);
    let mut bpow = beta; // beta^{2k-1}
    for k in 1..=60 {
        let term = expansion_coefficient(k) * bpow;
        total += term;
        if term.abs() < 1e-16 * total.abs() {
            break;
        }
        bpow *= beta * beta;
    }
    total
}

/// `T(β)` via whichever method is efficient and accurate at this `β`.
pub fn lattice_sum(beta: f64) -> f64 {
    if beta < CROSSOVER_BETA {
        lattice_sum_expansion(beta)
    } else {
        lattice_sum_direct(beta)
    }
}

/// The paper's `Φ` estimate (Eq. 7): probability that a GeoInd mechanism on a
/// `g×g` grid over a region of side `region_side`, run with budget `eps`,
/// reports the user's own cell.
///
/// `Φ = 1/T(ε·region_side/g)`. Monotonically increasing in `eps`.
pub fn self_map_probability(eps: f64, region_side: f64, g: u32) -> f64 {
    assert!(eps > 0.0 && region_side > 0.0 && g >= 1);
    1.0 / lattice_sum(eps * region_side / g as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_small_beta_brute_force() {
        // Brute-force over a big window for beta where the tail is tame.
        for beta in [1.0f64, 1.5, 2.5, 4.0] {
            let mut brute = 0.0;
            let w = (60.0 / beta).ceil() as i64;
            for a in -w..=w {
                for b in -w..=w {
                    brute += (-beta * ((a * a + b * b) as f64).sqrt()).exp();
                }
            }
            let fast = lattice_sum_direct(beta);
            assert!(
                (brute - fast).abs() < 1e-12 * brute,
                "beta={beta}: brute={brute} fast={fast}"
            );
        }
    }

    #[test]
    fn expansion_matches_direct_in_overlap() {
        // Both methods are valid in [0.4, 2]; they must agree tightly. This
        // validates the zeta/beta/binomial coefficient pipeline end to end.
        for i in 0..=16 {
            let beta = 0.4 + i as f64 * 0.1;
            let d = lattice_sum_direct(beta);
            let e = lattice_sum_expansion(beta);
            assert!(
                ((d - e) / d).abs() < 1e-11,
                "beta={beta}: direct={d} expansion={e}"
            );
        }
    }

    #[test]
    fn expansion_leading_term_dominates_for_tiny_beta() {
        let beta = 1e-3;
        let t = lattice_sum_expansion(beta);
        let lead = 2.0 * std::f64::consts::PI / (beta * beta);
        assert!(((t - lead) / t).abs() < 1e-6);
    }

    #[test]
    fn first_coefficient_value() {
        // c1 = 4 (2π)^{-2} ζ(3/2) β(3/2) ≈ 0.228881...
        let c1 = expansion_coefficient(1);
        let expect = 4.0 / (4.0 * std::f64::consts::PI * std::f64::consts::PI)
            * 2.612_375_348_685_488
            * 0.864_502_653_461_202_0;
        assert!((c1 - expect).abs() < 1e-12, "c1={c1} expect={expect}");
    }

    #[test]
    fn t_monotone_decreasing_in_beta() {
        let mut prev = f64::INFINITY;
        for i in 1..200 {
            let beta = i as f64 * 0.05;
            let t = lattice_sum(beta);
            assert!(t < prev, "T not decreasing at beta={beta}");
            assert!(t >= 1.0, "T must include the (0,0) term");
            prev = t;
        }
    }

    #[test]
    fn phi_monotone_in_eps_and_bounded() {
        let mut prev = 0.0;
        for i in 1..=100 {
            let eps = i as f64 * 0.02;
            let phi = self_map_probability(eps, 20.0, 4);
            assert!(phi > prev && phi < 1.0, "phi not in (prev,1) at eps={eps}");
            prev = phi;
        }
        // Strong budget ⇒ near-certain self-map.
        assert!(self_map_probability(10.0, 20.0, 2) > 0.999);
    }

    #[test]
    fn phi_decreases_with_granularity() {
        // Finer cells (same eps) are harder to stay inside.
        let phis: Vec<f64> = (2..8).map(|g| self_map_probability(0.8, 20.0, g)).collect();
        for w in phis.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn continuity_at_crossover() {
        let below = lattice_sum(CROSSOVER_BETA - 1e-9);
        let above = lattice_sum(CROSSOVER_BETA + 1e-9);
        // T itself moves ~4e-9 (relative) across the 2e-9 window; only method
        // disagreement beyond that would signal a bug.
        assert!(((below - above) / below).abs() < 1e-7);
    }
}
