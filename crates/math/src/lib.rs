//! Numerical substrate for geo-indistinguishability.
//!
//! This crate bundles every piece of non-trivial numerics the mechanisms in
//! `geoind-core` depend on:
//!
//! * [`lambertw`] — both real branches of the Lambert W function, used to
//!   invert the planar-Laplace radial CDF (Eq. 2 of the paper).
//! * [`zeta`] — the Riemann zeta function on the real axis (`s > 1`).
//! * [`beta`] — the Dirichlet beta function `L(s, χ₄)` (Eq. 10).
//! * [`lattice`] — the 2-D exponential lattice sum `T(β)` of Section 5 of the
//!   paper, both by direct ring summation and by the Poisson-summation
//!   expansion of Eq. (8)–(9), plus the self-map probability `Φ = 1/T`.
//! * [`roots`] — bisection on monotone functions (used to solve the paper's
//!   Problem 1 for the minimum per-level budget).
//! * [`sampling`] — Walker alias tables for O(1) categorical sampling and the
//!   polar planar-Laplace radius sampler.
//!
//! Everything is implemented from scratch on `f64`, with accuracy targets and
//! reference values pinned in unit tests.

#![warn(missing_docs)]
// Index-based loops over parallel arrays are the clearest style for the
// numeric kernels here; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Test reference constants keep full printed precision from their sources.
#![allow(clippy::excessive_precision)]

pub mod beta;
pub mod lambertw;
pub mod lattice;
pub mod roots;
pub mod sampling;
pub mod zeta;

pub use beta::dirichlet_beta;
pub use lambertw::{lambert_w0, lambert_wm1, lambert_wm1_with_guess};
pub use lattice::{lattice_sum, lattice_sum_direct, lattice_sum_expansion, self_map_probability};
pub use roots::bisect_increasing;
pub use sampling::{planar_laplace_radius, AliasTable, RadialSampler};
pub use zeta::riemann_zeta;
