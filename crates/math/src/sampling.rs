//! Sampling primitives: Walker alias tables and the planar-Laplace radius.
//!
//! * [`AliasTable`] gives O(1) draws from an arbitrary categorical
//!   distribution after O(n) setup — this is how MSM samples a reported cell
//!   from a row `K(x̂)(·)` of the optimal-mechanism channel on every query.
//! * [`planar_laplace_radius`] inverts the radial CDF of the bi-variate
//!   Laplacian `D_ε(x, z) = ε²/(2π)·e^{−ε·d(x,z)}` (Eq. 2) using the lower
//!   Lambert-W branch.

use crate::lambertw::{lambert_wm1, lambert_wm1_with_guess, INV_E};
use geoind_rng::Rng;

/// Walker alias table over `n` categories.
///
/// Construction is O(n); each [`sample`](AliasTable::sample) is O(1) (one
/// uniform index + one biased coin).
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each slot.
    prob: Vec<f64>,
    /// Alias category of each slot.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from unnormalized non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights sum to zero");
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled weights: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &l in &large {
            prob[l as usize] = 1.0;
        }
        for &s in &small {
            // Numerical leftovers: accept with probability 1.
            prob[s as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Per-slot acceptance probabilities (Vose's `prob` array). Exposed so
    /// flattened multi-row layouts can copy the table verbatim and stay
    /// bit-identical to per-row sampling.
    pub fn slot_probs(&self) -> &[f64] {
        &self.prob
    }

    /// Per-slot alias categories (Vose's `alias` array).
    pub fn aliases(&self) -> &[u32] {
        &self.alias
    }
}

/// Number of starting-guess buckets a [`RadialSampler`] precomputes over
/// `p ∈ (0, 1)`.
const RADIAL_GUESS_BUCKETS: usize = 512;

/// Planar-Laplace radius sampler with a precomputed table of Lambert-W
/// starting guesses.
///
/// [`planar_laplace_inverse_cdf`] re-derives an analytic `W₋₁` starting
/// guess (two `ln` calls or a branch-point series) on every draw.
/// `RadialSampler` hoists that work to construction time: it tabulates
/// `W₋₁((p − 1)/e)` at [`RADIAL_GUESS_BUCKETS`] bucket midpoints once, and
/// each draw re-enters Halley's method from the bucket's stored guess —
/// already within `O(1/buckets)` of the root, so refinement converges in
/// one or two iterations. Draw order and count are identical to the
/// derive-per-request path (one `gen_f64`), and the result agrees to
/// solver tolerance (tested); only the starting point of the iteration
/// changes.
///
/// The two edge buckets fall back to the analytic guess: near `p = 0` the
/// root sits against the branch point and near `p = 1` it runs to `−∞`,
/// so a midpoint seed is no longer close.
#[derive(Debug, Clone)]
pub struct RadialSampler {
    eps: f64,
    /// `W₋₁((p − 1)/e)` at the midpoint of each `p` bucket.
    guesses: Vec<f64>,
}

impl RadialSampler {
    /// Precompute the guess table for budget `eps`.
    ///
    /// # Panics
    /// Panics if `eps <= 0`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        let guesses = (0..RADIAL_GUESS_BUCKETS)
            .map(|b| {
                let p = (b as f64 + 0.5) / RADIAL_GUESS_BUCKETS as f64;
                lambert_wm1((p - 1.0) * INV_E)
            })
            .collect();
        Self { eps, guesses }
    }

    /// The privacy budget the radii are scaled by.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Inverse radial CDF at `p ∈ [0, 1)`, warm-started from the guess
    /// table. Semantics match [`planar_laplace_inverse_cdf`].
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    pub fn inverse_cdf(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        if p == 0.0 {
            return 0.0;
        }
        let b = ((p * RADIAL_GUESS_BUCKETS as f64) as usize).min(RADIAL_GUESS_BUCKETS - 1);
        if b == 0 || b == RADIAL_GUESS_BUCKETS - 1 {
            return planar_laplace_inverse_cdf(self.eps, p);
        }
        let w = lambert_wm1_with_guess((p - 1.0) * INV_E, self.guesses[b]);
        -(w + 1.0) / self.eps
    }

    /// Draw one radius (one uniform, exactly like
    /// [`planar_laplace_radius`]).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inverse_cdf(rng.gen_f64())
    }
}

/// Inverse radial CDF of the planar Laplacian: given `p ∈ [0, 1)` and budget
/// `eps`, the radius `r` with `C_ε(r) = 1 − (1 + εr)e^{−εr} = p`.
///
/// With `p` uniform this yields a draw of the distance between true and
/// reported location under the planar-Laplace mechanism.
pub fn planar_laplace_inverse_cdf(eps: f64, p: f64) -> f64 {
    assert!(eps > 0.0, "eps must be positive");
    assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
    if p == 0.0 {
        return 0.0;
    }
    let w = lambert_wm1((p - 1.0) * INV_E);
    -(w + 1.0) / eps
}

/// Sample a planar-Laplace radius with budget `eps`.
pub fn planar_laplace_radius<R: Rng + ?Sized>(eps: f64, rng: &mut R) -> f64 {
    planar_laplace_inverse_cdf(eps, rng.gen_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::SeededRng;

    #[test]
    fn alias_single_category() {
        let t = AliasTable::new(&[3.0]);
        let mut rng = SeededRng::from_seed(1);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_zero_weight_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0, 0.0]);
        let mut rng = SeededRng::from_seed(2);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 0 || s == 2, "sampled zero-weight category {s}");
        }
    }

    #[test]
    fn alias_matches_distribution() {
        let weights = [0.1, 0.4, 0.15, 0.05, 0.3];
        let t = AliasTable::new(&weights);
        let mut rng = SeededRng::from_seed(42);
        let n = 400_000usize;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - w).abs() < 0.005,
                "category {i}: freq {freq} vs weight {w}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn alias_all_zero_panics() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn alias_negative_panics() {
        AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn radius_inverts_cdf() {
        for eps in [0.1, 0.5, 2.0] {
            for p in [0.05, 0.3, 0.5, 0.9, 0.999] {
                let r = planar_laplace_inverse_cdf(eps, p);
                let cdf = 1.0 - (1.0 + eps * r) * (-eps * r).exp();
                assert!((cdf - p).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn radius_mean_is_two_over_eps() {
        // E[r] for the planar Laplacian is 2/eps.
        let eps = 0.5;
        let mut rng = SeededRng::from_seed(7);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| planar_laplace_radius(eps, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 2.0 / eps).abs() < 0.05,
            "mean {mean} vs {}",
            2.0 / eps
        );
    }

    #[test]
    fn radius_zero_at_p_zero() {
        assert_eq!(planar_laplace_inverse_cdf(1.0, 0.0), 0.0);
    }

    #[test]
    fn alias_accessors_expose_construction() {
        let t = AliasTable::new(&[1.0, 3.0]);
        assert_eq!(t.slot_probs().len(), 2);
        assert_eq!(t.aliases().len(), 2);
        // Slot marginals reconstruct the normalized weights.
        let mut marg = [0.0f64; 2];
        for i in 0..2 {
            marg[i] += t.slot_probs()[i] / 2.0;
            marg[t.aliases()[i] as usize] += (1.0 - t.slot_probs()[i]) / 2.0;
        }
        assert!((marg[0] - 0.25).abs() < 1e-15);
        assert!((marg[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn radial_sampler_matches_derive_per_request_path() {
        // The tabulated warm start must agree with the analytic-guess path
        // to solver tolerance everywhere, including both edge buckets.
        for eps in [0.1, 0.5, 2.0] {
            let sampler = RadialSampler::new(eps);
            let mut p = 1e-9;
            while p < 1.0 {
                let fast = sampler.inverse_cdf(p);
                let slow = planar_laplace_inverse_cdf(eps, p);
                assert!(
                    (fast - slow).abs() <= 1e-11 * (1.0 + slow.abs()),
                    "eps={eps} p={p}: warm {fast} vs analytic {slow}"
                );
                p = p * 1.7 + 1e-4;
            }
            assert_eq!(sampler.inverse_cdf(0.0), 0.0);
        }
    }

    #[test]
    fn radial_sampler_draw_is_bit_stable_per_seed() {
        // One gen_f64 per draw, same as planar_laplace_radius: the two
        // paths consume identical randomness.
        let sampler = RadialSampler::new(0.7);
        let mut a = SeededRng::from_seed(99);
        let mut b = SeededRng::from_seed(99);
        for _ in 0..1_000 {
            let fast = sampler.sample(&mut a);
            let slow = planar_laplace_radius(0.7, &mut b);
            assert!((fast - slow).abs() <= 1e-11 * (1.0 + slow.abs()));
        }
        // Streams stay aligned after the draws.
        assert_eq!(a.gen_f64().to_bits(), b.gen_f64().to_bits());
    }
}
