//! Property tests for the numerical substrate (on the deterministic
//! `geoind-testkit` harness; failures print a per-case seed).

use geoind_math::lattice::{lattice_sum, self_map_probability};
use geoind_math::sampling::{planar_laplace_inverse_cdf, AliasTable};
use geoind_math::{bisect_increasing, lambert_w0, lambert_wm1};
use geoind_rng::SeededRng;
use geoind_testkit::gens::{f64_range, filter, u32_range, u64_any, vec_of};
use geoind_testkit::{check, ensure, Config};

/// Both Lambert-W branches invert `w·e^w` across their domains.
#[test]
fn lambert_branches_invert() {
    check(
        "lambert_branches_invert",
        Config::cases(256),
        &f64_range(-0.999, -1e-6),
        |&t| {
            // Parameterize the domain (-1/e, 0) as t/e.
            let x = t * (1.0f64).exp().recip();
            let w0 = lambert_w0(x);
            let wm1 = lambert_wm1(x);
            ensure!((w0 * w0.exp() - x).abs() < 1e-11);
            ensure!((wm1 * wm1.exp() - x).abs() < 1e-11);
            ensure!(w0 >= -1.0 - 1e-9);
            ensure!(wm1 <= -1.0 + 1e-9);
            Ok(())
        },
    );
}

/// The planar-Laplace inverse CDF is monotone in p and inverts the CDF.
#[test]
fn pl_inverse_cdf_monotone() {
    check(
        "pl_inverse_cdf_monotone",
        Config::cases(256),
        &(
            f64_range(0.05, 3.0),
            f64_range(0.001, 0.995),
            f64_range(1e-4, 0.004),
        ),
        |&(eps, p1, dp)| {
            let p2 = p1 + dp;
            let r1 = planar_laplace_inverse_cdf(eps, p1);
            let r2 = planar_laplace_inverse_cdf(eps, p2);
            ensure!(r2 >= r1, "inverse CDF not monotone: {r1} > {r2}");
            let cdf = 1.0 - (1.0 + eps * r1) * (-eps * r1).exp();
            ensure!((cdf - p1).abs() < 1e-9);
            Ok(())
        },
    );
}

/// `T(β)` is ≥ 1, decreasing, and Φ stays a probability.
#[test]
fn lattice_sum_behaves() {
    check(
        "lattice_sum_behaves",
        Config::cases(256),
        &f64_range(0.01, 6.0),
        |&beta| {
            let t = lattice_sum(beta);
            ensure!(t >= 1.0);
            let t2 = lattice_sum(beta * 1.1);
            ensure!(t2 <= t + 1e-12);
            let phi = 1.0 / t;
            ensure!((0.0..=1.0).contains(&phi));
            Ok(())
        },
    );
}

/// Φ is monotone in ε and anti-monotone in g.
#[test]
fn phi_monotonicity() {
    check(
        "phi_monotonicity",
        Config::cases(256),
        &(f64_range(0.02, 3.0), u32_range(2, 12)),
        |&(eps, g)| {
            let phi = self_map_probability(eps, 20.0, g);
            ensure!(self_map_probability(eps * 1.2, 20.0, g) >= phi - 1e-12);
            ensure!(self_map_probability(eps, 20.0, g + 1) <= phi + 1e-12);
            Ok(())
        },
    );
}

/// Bisection returns the minimal satisfying point of monotone targets.
#[test]
fn bisection_minimality() {
    check(
        "bisection_minimality",
        Config::cases(256),
        &f64_range(0.1, 0.95),
        |&target| {
            let f = |x: f64| 1.0 - (-x).exp();
            let x = bisect_increasing(f, target, 0.5, 1e6, 1e-11).unwrap();
            ensure!(f(x) >= target - 1e-9);
            ensure!(f(x - 1e-8) <= target + 1e-9);
            Ok(())
        },
    );
}

/// Alias tables never emit zero-weight categories and hit every
/// positive-weight category eventually.
#[test]
fn alias_support_is_exact() {
    check(
        "alias_support_is_exact",
        Config::cases(64),
        &(
            filter(vec_of(f64_range(0.0, 5.0), 1, 19), |w: &Vec<f64>| {
                w.iter().sum::<f64>() > 0.1
            }),
            u64_any(),
        ),
        |(weights, seed)| {
            let table = AliasTable::new(weights);
            let mut rng = SeededRng::from_seed(*seed);
            let mut seen = vec![false; weights.len()];
            for _ in 0..4_000 {
                let s = table.sample(&mut rng);
                ensure!(weights[s] > 0.0, "sampled zero-weight category {s}");
                seen[s] = true;
            }
            // Categories holding at least 5% of the mass must show up in 4k
            // draws.
            let total: f64 = weights.iter().sum();
            for (i, &w) in weights.iter().enumerate() {
                if w / total > 0.05 {
                    ensure!(seen[i], "never sampled heavy category {i}");
                }
            }
            Ok(())
        },
    );
}
