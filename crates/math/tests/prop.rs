//! Property tests for the numerical substrate.

use geoind_math::lattice::{lattice_sum, self_map_probability};
use geoind_math::sampling::{planar_laplace_inverse_cdf, AliasTable};
use geoind_math::{bisect_increasing, lambert_w0, lambert_wm1};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Both Lambert-W branches invert `w·e^w` across their domains.
    #[test]
    fn lambert_branches_invert(t in -0.999f64..-1e-6) {
        // Parameterize the domain (-1/e, 0) as t/e.
        let x = t * (1.0f64).exp().recip();
        let w0 = lambert_w0(x);
        let wm1 = lambert_wm1(x);
        prop_assert!((w0 * w0.exp() - x).abs() < 1e-11);
        prop_assert!((wm1 * wm1.exp() - x).abs() < 1e-11);
        prop_assert!(w0 >= -1.0 - 1e-9);
        prop_assert!(wm1 <= -1.0 + 1e-9);
    }

    /// The planar-Laplace inverse CDF is monotone in p and inverts the CDF.
    #[test]
    fn pl_inverse_cdf_monotone(eps in 0.05f64..3.0, p1 in 0.001f64..0.995, dp in 1e-4f64..0.004) {
        let p2 = p1 + dp;
        let r1 = planar_laplace_inverse_cdf(eps, p1);
        let r2 = planar_laplace_inverse_cdf(eps, p2);
        prop_assert!(r2 >= r1, "inverse CDF not monotone: {r1} > {r2}");
        let cdf = 1.0 - (1.0 + eps * r1) * (-eps * r1).exp();
        prop_assert!((cdf - p1).abs() < 1e-9);
    }

    /// `T(β)` is ≥ 1, decreasing, and Φ stays a probability.
    #[test]
    fn lattice_sum_behaves(beta in 0.01f64..6.0) {
        let t = lattice_sum(beta);
        prop_assert!(t >= 1.0);
        let t2 = lattice_sum(beta * 1.1);
        prop_assert!(t2 <= t + 1e-12);
        let phi = 1.0 / t;
        prop_assert!((0.0..=1.0).contains(&phi));
    }

    /// Φ is monotone in ε and anti-monotone in g.
    #[test]
    fn phi_monotonicity(eps in 0.02f64..3.0, g in 2u32..12) {
        let phi = self_map_probability(eps, 20.0, g);
        prop_assert!(self_map_probability(eps * 1.2, 20.0, g) >= phi - 1e-12);
        prop_assert!(self_map_probability(eps, 20.0, g + 1) <= phi + 1e-12);
    }

    /// Bisection returns the minimal satisfying point of monotone targets.
    #[test]
    fn bisection_minimality(target in 0.1f64..0.95) {
        let f = |x: f64| 1.0 - (-x).exp();
        let x = bisect_increasing(f, target, 0.5, 1e6, 1e-11).unwrap();
        prop_assert!(f(x) >= target - 1e-9);
        prop_assert!(f(x - 1e-8) <= target + 1e-9);
    }

    /// Alias tables never emit zero-weight categories and hit every
    /// positive-weight category eventually.
    #[test]
    fn alias_support_is_exact(weights in prop::collection::vec(0.0f64..5.0, 1..20), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.1);
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = vec![false; weights.len()];
        for _ in 0..4_000 {
            let s = table.sample(&mut rng);
            prop_assert!(weights[s] > 0.0, "sampled zero-weight category {s}");
            seen[s] = true;
        }
        // Categories holding at least 5% of the mass must show up in 4k draws.
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            if w / total > 0.05 {
                prop_assert!(seen[i], "never sampled heavy category {i}");
            }
        }
    }
}
