//! A minimal wall-clock bench runner (the workspace's `criterion`
//! replacement). No statistics beyond a trimmed mean: the experiment
//! binary regenerates the paper's tables; these micro-benchmarks exist to
//! spot order-of-magnitude regressions in hot paths.
//!
//! Usage in a `[[bench]]` target with `harness = false`:
//!
//! ```no_run
//! use geoind_testkit::bench::Bench;
//!
//! fn main() {
//!     let mut b = Bench::new("numerics");
//!     b.iter("alias_sample", || 1 + 1);
//!     b.finish();
//! }
//! ```

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARMUP: Duration = Duration::from_millis(60);

/// A named suite of wall-clock micro-benchmarks.
pub struct Bench {
    suite: String,
    results: Vec<(String, f64, u64)>,
}

impl Bench {
    /// Start a suite; results print as they are measured and again as a
    /// summary in [`finish`](Bench::finish).
    pub fn new(suite: &str) -> Self {
        eprintln!("== bench suite: {suite}");
        Self {
            suite: suite.to_string(),
            results: Vec::new(),
        }
    }

    /// Measure `f`, reporting mean ns/iter. The return value is passed
    /// through [`std::hint::black_box`] so the computation is not elided.
    pub fn iter<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        // Warm up and estimate a batch size that keeps clock overhead
        // negligible.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((25_000.0 / per_iter.max(1.0)) as u64).clamp(1, 10_000);

        let mut total_iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < TARGET {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total_iters += batch;
        }
        let ns = start.elapsed().as_nanos() as f64 / total_iters as f64;
        eprintln!(
            "{:<40} {:>14} ns/iter  ({total_iters} iters)",
            name,
            fmt3(ns)
        );
        self.results.push((name.to_string(), ns, total_iters));
    }

    /// Measure `f` over fresh inputs from `setup` (setup time excluded
    /// from the estimate by measuring each call individually) — the
    /// analogue of criterion's `iter_batched` for non-reusable inputs.
    pub fn iter_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            std::hint::black_box(f(input));
        }
        let mut measured = Duration::ZERO;
        let mut total_iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < TARGET {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(f(input));
            measured += t0.elapsed();
            total_iters += 1;
        }
        let ns = measured.as_nanos() as f64 / total_iters.max(1) as f64;
        eprintln!(
            "{:<40} {:>14} ns/iter  ({total_iters} iters)",
            name,
            fmt3(ns)
        );
        self.results.push((name.to_string(), ns, total_iters));
    }

    /// Print the summary table.
    pub fn finish(self) {
        eprintln!("-- {} results --", self.suite);
        for (name, ns, iters) in &self.results {
            eprintln!("{:<40} {:>14} ns/iter  ({iters} iters)", name, fmt3(*ns));
        }
    }
}

/// Format with 3 significant-ish decimals and thousands separators.
// `is_multiple_of` would read better but postdates the declared MSRV.
#[allow(clippy::manual_is_multiple_of)]
fn fmt3(ns: f64) -> String {
    let whole = ns as u64;
    let frac = ((ns - whole as f64) * 100.0).round() as u64;
    let mut s = String::new();
    let digits = whole.to_string();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            s.push('_');
        }
        s.push(c);
    }
    format!("{s}.{frac:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt3_groups_thousands() {
        assert_eq!(fmt3(1234567.89), "1_234_567.89");
        assert_eq!(fmt3(12.5), "12.50");
    }
}
