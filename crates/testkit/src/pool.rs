//! Zero-dependency scoped worker pool with deterministic chunked
//! scheduling.
//!
//! [`Pool::map`] fans a batch of independent work items out over
//! [`std::thread::scope`] threads. Scheduling is *static*: the input is cut
//! into at most `jobs` contiguous chunks up front, chunk `k` is owned by
//! worker `k`, and results are returned in input order. Nothing about the
//! output — order, content, or which item ran where — depends on thread
//! timing, so a caller whose per-item function is deterministic gets
//! bit-identical results at any job count.
//!
//! With `jobs == 1` the batch runs inline on the calling thread (no thread
//! is spawned), which keeps thread-local state — e.g. thread-scoped
//! failpoint sessions — visible to the work exactly as in a plain loop.

/// A fixed-width worker pool. Cheap to construct; spawns scoped threads
/// per [`Pool::map`] call and never outlives it.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool running `jobs` workers per batch (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// A pool sized to [`Pool::available`] workers.
    pub fn with_available_parallelism() -> Self {
        Self::new(Self::available())
    }

    /// The machine's available parallelism (1 when it cannot be queried).
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Worker count per batch.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Apply `f` to every item, returning results in input order.
    ///
    /// The items are split into contiguous chunks (at most one per worker,
    /// sized as evenly as possible); each scoped worker maps its chunk in
    /// order and the chunk results are concatenated — so the output is
    /// exactly `items.into_iter().map(f).collect()` regardless of `jobs`.
    ///
    /// # Panics
    /// Re-raises the first worker panic on the calling thread, like the
    /// equivalent sequential loop would.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let workers = self.jobs.min(n);
        let chunk = n.div_ceil(workers);
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
        let mut items = items.into_iter();
        loop {
            let piece: Vec<I> = items.by_ref().take(chunk).collect();
            if piece.is_empty() {
                break;
            }
            chunks.push(piece);
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|piece| scope.spawn(move || piece.into_iter().map(f).collect::<Vec<T>>()))
                .collect();
            let mut out = Vec::with_capacity(n);
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_job_count() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        for jobs in [1, 2, 3, 4, 7, 16, 200] {
            let got = Pool::new(jobs).map(items.clone(), |i| i * i);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert!(Pool::available() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(3).map(vec![1, 2, 3, 4, 5, 6], |i| {
                assert!(i != 4, "boom");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn single_job_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let ids = Pool::new(1).map(vec![(), ()], |()| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }
}
