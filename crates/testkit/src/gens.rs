//! Structured generators with in-domain halving shrink.
//!
//! A [`Gen`] couples *generation* with *shrinking*: because the generator
//! carries its own bounds, every shrink candidate stays inside the domain
//! the property was written for. Composite inputs are built from tuples
//! (shrunk component-wise) and [`vec_of`] (shrunk by halving length, then
//! element-wise).

use geoind_rng::{Rng, SeededRng};
use std::fmt::Debug;

/// A deterministic generator of test inputs with optional shrinking.
pub trait Gen {
    /// The generated input type.
    type Value: Debug + Clone;

    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut SeededRng) -> Self::Value;

    /// Strictly-simpler candidates for `v` (empty = fully shrunk). All
    /// candidates must lie in the generator's domain.
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let _ = v;
        Vec::new()
    }
}

/// Uniform `f64` in `[lo, hi)`, shrinking by halving toward `lo`.
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    assert!(lo < hi, "f64_range: empty range [{lo}, {hi})");
    F64Range { lo, hi }
}

/// See [`f64_range`].
#[derive(Debug, Clone, Copy)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

impl Gen for F64Range {
    type Value = f64;
    fn generate(&self, rng: &mut SeededRng) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        // Geometric ladder lo, lo+(v-lo)/2, v-(v-lo)/4, ... ascending
        // toward v: the first still-failing rung brackets the failure
        // boundary, and greedy descent halves the gap each round.
        let mut out = Vec::new();
        let mut gap = v - self.lo;
        for _ in 0..32 {
            let c = v - gap;
            if c != *v && out.last() != Some(&c) {
                out.push(c);
            }
            gap /= 2.0;
            if gap == 0.0 {
                break;
            }
        }
        out
    }
}

/// Uniform `usize` in `[lo, hi)`, shrinking by halving toward `lo`.
pub fn usize_range(lo: usize, hi: usize) -> UsizeRange {
    assert!(lo < hi, "usize_range: empty range [{lo}, {hi})");
    UsizeRange { lo, hi }
}

/// See [`usize_range`].
#[derive(Debug, Clone, Copy)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

impl Gen for UsizeRange {
    type Value = usize;
    fn generate(&self, rng: &mut SeededRng) -> usize {
        rng.gen_range(self.lo..self.hi)
    }
    fn shrink(&self, v: &usize) -> Vec<usize> {
        // Ascending ladder toward v; see F64Range::shrink.
        let mut out = Vec::new();
        let mut gap = v - self.lo;
        while gap > 0 {
            let c = v - gap;
            if out.last() != Some(&c) {
                out.push(c);
            }
            gap /= 2;
        }
        out
    }
}

/// Uniform `u32` in `[lo, hi)`, shrinking by halving toward `lo`.
pub fn u32_range(lo: u32, hi: u32) -> U32Range {
    assert!(lo < hi, "u32_range: empty range [{lo}, {hi})");
    U32Range { lo, hi }
}

/// See [`u32_range`].
#[derive(Debug, Clone, Copy)]
pub struct U32Range {
    lo: u32,
    hi: u32,
}

impl Gen for U32Range {
    type Value = u32;
    fn generate(&self, rng: &mut SeededRng) -> u32 {
        rng.gen_range(self.lo..self.hi)
    }
    fn shrink(&self, v: &u32) -> Vec<u32> {
        // Ascending ladder toward v; see F64Range::shrink.
        let mut out = Vec::new();
        let mut gap = v - self.lo;
        while gap > 0 {
            let c = v - gap;
            if out.last() != Some(&c) {
                out.push(c);
            }
            gap /= 2;
        }
        out
    }
}

/// Any `u64` (shrinks by halving toward 0) — e.g. for derived seeds.
pub fn u64_any() -> U64Any {
    U64Any
}

/// See [`u64_any`].
#[derive(Debug, Clone, Copy)]
pub struct U64Any;

impl Gen for U64Any {
    type Value = u64;
    fn generate(&self, rng: &mut SeededRng) -> u64 {
        rng.next_u64()
    }
    fn shrink(&self, v: &u64) -> Vec<u64> {
        if *v == 0 {
            Vec::new()
        } else {
            vec![0, v / 2]
        }
    }
}

/// A fair coin (shrinks toward `false`).
pub fn bool_any() -> BoolAny {
    BoolAny
}

/// See [`bool_any`].
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Gen for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut SeededRng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// A uniform pick from a fixed list (shrinks toward the first entry) —
/// the analogue of `prop_oneof![Just(..), ..]` for enum-like inputs.
pub fn choice<T: Debug + Clone + PartialEq>(options: Vec<T>) -> Choice<T> {
    assert!(!options.is_empty(), "choice: no options");
    Choice { options }
}

/// See [`choice`].
#[derive(Debug, Clone)]
pub struct Choice<T> {
    options: Vec<T>,
}

impl<T: Debug + Clone + PartialEq> Gen for Choice<T> {
    type Value = T;
    fn generate(&self, rng: &mut SeededRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        if self.options.first() == Some(v) {
            Vec::new()
        } else {
            vec![self.options[0].clone()]
        }
    }
}

/// A vector of `min_len..=max_len` elements from `elem`. Shrinks by
/// halving the length toward `min_len` (dropping the tail), then by
/// shrinking individual elements left to right.
pub fn vec_of<G: Gen>(elem: G, min_len: usize, max_len: usize) -> VecOf<G> {
    assert!(min_len <= max_len, "vec_of: min_len > max_len");
    VecOf {
        elem,
        min_len,
        max_len,
    }
}

/// See [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut SeededRng) -> Vec<G::Value> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Halve the length (keep the prefix), never below min_len.
        if v.len() > self.min_len {
            let target = self.min_len + (v.len() - self.min_len) / 2;
            out.push(v[..target].to_vec());
            if v.len() > self.min_len + 1 {
                out.push(v[..v.len() - 1].to_vec());
            }
        }
        // Shrink one element at a time (first candidate each).
        for (i, x) in v.iter().enumerate() {
            if let Some(sx) = self.elem.shrink(x).into_iter().next() {
                let mut w = v.clone();
                w[i] = sx;
                out.push(w);
            }
        }
        out
    }
}

/// Map a generator's output through `f`. Mapping is one-way (the pre-image
/// is not retained), so mapped values do not shrink; prefer generating
/// tuples and constructing inside the property when shrinking matters.
pub fn map<G: Gen, U: Debug + Clone, F: Fn(G::Value) -> U>(gen: G, f: F) -> Mapped<G, F> {
    Mapped { gen, f }
}

/// See [`map`].
pub struct Mapped<G, F> {
    gen: G,
    f: F,
}

impl<G: Gen, U: Debug + Clone, F: Fn(G::Value) -> U> Gen for Mapped<G, F> {
    type Value = U;
    fn generate(&self, rng: &mut SeededRng) -> U {
        (self.f)(self.gen.generate(rng))
    }
}

/// Retry `gen` until `pred` holds (the analogue of `prop_assume!` /
/// `prop_filter`). Panics after 1000 consecutive rejections — a predicate
/// that sparse is a bug in the test, not bad luck.
pub fn filter<G: Gen, F: Fn(&G::Value) -> bool>(gen: G, pred: F) -> Filter<G, F> {
    Filter { gen, pred }
}

/// See [`filter`].
pub struct Filter<G, F> {
    gen: G,
    pred: F,
}

impl<G: Gen, F: Fn(&G::Value) -> bool> Gen for Filter<G, F> {
    type Value = G::Value;
    fn generate(&self, rng: &mut SeededRng) -> G::Value {
        for _ in 0..1000 {
            let v = self.gen.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("filter: predicate rejected 1000 consecutive generated values");
    }
    fn shrink(&self, v: &G::Value) -> Vec<G::Value> {
        self.gen
            .shrink(v)
            .into_iter()
            .filter(|c| (self.pred)(c))
            .collect()
    }
}

macro_rules! impl_tuple_gen {
    ($($g:ident / $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, rng: &mut SeededRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink(&v.$idx) {
                        let mut w = v.clone();
                        w.$idx = c;
                        out.push(w);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_gen!(A / 0);
impl_tuple_gen!(A / 0, B / 1);
impl_tuple_gen!(A / 0, B / 1, C / 2);
impl_tuple_gen!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_gen!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_gen!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_gen!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
