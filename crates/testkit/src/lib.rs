//! # geoind-testkit — deterministic property testing without dependencies
//!
//! A small, fully deterministic property-testing harness plus a wall-clock
//! bench runner, replacing `proptest` and `criterion` so the workspace
//! builds and tests offline with zero external crates.
//!
//! Design points:
//!
//! * **Determinism.** Every case's input is a pure function of the suite
//!   seed and the case index (derived through SplitMix64). A failure report
//!   prints the per-case seed; re-running the suite reproduces it exactly —
//!   there is no persisted regression file to keep in sync.
//! * **Structured generators.** [`Gen`] implementors know their own bounds,
//!   so shrinking never leaves the generator's domain (the classic
//!   prop-test pitfall of shrinking an `0.05..3.0` epsilon to `0.0`).
//! * **Halving shrink.** Numeric values shrink by repeatedly halving the
//!   distance to the range minimum; vectors shrink by halving their length,
//!   then shrinking elements. Greedy first-failure descent, bounded by
//!   [`Config::max_shrink_steps`].
//!
//! ```
//! use geoind_testkit::{check, Config, ensure};
//! use geoind_testkit::gens::{f64_range, usize_range};
//!
//! check(
//!     "sum is monotone in each addend",
//!     Config::default(),
//!     &(f64_range(0.0, 10.0), usize_range(1, 100)),
//!     |&(x, n)| {
//!         ensure!(x + n as f64 >= x, "adding {n} moved the sum backwards");
//!         Ok(())
//!     },
//! );
//! ```

#![warn(missing_docs)]

use geoind_rng::{splitmix64, SeededRng};
use std::fmt::Debug;

pub mod bench;
pub mod clock;
pub mod failpoint;
pub mod gens;
pub mod pool;

pub use gens::Gen;

/// Suite configuration: number of cases, base seed, shrink budget.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: usize,
    /// Base seed; per-case seeds derive from it deterministically.
    pub seed: u64,
    /// Upper bound on shrink candidate evaluations after a failure.
    pub max_shrink_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 64,
            seed: 0x6E0_1D5_EED,
            max_shrink_steps: 512,
        }
    }
}

impl Config {
    /// A config running `cases` cases (other fields default).
    pub fn cases(cases: usize) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// Replace the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of one property evaluation: `Ok(())` passes, `Err(msg)` fails.
pub type PropResult = Result<(), String>;

/// Run `prop` against `cfg.cases` inputs drawn from `gen`.
///
/// On failure the input is shrunk greedily (first shrink candidate that
/// still fails, repeated), then the harness panics with the property name,
/// case index, per-case seed, and the minimal counterexample — everything
/// needed to reproduce: `SeededRng::from_seed(case_seed)` regenerates the
/// original input.
///
/// # Panics
/// Panics if any case fails (this is the test-failure mechanism).
pub fn check<G, P>(name: &str, cfg: Config, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value) -> PropResult,
{
    for case in 0..cfg.cases {
        // Derive the case seed from (suite seed, index) so inserting cases
        // never reshuffles later ones.
        let mut sm = cfg.seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let case_seed = splitmix64(&mut sm);
        let mut rng = SeededRng::from_seed(case_seed);
        let value = gen.generate(&mut rng);
        if let Err(msg) = prop(&value) {
            let (minimal, min_msg, steps) =
                shrink_failure(gen, value, msg, &prop, cfg.max_shrink_steps);
            panic!(
                "property '{name}' failed at case {case}/{total} (case seed {case_seed:#018x})\n\
                 error: {min_msg}\n\
                 minimal counterexample (after {steps} shrink steps): {minimal:?}",
                total = cfg.cases,
            );
        }
    }
}

/// Greedy halving shrink: walk to the first shrink candidate that still
/// fails, repeat until no candidate fails or the budget runs out.
fn shrink_failure<G, P>(
    gen: &G,
    mut value: G::Value,
    mut msg: String,
    prop: &P,
    budget: usize,
) -> (G::Value, String, usize)
where
    G: Gen,
    P: Fn(&G::Value) -> PropResult,
{
    let mut spent = 0usize;
    'outer: while spent < budget {
        for candidate in gen.shrink(&value) {
            spent += 1;
            if let Err(m) = prop(&candidate) {
                value = candidate;
                msg = m;
                continue 'outer;
            }
            if spent >= budget {
                break;
            }
        }
        break;
    }
    (value, msg, spent)
}

/// Fail the enclosing property unless `cond` holds.
///
/// `ensure!(cond)` or `ensure!(cond, "context {x}")` — expands to an early
/// `return Err(..)`, mirroring `prop_assert!`.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        // `if c {} else` rather than `if !c`: conditions are arbitrary
        // caller expressions, often float comparisons, where a negated
        // operator trips clippy::neg_cmp_op_on_partial_ord.
        if $cond {
        } else {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return Err(format!(
                "{} [{} at {}:{}]",
                format!($($fmt)+),
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
}

/// Fail the enclosing property unless `a == b`.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "equality failed: {} = {:?}, {} = {:?} ({}:{})",
                stringify!($a),
                lhs,
                stringify!($b),
                rhs,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::gens::*;
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0usize);
        check(
            "always true",
            Config::cases(100),
            &f64_range(0.0, 1.0),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        assert_eq!(counter.get(), 100);
    }

    #[test]
    fn failure_shrinks_toward_range_min() {
        // Property "x < 5" fails for x in [5, 10); the halving shrink must
        // land near the boundary while never leaving [0, 10).
        let result = std::panic::catch_unwind(|| {
            check(
                "x below 5",
                Config::default(),
                &f64_range(0.0, 10.0),
                |&x| {
                    ensure!(x < 5.0, "x = {x}");
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("case seed"), "missing seed in: {msg}");
        // The minimal counterexample is printed and lies in [5, 5.1).
        let tail = msg.split("shrink steps): ").nth(1).unwrap();
        let x: f64 = tail.trim().parse().unwrap();
        assert!((5.0..5.1).contains(&x), "poorly shrunk: {x}");
    }

    #[test]
    fn vec_shrink_respects_min_len_and_bounds() {
        let result = std::panic::catch_unwind(|| {
            check(
                "vectors shorter than 3",
                Config::default(),
                &vec_of(f64_range(1.0, 2.0), 1, 10),
                |v: &Vec<f64>| {
                    ensure!(v.len() < 3, "len = {}", v.len());
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        let tail = msg.split("shrink steps): ").nth(1).unwrap();
        // Minimal failing length is exactly 3, all elements at the range
        // minimum after shrinking.
        let v: Vec<f64> = tail
            .trim()
            .trim_start_matches('[')
            .trim_end_matches(']')
            .split(',')
            .map(|s| s.trim().parse().unwrap())
            .collect();
        assert_eq!(v.len(), 3, "poorly shrunk: {v:?}");
        assert!(v.iter().all(|&x| (1.0..2.0).contains(&x)));
    }

    #[test]
    fn cases_are_reproducible_from_reported_seed() {
        // Generate with a known case seed and confirm regeneration matches.
        let gen = (f64_range(0.0, 1.0), usize_range(0, 100));
        let mut a = SeededRng::from_seed(123);
        let mut b = SeededRng::from_seed(123);
        assert_eq!(gen.generate(&mut a), gen.generate(&mut b));
    }

    #[test]
    fn filter_retries_until_predicate_holds() {
        let gen = filter(f64_range(0.0, 1.0), |&x| x > 0.5);
        let mut rng = SeededRng::from_seed(7);
        for _ in 0..100 {
            assert!(gen.generate(&mut rng) > 0.5);
        }
    }
}
