//! # Deterministic failpoints — seeded, count-based fault injection
//!
//! A registry of **named injection sites** compiled into library code.
//! Each site is a single line at a hot failure seam:
//!
//! ```ignore
//! if failpoint::hit("cache.import.corrupt") {
//!     return Err(MechanismError::CacheCorrupt { /* injected */ });
//! }
//! ```
//!
//! Design constraints, in priority order:
//!
//! 1. **Absent from production builds.** The whole registry is gated
//!    behind the `failpoints` cargo feature (off by default). Without it
//!    [`hit`] compiles to a constant `false` — the sites vanish from the
//!    object code and the `GEOIND_FAILPOINTS` environment variable is
//!    ignored, so a deployment can never have faults forced on it by an
//!    inherited or injected variable. Test targets get the feature
//!    through dev-dependencies; see the workspace `Cargo.toml`s.
//! 2. **Cheap when compiled in but disarmed.** The fast path is two
//!    relaxed atomic loads. No lock, no string hash, no allocation until
//!    at least one site is armed — and even then, thread-scoped arming
//!    ([`Session`]) is kept in thread-local storage, so a session on one
//!    thread never makes another thread touch a lock.
//! 3. **Deterministic.** Arming is *count-based*, never random: a
//!    [`FailSpec`] says "skip the first `skip` hits, then fire `times`
//!    times". The same program with the same armed specs fires the same
//!    faults at the same call sites in the same order — which is what
//!    makes fault-injected runs bit-reproducible (see
//!    `tests/determinism.rs`).
//! 4. **Test-isolated.** Tests in one binary run on concurrent threads;
//!    a globally armed fault in one test would trip unrelated tests.
//!    [`Session`] therefore arms sites *for the current thread only* and
//!    disarms them on drop. Global arming (used by CI via the
//!    `GEOIND_FAILPOINTS` environment variable) affects every thread.
//!
//! ## Environment grammar
//!
//! `GEOIND_FAILPOINTS` is a comma-separated list of `site=spec` pairs:
//!
//! ```text
//! GEOIND_FAILPOINTS="cache.import.corrupt=1,lp.iterations.exhausted=*"
//! ```
//!
//! * `site=N`   — fire the first `N` hits, then pass.
//! * `site=*`   — fire on every hit.
//! * `site=K:N` — skip the first `K` hits, then fire `N` times.
//!
//! The environment is read once, lazily, on the first [`hit`] call (and
//! only in `failpoints` builds).
//!
//! ## Naming convention
//!
//! Site names are `<area>.<component>.<event>`, e.g.
//! `lp.refactor.singular` — the area is the crate or subsystem, the
//! component is the specific module/structure, the event is what goes
//! wrong. The canonical list lives in [`SITES`].

/// The named injection sites wired into the workspace, with the failure
/// each one simulates. Kept in one place so tests can sweep all of them.
pub const SITES: &[&str] = &[
    "lp.refactor.singular",      // LU refactorization produces a singular basis
    "lp.iterations.exhausted",   // simplex hits its iteration budget
    "cache.import.corrupt",      // offline channel-cache blob fails validation
    "cache.lock.poisoned",       // in-memory channel-cache lock is poisoned
    "alloc.budget.infeasible",   // per-level budget allocation has no solution
    "data.loader.truncated",     // check-in file ends mid-record
    "serve.journal.append",      // ledger WAL record write fails before any byte lands
    "serve.journal.torn",        // ledger WAL record write is cut mid-record (torn tail)
    "serve.journal.flush",       // ledger WAL flush fails after a complete record write
    "serve.journal.enospc",      // ledger WAL append refused by a full disk (ENOSPC)
    "serve.journal.eio",         // ledger WAL append hits a transient device error (EIO)
    "serve.snapshot.write",      // ledger snapshot temp-file write fails
    "serve.snapshot.commit",     // ledger snapshot rename commit fails
    "serve.snapshot.enospc",     // ledger snapshot temp-file write refused by a full disk
    "serve.wal.reset",           // post-snapshot fresh-WAL swap fails
    "certify.channel.violation", // channel certification finds an ε·d constraint violation
    "certify.repair.fail",       // post-repair re-certification still fails (quarantine)
    "sample.alias.build",        // flattened alias-table build fails (serve via the CDF path)
    "serve.net.accept",          // accepted connection is dropped before any byte is read
    "serve.net.read_torn",       // request frame arrives torn (cut mid-read); no budget burns
    "serve.net.write_short",     // response write is cut short after the spend is journaled
    "serve.net.stall",           // peer stalls mid-exchange until the read deadline fires
    "serve.repl.ship_torn", // replication batch write is cut mid-body; follower applies nothing
    "serve.repl.ack_lost",  // replication batch lands but the ack is lost; primary retransmits
    "serve.repl.stale_gen", // follower treats a batch as stale-generation and refuses it fenced
];

/// When an armed site fires: skip the first `skip` hits, then fire
/// `times` times (`u64::MAX` ⇒ forever), then pass again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailSpec {
    /// Number of initial hits that pass through unfired.
    pub skip: u64,
    /// Number of hits (after `skip`) that fire. `u64::MAX` means always.
    pub times: u64,
}

impl FailSpec {
    /// Fire the first `n` hits.
    pub fn times(n: u64) -> Self {
        Self { skip: 0, times: n }
    }

    /// Fire on every hit.
    pub fn always() -> Self {
        Self {
            skip: 0,
            times: u64::MAX,
        }
    }

    /// Skip the first `skip` hits, then fire `times` times.
    pub fn after(skip: u64, times: u64) -> Self {
        Self { skip, times }
    }

    /// Parse the env grammar: `N`, `*`, or `K:N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s == "*" {
            return Ok(Self::always());
        }
        if let Some((skip, times)) = s.split_once(':') {
            let skip = skip
                .trim()
                .parse()
                .map_err(|_| format!("bad skip count '{skip}'"))?;
            let times = if times.trim() == "*" {
                u64::MAX
            } else {
                times
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad fire count '{times}'"))?
            };
            return Ok(Self { skip, times });
        }
        s.parse()
            .map(Self::times)
            .map_err(|_| format!("bad failpoint spec '{s}'"))
    }
}

/// Check an injection site. In a build without the `failpoints` feature
/// this is a constant `false`: sites cost nothing and cannot be armed.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit(_site: &str) -> bool {
    false
}

#[cfg(feature = "failpoints")]
pub use enabled::{
    arm_from_env, arm_from_spec_list, arm_global, disarm_global, fired, hit, reset_all,
    reset_global, Session,
};

#[cfg(feature = "failpoints")]
mod enabled {
    use super::FailSpec;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Mutex, Once, OnceLock, PoisonError};

    /// Mutable per-site state: the spec plus how many hits have occurred.
    #[derive(Debug, Clone, Copy)]
    struct SiteState {
        spec: FailSpec,
        hits: u64,
        fired: u64,
    }

    impl SiteState {
        fn new(spec: FailSpec) -> Self {
            Self {
                spec,
                hits: 0,
                fired: 0,
            }
        }

        /// Record one hit and decide whether it fires.
        fn on_hit(&mut self) -> bool {
            let n = self.hits;
            self.hits += 1;
            let fires = n >= self.spec.skip
                && (self.spec.times == u64::MAX
                    || n < self.spec.skip.saturating_add(self.spec.times));
            if fires {
                self.fired += 1;
            }
            fires
        }
    }

    /// Fast-path flags, checked before any lock or map: is the global map
    /// non-empty, and how many scoped sites are armed across all threads?
    static GLOBAL_ARMED: AtomicBool = AtomicBool::new(false);
    static SCOPED_SITES: AtomicUsize = AtomicUsize::new(0);
    static ENV_INIT: Once = Once::new();

    thread_local! {
        /// Sites armed for this thread only (test isolation via [`Session`]).
        /// Thread-local, so scoped lookups never allocate and never touch
        /// the global mutex — a session on one thread cannot serialize
        /// unrelated threads (e.g. concurrent LP solves in a test binary).
        static SCOPED: RefCell<HashMap<String, SiteState>> = RefCell::new(HashMap::new());
    }

    /// Sites armed process-wide (environment / explicit [`arm_global`]).
    fn global() -> &'static Mutex<HashMap<String, SiteState>> {
        static GLOBAL: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
        GLOBAL.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock_global() -> std::sync::MutexGuard<'static, HashMap<String, SiteState>> {
        // A panic while holding this lock (e.g. a test assertion) must not
        // wedge every later failpoint check.
        global().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Check an injection site. Returns `true` when the armed spec says
    /// this hit fires. Disarmed sites cost two relaxed atomic loads; a
    /// site armed only in another thread's [`Session`] costs one
    /// thread-local map miss, never the global lock.
    pub fn hit(site: &str) -> bool {
        ENV_INIT.call_once(|| {
            if let Ok(spec) = std::env::var("GEOIND_FAILPOINTS") {
                // Ignore parse errors here: library code must not panic on a
                // malformed operator-supplied variable. `arm_from_env` gives
                // callers the checked version.
                let _ = arm_from_spec_list(&spec);
            }
        });
        let scoped_somewhere = SCOPED_SITES.load(Ordering::Relaxed) > 0;
        let global_armed = GLOBAL_ARMED.load(Ordering::Acquire);
        if !scoped_somewhere && !global_armed {
            return false;
        }
        if scoped_somewhere {
            // Scoped arming shadows a global arming of the same site on
            // this thread. Borrows `site` directly — no allocation.
            let scoped = SCOPED.with(|m| m.borrow_mut().get_mut(site).map(SiteState::on_hit));
            if let Some(fires) = scoped {
                return fires;
            }
        }
        if global_armed {
            return lock_global().get_mut(site).is_some_and(SiteState::on_hit);
        }
        false
    }

    /// Arm `site` process-wide. Prefer [`Session`] in tests.
    pub fn arm_global(site: &str, spec: FailSpec) {
        let mut map = lock_global();
        map.insert(site.to_string(), SiteState::new(spec));
        GLOBAL_ARMED.store(true, Ordering::Release);
    }

    /// Disarm one globally armed site.
    pub fn disarm_global(site: &str) {
        let mut map = lock_global();
        map.remove(site);
        GLOBAL_ARMED.store(!map.is_empty(), Ordering::Release);
    }

    /// Disarm every globally armed site and reset its counters.
    pub fn reset_global() {
        lock_global().clear();
        GLOBAL_ARMED.store(false, Ordering::Release);
    }

    /// Disarm every globally armed site plus the *current thread's*
    /// scoped sites. Other threads' [`Session`]s are unaffected (they
    /// disarm themselves on drop).
    pub fn reset_all() {
        reset_global();
        let removed = SCOPED.with(|m| {
            let mut map = m.borrow_mut();
            let n = map.len();
            map.clear();
            n
        });
        SCOPED_SITES.fetch_sub(removed, Ordering::Relaxed);
    }

    /// How many times `site` has fired (scoped state for this thread if
    /// present, else global). Unarmed sites report 0.
    pub fn fired(site: &str) -> u64 {
        if let Some(n) = SCOPED.with(|m| m.borrow().get(site).map(|s| s.fired)) {
            return n;
        }
        lock_global().get(site).map_or(0, |s| s.fired)
    }

    /// Parse a `site=spec,site=spec` list and arm each site globally.
    /// Returns the number of sites armed.
    pub fn arm_from_spec_list(list: &str) -> Result<usize, String> {
        let mut n = 0;
        for pair in list.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (site, spec) = pair
                .split_once('=')
                .ok_or_else(|| format!("failpoint '{pair}' is missing '=spec'"))?;
            arm_global(site.trim(), FailSpec::parse(spec)?);
            n += 1;
        }
        Ok(n)
    }

    /// Arm sites globally from `GEOIND_FAILPOINTS`, reporting parse errors.
    /// Returns the number of sites armed (0 when the variable is unset).
    pub fn arm_from_env() -> Result<usize, String> {
        match std::env::var("GEOIND_FAILPOINTS") {
            Ok(spec) => arm_from_spec_list(&spec),
            Err(_) => Ok(0),
        }
    }

    /// Thread-scoped arming with RAII disarm — the test-friendly interface.
    ///
    /// Sites armed through a `Session` fire only on the creating thread and
    /// are disarmed (counters discarded) when the session drops, so parallel
    /// tests cannot see each other's faults. Scoped arming shadows a global
    /// arming of the same site on this thread.
    ///
    /// ```
    /// use geoind_testkit::failpoint::{self, FailSpec, Session};
    ///
    /// let mut fp = Session::new();
    /// fp.arm("cache.import.corrupt", FailSpec::times(1));
    /// assert!(failpoint::hit("cache.import.corrupt"));   // fires once
    /// assert!(!failpoint::hit("cache.import.corrupt"));  // then passes
    /// drop(fp);
    /// assert!(!failpoint::hit("cache.import.corrupt"));  // disarmed
    /// ```
    #[derive(Debug, Default)]
    pub struct Session {
        armed: Vec<String>,
    }

    impl Session {
        /// Start an empty session for the current thread.
        pub fn new() -> Self {
            Self::default()
        }

        /// Arm `site` for the current thread (re-arming resets its counters).
        pub fn arm(&mut self, site: &str, spec: FailSpec) -> &mut Self {
            let fresh = SCOPED.with(|m| {
                m.borrow_mut()
                    .insert(site.to_string(), SiteState::new(spec))
                    .is_none()
            });
            if fresh {
                SCOPED_SITES.fetch_add(1, Ordering::Relaxed);
            }
            if !self.armed.iter().any(|s| s == site) {
                self.armed.push(site.to_string());
            }
            self
        }

        /// How many times a site armed in this session has fired.
        pub fn fired(&self, site: &str) -> u64 {
            SCOPED.with(|m| m.borrow().get(site).map_or(0, |s| s.fired))
        }
    }

    impl Drop for Session {
        fn drop(&mut self) {
            for site in self.armed.drain(..) {
                let removed = SCOPED.with(|m| m.borrow_mut().remove(&site).is_some());
                if removed {
                    SCOPED_SITES.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_never_fires() {
        assert!(!hit("tests.nothing.armed"));
        assert_eq!(fired("tests.nothing.armed"), 0);
    }

    #[test]
    fn spec_parser_accepts_the_grammar() {
        assert_eq!(FailSpec::parse("3").unwrap(), FailSpec::times(3));
        assert_eq!(FailSpec::parse("*").unwrap(), FailSpec::always());
        assert_eq!(FailSpec::parse("2:5").unwrap(), FailSpec::after(2, 5));
        assert_eq!(
            FailSpec::parse(" 1 : * ").unwrap(),
            FailSpec::after(1, u64::MAX)
        );
        assert!(FailSpec::parse("x").is_err());
        assert!(FailSpec::parse("1:y").is_err());
    }

    #[test]
    fn count_based_firing_is_deterministic() {
        let mut fp = Session::new();
        fp.arm("tests.count.site", FailSpec::after(2, 2));
        let pattern: Vec<bool> = (0..6).map(|_| hit("tests.count.site")).collect();
        assert_eq!(pattern, [false, false, true, true, false, false]);
        assert_eq!(fp.fired("tests.count.site"), 2);
    }

    #[test]
    fn session_is_thread_scoped() {
        let mut fp = Session::new();
        fp.arm("tests.scoped.site", FailSpec::always());
        assert!(hit("tests.scoped.site"));
        // Another thread does not see the scoped arming.
        let other = std::thread::spawn(|| hit("tests.scoped.site"))
            .join()
            .unwrap();
        assert!(!other);
    }

    #[test]
    fn drop_disarms() {
        {
            let mut fp = Session::new();
            fp.arm("tests.drop.site", FailSpec::always());
            assert!(hit("tests.drop.site"));
        }
        assert!(!hit("tests.drop.site"));
    }

    #[test]
    fn spec_list_arms_multiple_sites() {
        assert_eq!(
            arm_from_spec_list("tests.list.a=1, tests.list.b=*").unwrap(),
            2
        );
        // Global arming is visible across threads.
        let seen = std::thread::spawn(|| hit("tests.list.b")).join().unwrap();
        assert!(seen);
        disarm_global("tests.list.a");
        disarm_global("tests.list.b");
        assert!(arm_from_spec_list("nospec").is_err());
    }

    #[test]
    fn scoped_arming_never_locks_other_threads_registry() {
        // A session on this thread must not force another thread through
        // the global path at all: the other thread sees only its (empty)
        // thread-local map and the un-armed global flag.
        let mut fp = Session::new();
        fp.arm("tests.tls.site", FailSpec::always());
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..1000).filter(|_| hit("tests.tls.site")).count()))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 0);
        }
        assert!(hit("tests.tls.site"));
    }
}
