//! # Deterministic failpoints — seeded, count-based fault injection
//!
//! A registry of **named injection sites** compiled into library code.
//! Each site is a single line at a hot failure seam:
//!
//! ```ignore
//! if failpoint::hit("cache.import.corrupt") {
//!     return Err(MechanismError::CacheCorrupt { /* injected */ });
//! }
//! ```
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero-cost when disabled.** The fast path is one relaxed atomic
//!    load of a global "anything armed?" flag. No lock, no string hash,
//!    no allocation until at least one site is armed.
//! 2. **Deterministic.** Arming is *count-based*, never random: a
//!    [`FailSpec`] says "skip the first `skip` hits, then fire `times`
//!    times". The same program with the same armed specs fires the same
//!    faults at the same call sites in the same order — which is what
//!    makes fault-injected runs bit-reproducible (see
//!    `tests/determinism.rs`).
//! 3. **Test-isolated.** Tests in one binary run on concurrent threads;
//!    a globally armed fault in one test would trip unrelated tests.
//!    [`Session`] therefore arms sites *for the current thread only* and
//!    disarms them on drop. Global arming (used by the CLI / CI via the
//!    `GEOIND_FAILPOINTS` environment variable) affects every thread.
//!
//! ## Environment grammar
//!
//! `GEOIND_FAILPOINTS` is a comma-separated list of `site=spec` pairs:
//!
//! ```text
//! GEOIND_FAILPOINTS="cache.import.corrupt=1,lp.iterations.exhausted=*"
//! ```
//!
//! * `site=N`   — fire the first `N` hits, then pass.
//! * `site=*`   — fire on every hit.
//! * `site=K:N` — skip the first `K` hits, then fire `N` times.
//!
//! The environment is read once, lazily, on the first [`hit`] call.
//!
//! ## Naming convention
//!
//! Site names are `<area>.<component>.<event>`, e.g.
//! `lp.refactor.singular` — the area is the crate or subsystem, the
//! component is the specific module/structure, the event is what goes
//! wrong. The canonical list lives in [`SITES`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock, PoisonError};
use std::thread::ThreadId;

/// The named injection sites wired into the workspace, with the failure
/// each one simulates. Kept in one place so tests can sweep all of them.
pub const SITES: &[&str] = &[
    "lp.refactor.singular",    // LU refactorization produces a singular basis
    "lp.iterations.exhausted", // simplex hits its iteration budget
    "cache.import.corrupt",    // offline channel-cache blob fails validation
    "cache.lock.poisoned",     // in-memory channel-cache lock is poisoned
    "alloc.budget.infeasible", // per-level budget allocation has no solution
    "data.loader.truncated",   // check-in file ends mid-record
];

/// When an armed site fires: skip the first `skip` hits, then fire
/// `times` times (`u64::MAX` ⇒ forever), then pass again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailSpec {
    /// Number of initial hits that pass through unfired.
    pub skip: u64,
    /// Number of hits (after `skip`) that fire. `u64::MAX` means always.
    pub times: u64,
}

impl FailSpec {
    /// Fire the first `n` hits.
    pub fn times(n: u64) -> Self {
        Self { skip: 0, times: n }
    }

    /// Fire on every hit.
    pub fn always() -> Self {
        Self {
            skip: 0,
            times: u64::MAX,
        }
    }

    /// Skip the first `skip` hits, then fire `times` times.
    pub fn after(skip: u64, times: u64) -> Self {
        Self { skip, times }
    }

    /// Parse the env grammar: `N`, `*`, or `K:N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s == "*" {
            return Ok(Self::always());
        }
        if let Some((skip, times)) = s.split_once(':') {
            let skip = skip
                .trim()
                .parse()
                .map_err(|_| format!("bad skip count '{skip}'"))?;
            let times = if times.trim() == "*" {
                u64::MAX
            } else {
                times
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad fire count '{times}'"))?
            };
            return Ok(Self { skip, times });
        }
        s.parse()
            .map(Self::times)
            .map_err(|_| format!("bad failpoint spec '{s}'"))
    }
}

/// Mutable per-site state: the spec plus how many hits have occurred.
#[derive(Debug, Clone, Copy)]
struct SiteState {
    spec: FailSpec,
    hits: u64,
    fired: u64,
}

impl SiteState {
    fn new(spec: FailSpec) -> Self {
        Self {
            spec,
            hits: 0,
            fired: 0,
        }
    }

    /// Record one hit and decide whether it fires.
    fn on_hit(&mut self) -> bool {
        let n = self.hits;
        self.hits += 1;
        let fires = n >= self.spec.skip
            && (self.spec.times == u64::MAX || n < self.spec.skip.saturating_add(self.spec.times));
        if fires {
            self.fired += 1;
        }
        fires
    }
}

#[derive(Default)]
struct Registry {
    /// Sites armed process-wide (environment / explicit [`arm_global`]).
    global: HashMap<String, SiteState>,
    /// Sites armed for one thread only (test isolation via [`Session`]).
    scoped: HashMap<(ThreadId, String), SiteState>,
}

/// Fast path: is *anything* armed anywhere? Checked with one relaxed
/// load before touching the registry lock.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    // A panic while holding this lock (e.g. a test assertion inside a
    // session) must not wedge every later failpoint check.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

fn refresh_any_armed(reg: &Registry) {
    ANY_ARMED.store(
        !reg.global.is_empty() || !reg.scoped.is_empty(),
        Ordering::Release,
    );
}

/// Check an injection site. Returns `true` when the armed spec says this
/// hit fires. Unarmed sites (the production case) cost one atomic load.
pub fn hit(site: &str) -> bool {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("GEOIND_FAILPOINTS") {
            // Ignore parse errors here: library code must not panic on a
            // malformed operator-supplied variable. `arm_from_env` gives
            // callers the checked version.
            let _ = arm_from_spec_list(&spec);
        }
    });
    if !ANY_ARMED.load(Ordering::Acquire) {
        return false;
    }
    let tid = std::thread::current().id();
    let mut reg = lock_registry();
    if let Some(state) = reg.scoped.get_mut(&(tid, site.to_string())) {
        return state.on_hit();
    }
    match reg.global.get_mut(site) {
        Some(state) => state.on_hit(),
        None => false,
    }
}

/// Arm `site` process-wide. Prefer [`Session`] in tests.
pub fn arm_global(site: &str, spec: FailSpec) {
    let mut reg = lock_registry();
    reg.global.insert(site.to_string(), SiteState::new(spec));
    refresh_any_armed(&reg);
}

/// Disarm one globally armed site.
pub fn disarm_global(site: &str) {
    let mut reg = lock_registry();
    reg.global.remove(site);
    refresh_any_armed(&reg);
}

/// Disarm every globally armed site and reset its counters.
pub fn reset_global() {
    let mut reg = lock_registry();
    reg.global.clear();
    refresh_any_armed(&reg);
}

/// Disarm everything — global and every thread's scoped sites.
pub fn reset_all() {
    let mut reg = lock_registry();
    reg.global.clear();
    reg.scoped.clear();
    refresh_any_armed(&reg);
}

/// How many times `site` has fired (scoped state for this thread if
/// present, else global). Unarmed sites report 0.
pub fn fired(site: &str) -> u64 {
    let tid = std::thread::current().id();
    let reg = lock_registry();
    if let Some(state) = reg.scoped.get(&(tid, site.to_string())) {
        return state.fired;
    }
    reg.global.get(site).map_or(0, |s| s.fired)
}

/// Parse a `site=spec,site=spec` list and arm each site globally.
/// Returns the number of sites armed.
pub fn arm_from_spec_list(list: &str) -> Result<usize, String> {
    let mut n = 0;
    for pair in list.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (site, spec) = pair
            .split_once('=')
            .ok_or_else(|| format!("failpoint '{pair}' is missing '=spec'"))?;
        arm_global(site.trim(), FailSpec::parse(spec)?);
        n += 1;
    }
    Ok(n)
}

/// Arm sites globally from `GEOIND_FAILPOINTS`, reporting parse errors.
/// Returns the number of sites armed (0 when the variable is unset).
pub fn arm_from_env() -> Result<usize, String> {
    match std::env::var("GEOIND_FAILPOINTS") {
        Ok(spec) => arm_from_spec_list(&spec),
        Err(_) => Ok(0),
    }
}

/// Thread-scoped arming with RAII disarm — the test-friendly interface.
///
/// Sites armed through a `Session` fire only on the creating thread and
/// are disarmed (counters discarded) when the session drops, so parallel
/// tests cannot see each other's faults. Scoped arming shadows a global
/// arming of the same site on this thread.
///
/// ```
/// use geoind_testkit::failpoint::{self, FailSpec, Session};
///
/// let mut fp = Session::new();
/// fp.arm("cache.import.corrupt", FailSpec::times(1));
/// assert!(failpoint::hit("cache.import.corrupt"));   // fires once
/// assert!(!failpoint::hit("cache.import.corrupt"));  // then passes
/// drop(fp);
/// assert!(!failpoint::hit("cache.import.corrupt"));  // disarmed
/// ```
#[derive(Debug, Default)]
pub struct Session {
    armed: Vec<String>,
}

impl Session {
    /// Start an empty session for the current thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `site` for the current thread (re-arming resets its counters).
    pub fn arm(&mut self, site: &str, spec: FailSpec) -> &mut Self {
        let tid = std::thread::current().id();
        let mut reg = lock_registry();
        reg.scoped
            .insert((tid, site.to_string()), SiteState::new(spec));
        refresh_any_armed(&reg);
        if !self.armed.iter().any(|s| s == site) {
            self.armed.push(site.to_string());
        }
        self
    }

    /// How many times a site armed in this session has fired.
    pub fn fired(&self, site: &str) -> u64 {
        let tid = std::thread::current().id();
        let reg = lock_registry();
        reg.scoped
            .get(&(tid, site.to_string()))
            .map_or(0, |s| s.fired)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let tid = std::thread::current().id();
        let mut reg = lock_registry();
        for site in self.armed.drain(..) {
            reg.scoped.remove(&(tid, site));
        }
        refresh_any_armed(&reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_never_fires() {
        assert!(!hit("tests.nothing.armed"));
        assert_eq!(fired("tests.nothing.armed"), 0);
    }

    #[test]
    fn spec_parser_accepts_the_grammar() {
        assert_eq!(FailSpec::parse("3").unwrap(), FailSpec::times(3));
        assert_eq!(FailSpec::parse("*").unwrap(), FailSpec::always());
        assert_eq!(FailSpec::parse("2:5").unwrap(), FailSpec::after(2, 5));
        assert_eq!(
            FailSpec::parse(" 1 : * ").unwrap(),
            FailSpec::after(1, u64::MAX)
        );
        assert!(FailSpec::parse("x").is_err());
        assert!(FailSpec::parse("1:y").is_err());
    }

    #[test]
    fn count_based_firing_is_deterministic() {
        let mut fp = Session::new();
        fp.arm("tests.count.site", FailSpec::after(2, 2));
        let pattern: Vec<bool> = (0..6).map(|_| hit("tests.count.site")).collect();
        assert_eq!(pattern, [false, false, true, true, false, false]);
        assert_eq!(fp.fired("tests.count.site"), 2);
    }

    #[test]
    fn session_is_thread_scoped() {
        let mut fp = Session::new();
        fp.arm("tests.scoped.site", FailSpec::always());
        assert!(hit("tests.scoped.site"));
        // Another thread does not see the scoped arming.
        let other = std::thread::spawn(|| hit("tests.scoped.site"))
            .join()
            .unwrap();
        assert!(!other);
    }

    #[test]
    fn drop_disarms() {
        {
            let mut fp = Session::new();
            fp.arm("tests.drop.site", FailSpec::always());
            assert!(hit("tests.drop.site"));
        }
        assert!(!hit("tests.drop.site"));
    }

    #[test]
    fn spec_list_arms_multiple_sites() {
        assert_eq!(
            arm_from_spec_list("tests.list.a=1, tests.list.b=*").unwrap(),
            2
        );
        // Global arming is visible across threads.
        let seen = std::thread::spawn(|| hit("tests.list.b")).join().unwrap();
        assert!(seen);
        disarm_global("tests.list.a");
        disarm_global("tests.list.b");
        assert!(arm_from_spec_list("nospec").is_err());
    }
}
