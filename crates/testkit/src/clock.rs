//! Deterministic time for deadline logic.
//!
//! Serving-layer code that sheds expired requests must never read the
//! wall clock directly: a test that wants to prove "an expired request is
//! shed before any sampling" needs to *place* the clock exactly where the
//! scenario requires. [`Clock`] abstracts a monotonic nanosecond counter;
//! production code uses [`SystemClock`] (a process-wide monotonic origin),
//! tests use [`ManualClock`] and advance it by hand.
//!
//! Nanosecond `u64` ticks rather than `std::time::Instant` because an
//! `Instant` cannot be fabricated — a deterministic test clock must be
//! able to return arbitrary values, including ones *before* "now".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic nanosecond clock. Implementations must be cheap and
/// thread-safe: deadline checks sit on the serving hot path.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since this clock's origin. Monotone
    /// non-decreasing across calls (per clock instance).
    fn now_nanos(&self) -> u64;
}

/// Wall-clock time as nanoseconds since the first use in this process.
///
/// All `SystemClock` values share one process-wide origin, so nanosecond
/// deadlines computed on one instance compare correctly against another.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

fn process_origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        // ~584 years of range; saturate rather than wrap if exceeded.
        u64::try_from(process_origin().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A clock that only moves when told to — the deterministic test double.
///
/// ```
/// use geoind_testkit::clock::{Clock, ManualClock};
///
/// let clock = ManualClock::new(100);
/// assert_eq!(clock.now_nanos(), 100);
/// clock.advance(50);
/// assert_eq!(clock.now_nanos(), 150);
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start` nanoseconds.
    pub fn new(start: u64) -> Self {
        Self {
            nanos: AtomicU64::new(start),
        }
    }

    /// Move the clock forward by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.nanos.fetch_add(delta, Ordering::SeqCst);
    }

    /// Jump the clock to an absolute value. Panics if that would move the
    /// clock backwards — [`Clock`] promises monotonicity.
    pub fn set(&self, nanos: u64) {
        let prev = self.nanos.swap(nanos, Ordering::SeqCst);
        assert!(prev <= nanos, "ManualClock::set moved time backwards");
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_explicitly_driven() {
        let c = ManualClock::new(7);
        assert_eq!(c.now_nanos(), 7);
        c.advance(3);
        assert_eq!(c.now_nanos(), 10);
        c.set(10); // equal is allowed
        c.set(25);
        assert_eq!(c.now_nanos(), 25);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_refuses_to_rewind() {
        let c = ManualClock::new(10);
        c.set(5);
    }

    #[test]
    fn system_clock_is_monotone_and_shared_origin() {
        let a = SystemClock;
        let b = SystemClock;
        let t0 = a.now_nanos();
        let t1 = b.now_nanos();
        let t2 = a.now_nanos();
        assert!(t0 <= t1 && t1 <= t2);
    }
}
