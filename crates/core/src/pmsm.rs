//! MSM over arbitrary hierarchical space partitions — the paper's
//! Section-8 future work, generalized.
//!
//! [`PartitionMsm`] walks any [`SpacePartition`] (weighted-median k-d
//! partition, adaptive quadtree, …) exactly like Algorithm 1 walks the
//! uniform grid: per-node OPT over the children's box centers, children
//! weighted by their stored prior mass, one budget slice per level. The
//! composability argument carries over verbatim because children tile their
//! parent without overlap; paths that end at a shallow leaf simply consume
//! *less* than the total budget.
//!
//! Budgets are supplied explicitly (one per level up to the partition's
//! maximum depth): the Section-5 cost model assumes square cells of equal
//! size and does not transfer to irregular boxes, so callers typically
//! reuse a grid allocation with `g = √fanout` or a uniform split.

use crate::cache::ShardedCache;
use crate::channel::Channel;
use crate::metrics::QualityMetric;
use crate::opt::{OptOptions, OptimalMechanism};
use crate::{Mechanism, MechanismError};
use geoind_lp::simplex::Basis;
use geoind_rng::Rng;
use geoind_spatial::geom::Point;
use geoind_spatial::kdpart::KdPartition;
use geoind_spatial::partition::SpacePartition;
use geoind_spatial::quadtree::AdaptiveQuadtree;
use geoind_testkit::pool::Pool;
use std::sync::Arc;

/// Multi-step mechanism over any [`SpacePartition`].
#[derive(Debug)]
pub struct PartitionMsm<P: SpacePartition> {
    partition: P,
    budgets: Vec<f64>,
    metric: QualityMetric,
    opt_options: OptOptions,
    /// Per-node channel memo, sharded with single-flight fills (shared
    /// discipline with [`crate::msm::MsmMechanism`]'s cache).
    cache: ShardedCache<usize, Channel>,
}

/// MSM over the weighted-median k-d partition.
pub type KdMsmMechanism = PartitionMsm<KdPartition>;

/// MSM over the adaptive quadtree.
pub type QuadMsmMechanism = PartitionMsm<AdaptiveQuadtree>;

impl<P: SpacePartition> PartitionMsm<P> {
    /// Create the mechanism.
    ///
    /// `budgets[i]` funds the walk from a level-`i` node to one of its
    /// children; its length must equal the partition's maximum depth.
    ///
    /// # Errors
    /// [`MechanismError::BadParameter`] when the budget count mismatches the
    /// depth or any budget is non-positive.
    pub fn new(
        partition: P,
        budgets: Vec<f64>,
        metric: QualityMetric,
    ) -> Result<Self, MechanismError> {
        if budgets.len() != partition.max_depth() as usize {
            return Err(MechanismError::BadParameter(format!(
                "need {} level budgets, got {}",
                partition.max_depth(),
                budgets.len()
            )));
        }
        if budgets.iter().any(|&b| b <= 0.0 || !b.is_finite()) {
            return Err(MechanismError::BadParameter(
                "budgets must be positive".into(),
            ));
        }
        Ok(Self {
            partition,
            budgets,
            metric,
            opt_options: OptOptions::default(),
            cache: ShardedCache::new("partition channel cache"),
        })
    }

    /// Replace the options forwarded to every per-node OPT solve
    /// (constraint set, cut generation, simplex tuning). Unlike the grid
    /// MSM, no level-shared spanner is threaded through the precompute:
    /// partition cells are irregular, so sibling child geometries are not
    /// translates of each other and each node builds its own spanner (the
    /// [`crate::opt`] solve does this whenever `shared_spanner` is absent
    /// or mismatched).
    pub fn with_opt_options(mut self, opts: OptOptions) -> Self {
        self.opt_options = opts;
        self
    }

    /// The options forwarded to every per-node OPT solve.
    pub fn opt_options(&self) -> &OptOptions {
        &self.opt_options
    }

    /// Total privacy budget `Σ ε_i` (an upper bound on what any single walk
    /// consumes; shallow-leaf paths consume less).
    pub fn epsilon(&self) -> f64 {
        self.budgets.iter().sum()
    }

    /// Per-level budgets.
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// The underlying partition.
    pub fn partition(&self) -> &P {
        &self.partition
    }

    /// Number of per-node channels currently memoized.
    pub fn cached_channels(&self) -> usize {
        self.cache.len()
    }

    /// Duplicate channel fills suppressed by the cache's single-flight
    /// discipline (see [`crate::msm::MsmMechanism::dedup_suppressed`]).
    pub fn dedup_suppressed(&self) -> u64 {
        self.cache.dedup_suppressed()
    }

    /// Memoized per-node channel over the children of `node`.
    ///
    /// # Errors
    /// [`MechanismError::LockPoisoned`] on a poisoned cache lock; any
    /// [`MechanismError`] from the per-node OPT solve.
    fn try_channel_for(&self, node: usize) -> Result<Arc<Channel>, MechanismError> {
        self.cache
            .get_or_fill(node, || self.build_channel(node, None).map(|(ch, _)| ch))
    }

    /// One per-node OPT solve, optionally warm-started from a sibling's
    /// exit basis (precompute path); returns the channel and its own exit
    /// basis. Partition cells are irregular, so a sibling basis may fail
    /// the engine's dual-feasibility screen — it then cold-starts, which
    /// only costs pivots, never correctness.
    fn build_channel(
        &self,
        node: usize,
        warm: Option<&Basis>,
    ) -> Result<(Channel, Basis), MechanismError> {
        let part = &self.partition;
        let children = part.children(node);
        let centers: Vec<Point> = children.iter().map(|&c| part.bbox(c).center()).collect();
        let mut masses: Vec<f64> = children.iter().map(|&c| part.mass(c)).collect();
        if masses.iter().sum::<f64>() <= 0.0 {
            masses = vec![1.0; masses.len()];
        }
        let eps_i = self.budgets[part.level(node) as usize];
        let mut opts = self.opt_options.clone();
        opts.simplex.start_basis = warm.cloned();
        let opt = OptimalMechanism::solve_with(eps_i, &centers, &masses, self.metric, opts)?;
        Ok((opt.channel().clone(), opt.basis().clone()))
    }

    /// Eagerly solve every internal node's channel, level by level from
    /// the root, fanning each level's solves over `jobs` workers with the
    /// same deterministic donor-first warm-start schedule as
    /// [`crate::msm::MsmMechanism::precompute_jobs`]: the lowest-index
    /// missing node of each level is solved first and its basis seeds its
    /// siblings. Returns how many channels the cache holds.
    ///
    /// # Errors
    /// Any [`MechanismError`] from a per-node solve (the first in
    /// canonical node order); channels built before it stay cached.
    pub fn precompute_jobs(&self, max_nodes: usize, jobs: usize) -> Result<usize, MechanismError>
    where
        P: Sync,
    {
        let pool = Pool::new(jobs);
        let part = &self.partition;
        let mut budget = max_nodes;
        let mut level: Vec<usize> = vec![part.root()];
        level.retain(|&n| !part.is_leaf(n));
        while !level.is_empty() && budget > 0 {
            let take: Vec<usize> = level.iter().copied().take(budget).collect();
            budget -= take.len();
            let missing: Vec<usize> = take
                .iter()
                .copied()
                .filter(|n| self.cache.get(n).is_none())
                .collect();
            if let Some(&donor) = missing.first() {
                let mut donor_basis: Option<Basis> = None;
                let _ = self.cache.get_or_fill(donor, || {
                    let (ch, basis) = self.build_channel(donor, None)?;
                    donor_basis = Some(basis);
                    Ok(ch)
                })?;
                let results = pool.map(missing[1..].to_vec(), |node| {
                    self.cache
                        .get_or_fill(node, || {
                            self.build_channel(node, donor_basis.as_ref())
                                .map(|(c, _)| c)
                        })
                        .map(|_| ())
                });
                if let Some(err) = results.into_iter().find_map(Result::err) {
                    return Err(err);
                }
            }
            let mut next = Vec::new();
            for &n in &take {
                for &c in part.children(n) {
                    if !part.is_leaf(c) {
                        next.push(c);
                    }
                }
            }
            next.sort_unstable();
            level = next;
        }
        Ok(self.cached_channels())
    }

    /// Fallible form of [`Mechanism::report`]: surfaces per-node
    /// construction and cache failures as typed errors.
    ///
    /// # Errors
    /// Any [`MechanismError`] raised while fetching or building a
    /// per-level channel.
    pub fn try_report<R: Rng + ?Sized>(
        &self,
        x: Point,
        rng: &mut R,
    ) -> Result<Point, MechanismError> {
        let part = &self.partition;
        let mut node = part.root();
        while !part.is_leaf(node) {
            let children = part.children(node);
            let channel = self.try_channel_for(node)?;
            // Input index: the child enclosing x, or uniform when x fell
            // outside the node selected at the previous level.
            let input = children
                .iter()
                .position(|&c| part.bbox(c).contains(x))
                .unwrap_or_else(|| rng.gen_range(0..children.len()));
            let z = channel.sample(input, rng);
            node = children[z];
        }
        Ok(part.bbox(node).center())
    }
}

impl<P: SpacePartition> Mechanism for PartitionMsm<P> {
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        self.try_report(x, rng)
            .expect("partition MSM report failed; use try_report for typed errors")
    }

    fn name(&self) -> String {
        format!(
            "PartitionMSM(eps<={:.3}, depth={})",
            self.epsilon(),
            self.partition.max_depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::SeededRng;
    use geoind_spatial::geom::BBox;

    fn skewed_points(n: usize) -> Vec<Point> {
        let mut rng = SeededRng::from_seed(99);
        (0..n)
            .map(|_| {
                use geoind_rng::Rng;
                Point::new(
                    (3.0 + rng.gen_range(-2.0..2.0f64)).clamp(0.0, 19.99),
                    (3.0 + rng.gen_range(-2.0..2.0f64)).clamp(0.0, 19.99),
                )
            })
            .collect()
    }

    #[test]
    fn kd_reports_land_on_leaf_centers() {
        let pts = skewed_points(2_000);
        let part = KdPartition::build(BBox::square(20.0), &pts, 4, 2);
        let leaf_centers: Vec<Point> = part
            .leaves()
            .iter()
            .map(|&l| part.node(l).bbox.center())
            .collect();
        let msm = KdMsmMechanism::new(part, vec![0.3, 0.4], QualityMetric::Euclidean).unwrap();
        let mut rng = SeededRng::from_seed(4);
        for _ in 0..100 {
            let z = msm.report(Point::new(3.0, 3.0), &mut rng);
            assert!(leaf_centers.iter().any(|c| c.dist(z) < 1e-9));
        }
    }

    #[test]
    fn quadtree_reports_land_on_leaf_centers() {
        let pts = skewed_points(2_000);
        let qt = AdaptiveQuadtree::build(BBox::square(20.0), &pts, 200, 3);
        let leaf_centers: Vec<Point> = qt.leaves().iter().map(|&l| qt.bbox(l).center()).collect();
        let msm = QuadMsmMechanism::new(qt, vec![0.2, 0.3, 0.4], QualityMetric::Euclidean).unwrap();
        let mut rng = SeededRng::from_seed(5);
        for i in 0..200 {
            let x = Point::new((i % 19) as f64 + 0.5, (i % 17) as f64 + 0.5);
            let z = msm.report(x, &mut rng);
            assert!(leaf_centers.iter().any(|c| c.dist(z) < 1e-9), "{z:?}");
        }
    }

    #[test]
    fn quadtree_shallow_paths_spend_less_budget() {
        // A big downtown cluster (deep leaves) plus a small suburb cluster
        // that stays below the split cap: the suburb quadrant remains a
        // depth-1 leaf. A suburb query under a strong budget mostly stops
        // there — a path that consumes only the level-0 budget.
        let mut pts = skewed_points(2_000);
        let mut rng = SeededRng::from_seed(7);
        for _ in 0..80 {
            use geoind_rng::Rng;
            pts.push(Point::new(
                17.0 + rng.gen_range(-1.0..1.0f64),
                17.0 + rng.gen_range(-1.0..1.0),
            ));
        }
        let qt = AdaptiveQuadtree::build(BBox::square(20.0), &pts, 100, 4);
        let suburb_leaf = qt.leaf_containing(Point::new(17.0, 17.0)).unwrap();
        assert_eq!(
            qt.level(suburb_leaf),
            1,
            "suburb quadrant should stay one level deep"
        );
        let suburb_center = qt.bbox(suburb_leaf).center();
        let msm =
            QuadMsmMechanism::new(qt, vec![2.0, 2.0, 2.0, 2.0], QualityMetric::Euclidean).unwrap();
        let hits = (0..50)
            .filter(|_| {
                msm.report(Point::new(17.0, 17.0), &mut rng)
                    .dist(suburb_center)
                    < 1e-9
            })
            .count();
        assert!(
            hits > 25,
            "only {hits}/50 stopped at the shallow suburb leaf"
        );
    }

    #[test]
    fn budget_count_must_match_depth() {
        let part = KdPartition::build(BBox::square(20.0), &skewed_points(100), 4, 2);
        assert!(matches!(
            KdMsmMechanism::new(part, vec![0.5], QualityMetric::Euclidean),
            Err(MechanismError::BadParameter(_))
        ));
    }

    #[test]
    fn utility_improves_with_budget() {
        // Compare budgets inside the regime where the multi-step mechanism
        // tracks its input. Below ~0.4 per level the per-node OPT channels
        // collapse toward the prior's mode, which scores deceptively well
        // on this skewed cluster and makes utility non-monotone in eps.
        let pts = skewed_points(3_000);
        let mut rng = SeededRng::from_seed(6);
        let mut prev = f64::INFINITY;
        for eps in [0.8, 3.2] {
            let part = KdPartition::build(BBox::square(20.0), &pts, 4, 2);
            let msm =
                KdMsmMechanism::new(part, vec![eps * 0.6, eps * 0.4], QualityMetric::Euclidean)
                    .unwrap();
            let mut loss = 0.0;
            for i in 0..300 {
                let x = pts[i * 7 % pts.len()];
                loss += msm.report(x, &mut rng).dist(x);
            }
            loss /= 300.0;
            assert!(loss < prev, "loss {loss} not below {prev} at eps={eps}");
            prev = loss;
        }
    }

    #[test]
    fn precompute_jobs_is_bit_identical_at_any_worker_count() {
        // Same donor-first schedule at jobs=1 and jobs=4, so every cached
        // per-node channel must be bit-identical — the partition analogue
        // of the grid-MSM export determinism pinned in tests/determinism.rs.
        let build = || {
            let part = KdPartition::build(BBox::square(20.0), &skewed_points(500), 4, 2);
            KdMsmMechanism::new(part, vec![0.3, 0.3], QualityMetric::Euclidean).unwrap()
        };
        let (a, b) = (build(), build());
        let na = a.precompute_jobs(usize::MAX, 1).unwrap();
        let nb = b.precompute_jobs(usize::MAX, 4).unwrap();
        assert_eq!(na, nb, "node counts diverged across worker counts");
        assert!(na >= 1, "precompute solved nothing");
        let mut stack = vec![a.partition.root()];
        while let Some(n) = stack.pop() {
            if a.partition.is_leaf(n) {
                continue;
            }
            let (ca, cb) = (a.try_channel_for(n).unwrap(), b.try_channel_for(n).unwrap());
            for x in 0..ca.num_inputs() {
                for z in 0..ca.num_outputs() {
                    assert_eq!(
                        ca.prob(x, z).to_bits(),
                        cb.prob(x, z).to_bits(),
                        "node {n} channel diverged at ({x},{z})"
                    );
                }
            }
            stack.extend(a.partition.children(n));
        }
    }

    #[test]
    fn cache_is_populated() {
        let part = KdPartition::build(BBox::square(20.0), &skewed_points(500), 4, 2);
        let msm = KdMsmMechanism::new(part, vec![0.3, 0.3], QualityMetric::Euclidean).unwrap();
        let mut rng = SeededRng::from_seed(8);
        for _ in 0..50 {
            msm.report(Point::new(3.0, 3.0), &mut rng);
        }
        assert!(msm.cached_channels() >= 2);
    }
}
