//! Row-stochastic channels `K(x)(z)` over discrete location sets.
//!
//! A [`Channel`] is the object the GeoInd definition (Eq. 1/4) constrains:
//! `K(x)(z) ≤ e^{ε·d(x,x′)}·K(x′)(z)` for all inputs `x, x′` and outputs
//! `z`. It is produced by the optimal mechanism and consumed by the
//! multi-step mechanism (one channel per visited index node, sampled once
//! per query).

use crate::certify::Certificate;
use crate::flat::FlatChannel;
use crate::metrics::QualityMetric;
use geoind_rng::Rng;
use geoind_spatial::geom::Point;

/// A probabilistic mapping from `n` input locations to `m` output locations,
/// stored as a dense row-stochastic matrix.
#[derive(Debug, Clone)]
pub struct Channel {
    inputs: Vec<Point>,
    outputs: Vec<Point>,
    /// Row-major `n × m`: `probs[x * m + z] = K(x)(z)`.
    probs: Vec<f64>,
    /// Contiguous row-major alias tables for O(1) sampling, built at the
    /// admission gate (with the certificate) so only certified rows are
    /// ever flattened; `None` until admitted, or when the build degraded
    /// (`sample.alias.build`) — sampling then scans the inverse CDF.
    flat: Option<FlatChannel>,
    /// Proof of ε·d compliance attached by an admission gate
    /// ([`crate::certify::admit`]); `None` for channels built directly.
    certificate: Option<Certificate>,
}

impl Channel {
    /// Build from a row-major probability matrix.
    ///
    /// # Examples
    /// ```
    /// use geoind_core::channel::Channel;
    /// use geoind_spatial::geom::Point;
    ///
    /// let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    /// let k = Channel::new(pts.clone(), pts, vec![0.7, 0.3, 0.3, 0.7]);
    /// assert_eq!(k.prob(0, 0), 0.7);
    /// // 0.7/0.3 < e^{1.0 * 1 km}: the channel is 1.0-GeoInd.
    /// assert!(k.satisfies_geoind(1.0, 1e-9));
    /// assert!(!k.satisfies_geoind(0.5, 1e-9));
    /// ```
    ///
    /// # Panics
    /// Panics if dimensions mismatch, any probability is negative beyond
    /// `1e-9` (tiny LP noise is clipped), or a row's sum deviates from 1 by
    /// more than `1e-6` (rows are then renormalized exactly).
    pub fn new(inputs: Vec<Point>, outputs: Vec<Point>, mut probs: Vec<f64>) -> Self {
        let n = inputs.len();
        let m = outputs.len();
        assert!(n > 0 && m > 0, "channel needs inputs and outputs");
        assert_eq!(probs.len(), n * m, "probability matrix shape mismatch");
        for row in 0..n {
            let r = &mut probs[row * m..(row + 1) * m];
            let mut sum = 0.0;
            for v in r.iter_mut() {
                assert!(*v > -1e-9, "negative probability {v}");
                if *v < 0.0 {
                    *v = 0.0;
                }
                sum += *v;
            }
            assert!((sum - 1.0).abs() < 1e-6, "row {row} sums to {sum}, not 1");
            for v in r.iter_mut() {
                *v /= sum;
            }
        }
        Self {
            inputs,
            outputs,
            probs,
            flat: None,
            certificate: None,
        }
    }

    /// The certification proof attached at admission, if any. Channels
    /// built directly (or transformed by [`Channel::then`] /
    /// [`Channel::geoind_repair`]) carry none until re-admitted.
    pub fn certificate(&self) -> Option<Certificate> {
        self.certificate
    }

    /// Attach a certification proof (admission gates only) and flatten
    /// the now-certified rows into the contiguous alias layout the serving
    /// path samples from. Flattening sits *behind* the gate on purpose: a
    /// table can only ever be built from rows a certificate vouches for.
    /// A degraded build (`sample.alias.build`) leaves `flat` unset and the
    /// channel serving through the inverse-CDF scan.
    pub(crate) fn with_certificate(mut self, cert: Certificate) -> Self {
        let (n, m) = (self.inputs.len(), self.outputs.len());
        self.flat = FlatChannel::build(&self.probs, n, m);
        self.certificate = Some(cert);
        self
    }

    /// The admission-built flattened alias tables, when present.
    pub fn flat(&self) -> Option<&FlatChannel> {
        self.flat.as_ref()
    }

    /// Worst absolute deviation, over every `(row, output)` entry, between
    /// the distribution the flattened alias tables actually sample from
    /// (reconstructed exactly via [`FlatChannel::row_marginal`]) and the
    /// certified matrix entries. `None` when the channel carries no flat
    /// table (it serves through the inverse-CDF scan over `probs` itself,
    /// which cannot drift). A corrupted or stale table shows up here even
    /// though the certificate — which vouches for `probs`, not the derived
    /// slots — still validates.
    pub fn flat_marginal_error(&self) -> Option<f64> {
        let flat = self.flat.as_ref()?;
        let m = self.outputs.len();
        let mut worst = 0.0f64;
        for r in 0..self.inputs.len() {
            for (z, reconstructed) in flat.row_marginal(r).iter().enumerate() {
                worst = worst.max((reconstructed - self.probs[r * m + z]).abs());
            }
        }
        Some(worst)
    }

    /// Test-only: override the flat table to simulate corruption between
    /// admission and serving (the audit in `MsmMechanism` must catch it).
    #[cfg(test)]
    pub(crate) fn with_flat_override(mut self, flat: Option<FlatChannel>) -> Self {
        self.flat = flat;
        self
    }

    /// Input locations (logical locations `X`).
    pub fn inputs(&self) -> &[Point] {
        &self.inputs
    }

    /// Output locations (`Z`).
    pub fn outputs(&self) -> &[Point] {
        &self.outputs
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// `K(x)(z)` by index.
    #[inline]
    pub fn prob(&self, x: usize, z: usize) -> f64 {
        self.probs[x * self.outputs.len() + z]
    }

    /// One row of the matrix.
    pub fn row(&self, x: usize) -> &[f64] {
        let m = self.outputs.len();
        &self.probs[x * m..(x + 1) * m]
    }

    /// Sample an output index for input index `x`: the admission-built
    /// alias tables when present (two draws: slot + coin), otherwise the
    /// inverse-CDF scan (one draw).
    pub fn sample<R: Rng + ?Sized>(&self, x: usize, rng: &mut R) -> usize {
        match &self.flat {
            Some(flat) => flat.sample_row(x, rng),
            None => self.sample_cdf(x, rng),
        }
    }

    /// Reference sampling path: one uniform inverted through the row's
    /// CDF by linear scan. This is the pre-flattening distribution the
    /// equivalence suite compares the alias tables against, and the
    /// fallback when an alias build degraded.
    pub fn sample_cdf<R: Rng + ?Sized>(&self, x: usize, rng: &mut R) -> usize {
        let m = self.outputs.len();
        let row = &self.probs[x * m..(x + 1) * m];
        let u = rng.gen_f64();
        let mut acc = 0.0;
        for (z, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return z;
            }
        }
        m - 1
    }

    /// Sample an output *location* for input index `x`.
    pub fn sample_location<R: Rng + ?Sized>(&self, x: usize, rng: &mut R) -> Point {
        self.outputs[self.sample(x, rng)]
    }

    /// Expected quality loss `Σ_x Π(x) Σ_z K(x)(z) d_Q(x, z)` under a prior
    /// over the inputs (Eq. 3's objective).
    ///
    /// # Panics
    /// Panics if `prior` length mismatches the inputs.
    pub fn expected_loss(&self, prior: &[f64], metric: QualityMetric) -> f64 {
        assert_eq!(prior.len(), self.inputs.len(), "prior length mismatch");
        let m = self.outputs.len();
        let mut total = 0.0;
        for (x, &px) in prior.iter().enumerate() {
            if px == 0.0 {
                continue;
            }
            let mut row_loss = 0.0;
            for z in 0..m {
                let p = self.probs[x * m + z];
                if p > 0.0 {
                    row_loss += p * metric.loss(self.inputs[x], self.outputs[z]);
                }
            }
            total += px * row_loss;
        }
        total
    }

    /// Sequential composition: feed this channel's output into `next`
    /// (matrix product `K₁·K₂`).
    ///
    /// By the data-processing inequality, post-processing through any fixed
    /// channel preserves this channel's GeoInd guarantee — composition can
    /// only *improve* privacy, never degrade it (tested).
    ///
    /// # Panics
    /// Panics unless `next.num_inputs() == self.num_outputs()` (outputs of
    /// the first stage are, positionally, the inputs of the second).
    pub fn then(&self, next: &Channel) -> Channel {
        assert_eq!(
            next.num_inputs(),
            self.num_outputs(),
            "stage mismatch: {} outputs into {} inputs",
            self.num_outputs(),
            next.num_inputs()
        );
        let n = self.num_inputs();
        let k = self.num_outputs();
        let m = next.num_outputs();
        let mut probs = vec![0.0f64; n * m];
        for x in 0..n {
            for z in 0..k {
                let p = self.prob(x, z);
                if p > 0.0 {
                    for (w, out) in probs[x * m..(x + 1) * m].iter_mut().enumerate() {
                        *out += p * next.prob(z, w);
                    }
                }
            }
        }
        Channel::new(self.inputs.clone(), next.outputs.clone(), probs)
    }

    /// Repair tiny ε-GeoInd violations left behind by finite-precision LP
    /// solves.
    ///
    /// The OPT linear program is solved on *row-scaled* constraints
    /// (`e^{−εd}·K(x)(z) − K(x′)(z) ≤ 0`), so a solver tolerance of 1e-9
    /// can translate into an unscaled violation of `1e-9·e^{εd}` — huge for
    /// far pairs, typically manifesting as entries truncated to exactly 0
    /// where the true optimum carries mass `≈ e^{−εd}` (a support mismatch,
    /// which is an *infinite* distinguishability leak).
    ///
    /// The repair takes the upper envelope
    /// `L(x)(z) = max_{x′} e^{−ε·d(x,x′)}·K(x′)(z)` — GeoInd-consistent by
    /// the triangle inequality — and renormalizes rows. Lift sizes are on
    /// the order of the (tiny) true far-pair probabilities, so the expected
    /// loss moves by a vanishing amount; the returned channel passes
    /// [`Channel::geoind_violation`] at honest tolerances.
    ///
    /// Only meaningful when inputs and outputs coincide in interpretation
    /// (they do for OPT, where `X = Z`).
    pub fn geoind_repair(&self, eps: f64) -> Channel {
        let n = self.inputs.len();
        let m = self.outputs.len();
        // Precompute the pairwise decay factors once.
        let mut factors = vec![1.0f64; n * n];
        for x in 0..n {
            for xp in 0..n {
                if x != xp {
                    factors[x * n + xp] = (-eps * self.inputs[x].dist(self.inputs[xp])).exp();
                }
            }
        }
        let mut probs = self.probs.clone();
        // Lift + renormalize until the residual violation reaches float
        // noise. Normalization re-shrinks lifted rows by their lift mass,
        // so each pass contracts the violation; channels straight out of
        // the LP need 1–2 passes (tiny lifts), while badly broken inputs
        // (the repair is also exposed for testing arbitrary channels) may
        // need tens.
        for _ in 0..256 {
            let mut lifted = vec![0.0f64; n * m];
            for x in 0..n {
                for xp in 0..n {
                    let f = factors[x * n + xp];
                    for z in 0..m {
                        let v = f * probs[xp * m + z];
                        if v > lifted[x * m + z] {
                            lifted[x * m + z] = v;
                        }
                    }
                }
                let row = &mut lifted[x * m..(x + 1) * m];
                let s: f64 = row.iter().sum();
                for v in row.iter_mut() {
                    *v /= s;
                }
            }
            probs = lifted;
            // Residual check on the working matrix.
            let mut worst = 0.0f64;
            for x in 0..n {
                for xp in 0..n {
                    if x == xp {
                        continue;
                    }
                    let inv = factors[x * n + xp]; // e^{-eps d}
                    for z in 0..m {
                        let v = inv * probs[x * m + z] - probs[xp * m + z];
                        if v > worst {
                            worst = v;
                        }
                    }
                }
            }
            if worst <= 1e-13 {
                break;
            }
        }
        Channel::new(self.inputs.clone(), self.outputs.clone(), probs)
    }

    /// Largest violation of the ε-GeoInd constraints (Eq. 4), measured as
    /// `K(x)(z) − e^{ε·d(x,x′)}·K(x′)(z)` maximized over all triples.
    /// Non-positive (up to solver tolerance) iff the channel satisfies
    /// ε-GeoInd.
    pub fn geoind_violation(&self, eps: f64) -> f64 {
        let n = self.inputs.len();
        let m = self.outputs.len();
        let mut worst = f64::NEG_INFINITY;
        for x in 0..n {
            for xp in 0..n {
                if x == xp {
                    continue;
                }
                let bound = (eps * self.inputs[x].dist(self.inputs[xp])).exp();
                for z in 0..m {
                    let v = self.probs[x * m + z] - bound * self.probs[xp * m + z];
                    if v > worst {
                        worst = v;
                    }
                }
            }
        }
        worst
    }

    /// Convenience: true when [`Channel::geoind_violation`] is within `tol`.
    pub fn satisfies_geoind(&self, eps: f64, tol: f64) -> bool {
        self.geoind_violation(eps) <= tol
    }

    /// Mean self-map probability `avg_x K(x)(x)` — defined only when inputs
    /// and outputs coincide positionally (the grid case); used to validate
    /// the paper's Φ estimate (Fig. 5).
    ///
    /// # Panics
    /// Panics if input/output counts differ.
    pub fn mean_self_probability(&self) -> f64 {
        assert_eq!(
            self.inputs.len(),
            self.outputs.len(),
            "self-prob needs square channel"
        );
        let n = self.inputs.len();
        (0..n).map(|x| self.prob(x, x)).sum::<f64>() / n as f64
    }

    /// Self-map probability `K(x)(x)` of the input closest to the centroid
    /// of the location set — the best finite proxy for the paper's
    /// infinite-lattice `Φ` model, which assumes an interior cell
    /// surrounded by neighbours on all sides.
    ///
    /// # Panics
    /// Panics if input/output counts differ.
    pub fn central_self_probability(&self) -> f64 {
        assert_eq!(
            self.inputs.len(),
            self.outputs.len(),
            "self-prob needs square channel"
        );
        let n = self.inputs.len() as f64;
        let cx = self.inputs.iter().map(|p| p.x).sum::<f64>() / n;
        let cy = self.inputs.iter().map(|p| p.y).sum::<f64>() / n;
        let centroid = Point::new(cx, cy);
        let (idx, _) = self
            .inputs
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.dist(centroid)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
            .expect("non-empty inputs");
        self.prob(idx, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::SeededRng;

    fn two_point_channel(stay: f64) -> Channel {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        Channel::new(pts.clone(), pts, vec![stay, 1.0 - stay, 1.0 - stay, stay])
    }

    #[test]
    fn row_normalization() {
        let c = two_point_channel(0.7);
        assert!((c.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(c.prob(0, 0), 0.7);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let c = two_point_channel(0.8);
        let mut rng = SeededRng::from_seed(3);
        let n = 100_000;
        let stays = (0..n).filter(|_| c.sample(0, &mut rng) == 0).count();
        let f = stays as f64 / n as f64;
        assert!((f - 0.8).abs() < 0.01, "frequency {f}");
    }

    #[test]
    fn expected_loss_closed_form() {
        let c = two_point_channel(0.75);
        // Uniform prior: loss = 0.25 * 1km on both rows.
        let l = c.expected_loss(&[0.5, 0.5], QualityMetric::Euclidean);
        assert!((l - 0.25).abs() < 1e-12);
        let l2 = c.expected_loss(&[0.5, 0.5], QualityMetric::SqEuclidean);
        assert!((l2 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn geoind_violation_detects_threshold() {
        // stay/(1-stay) == e^{eps*1} at the limit; check both sides.
        let eps = 1.0f64;
        let edge = eps.exp() / (1.0 + eps.exp()); // stay at the boundary
        let ok = two_point_channel(edge - 1e-6);
        let bad = two_point_channel(edge + 1e-3);
        assert!(ok.satisfies_geoind(eps, 1e-9));
        assert!(!bad.satisfies_geoind(eps, 1e-9));
    }

    #[test]
    fn self_probability() {
        let c = two_point_channel(0.9);
        assert!((c.mean_self_probability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn central_self_probability_picks_interior_cell() {
        // 3 collinear points; middle one has a distinct self-probability.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let probs = vec![
            0.8, 0.1, 0.1, //
            0.25, 0.5, 0.25, //
            0.1, 0.1, 0.8,
        ];
        let c = Channel::new(pts.clone(), pts, probs);
        assert!((c.central_self_probability() - 0.5).abs() < 1e-12);
        assert!((c.mean_self_probability() - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn non_stochastic_rows_panic() {
        let pts = vec![Point::new(0.0, 0.0)];
        Channel::new(pts.clone(), pts, vec![0.5]);
    }

    #[test]
    fn composition_is_matrix_product_and_preserves_geoind() {
        // Data-processing inequality: K1 (eps-GeoInd) followed by ANY
        // channel stays eps-GeoInd w.r.t. the original inputs.
        let eps = 1.0f64;
        let edge = eps.exp() / (1.0 + eps.exp());
        let k1 = two_point_channel(edge - 1e-6);
        // An arbitrary, non-private post-processing channel.
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let k2 = Channel::new(pts.clone(), pts, vec![0.99, 0.01, 0.3, 0.7]);
        let composed = k1.then(&k2);
        assert!(k1.satisfies_geoind(eps, 1e-9));
        assert!(!k2.satisfies_geoind(eps, 1e-9));
        assert!(
            composed.satisfies_geoind(eps, 1e-9),
            "post-processing must not degrade GeoInd (violation {})",
            composed.geoind_violation(eps)
        );
        // Entry check: (K1 K2)(0)(0).
        let expect = k1.prob(0, 0) * k2.prob(0, 0) + k1.prob(0, 1) * k2.prob(1, 0);
        assert!((composed.prob(0, 0) - expect).abs() < 1e-12);
        // Rows remain stochastic.
        for x in 0..2 {
            assert!((composed.row(x).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "stage mismatch")]
    fn composition_requires_matching_stages() {
        let a = two_point_channel(0.6);
        let pts = vec![Point::new(0.0, 0.0)];
        let one = Channel::new(pts.clone(), pts, vec![1.0]);
        let _ = a.then(&one);
    }

    #[test]
    fn repair_fixes_support_mismatch() {
        // A channel that is "optimal up to scaled tolerance" but has an
        // exact zero where GeoInd demands mass: K(0)(1) = 0.
        let pts = vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
        let eps = 1.0;
        let broken = Channel::new(pts.clone(), pts, vec![1.0, 0.0, 0.1, 0.9]);
        assert!(!broken.satisfies_geoind(eps, 1e-6));
        let fixed = broken.geoind_repair(eps);
        assert!(
            fixed.satisfies_geoind(eps, 1e-9),
            "violation {}",
            fixed.geoind_violation(eps)
        );
        // The lift is bounded by e^{-eps d} * donor mass.
        assert!(fixed.prob(0, 1) > 0.0);
        assert!(fixed.prob(0, 1) <= (-eps * 4.0f64).exp() * 0.9 + 1e-12);
        // Large entries barely move.
        assert!((fixed.prob(1, 1) - 0.9).abs() < 0.02);
    }

    #[test]
    fn repair_is_identity_on_compliant_channels() {
        let eps = 1.0f64;
        let edge = eps.exp() / (1.0 + eps.exp());
        let ok = two_point_channel(edge - 1e-3);
        let fixed = ok.geoind_repair(eps);
        for x in 0..2 {
            for z in 0..2 {
                assert!((ok.prob(x, z) - fixed.prob(x, z)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tiny_negative_probs_clipped() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let c = Channel::new(pts.clone(), pts, vec![1.0 + 1e-10, -1e-10, 0.0, 1.0]);
        assert!(c.prob(0, 1) >= 0.0);
    }

    #[test]
    fn flat_marginal_error_is_tiny_when_honest_and_catches_a_swapped_table() {
        use crate::certify::{certify, Certificate};
        let c = two_point_channel(0.7);
        // No flat table yet: nothing to audit.
        assert!(c.flat_marginal_error().is_none());
        let cert: Certificate = certify(&c, 1.0, 1e-6);
        let admitted = c.with_certificate(cert);
        let honest = admitted.flat_marginal_error().expect("table built");
        assert!(
            honest <= 8.0 * f64::EPSILON,
            "honest table drifted {honest}"
        );
        // A flat table built from *different* rows behind the same
        // certificate must be flagged with an error of the row gap.
        let wrong = FlatChannel::build(&[0.9, 0.1, 0.1, 0.9], 2, 2).expect("build");
        let tampered = admitted.with_flat_override(Some(wrong));
        let err = tampered.flat_marginal_error().expect("table present");
        assert!(
            (err - 0.2).abs() < 1e-9,
            "tampered table not detected: {err}"
        );
    }
}
