//! Budget allocation across index levels (paper Section 5, Algorithm 2).
//!
//! For each level `i` of the hierarchical grid the allocator solves the
//! paper's **Problem 1**: the minimum budget `ε_i` such that the self-map
//! probability estimate `Φ(ε_i) = 1/T(ε_i·L/gⁱ)` reaches the target `ρ`.
//! Because errors near the root cost `g×` more utility than errors near the
//! leaves, upper levels are funded first; the published pseudocode's
//! `max{solution, υ}` is read as `min` (take the computed minimum, capped by
//! the remaining budget) — see DESIGN.md.
//!
//! Besides the paper's [`AllocationStrategy::Auto`], two more strategies
//! support the evaluation: [`AllocationStrategy::FixedHeight`] (needed to
//! match OPT's effective granularity in Table 2) and
//! [`AllocationStrategy::Uniform`] (an ablation baseline).

use crate::MechanismError;
use geoind_math::lattice::self_map_probability;
use geoind_math::roots::bisect_increasing;
use geoind_testkit::failpoint;

/// How the total budget is split across levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocationStrategy {
    /// Algorithm 2: fund levels top-down at their Problem-1 minimum until
    /// the budget runs out; the final level absorbs the remainder. The
    /// height cap bounds the index depth (and the effective granularity
    /// `g^h`).
    Auto {
        /// Maximum index height.
        max_height: u32,
    },
    /// Exactly `h` levels: greedy top-down as in Auto with the leaf taking
    /// the remainder; if the greedy pass would starve a level to zero, fall
    /// back to an *impact-weighted* split `ε_i ∝ g^{h−i}` (an error at
    /// level `i` costs `g×` more utility than at level `i+1`, the paper's
    /// Section-5 observation, so upper levels keep the lion's share).
    FixedHeight(u32),
    /// Exactly `h` levels with `ε/h` each (ablation baseline).
    Uniform(u32),
}

impl Default for AllocationStrategy {
    fn default() -> Self {
        AllocationStrategy::Auto { max_height: 5 }
    }
}

/// The result of an allocation: one budget per level, summing to the input.
#[derive(Debug, Clone)]
pub struct LevelBudgets {
    budgets: Vec<f64>,
    needed: Vec<f64>,
}

impl LevelBudgets {
    /// Index height `h` (number of levels).
    pub fn height(&self) -> u32 {
        self.budgets.len() as u32
    }

    /// Budget of level `i` (1-based, as in the paper).
    pub fn level(&self, i: u32) -> f64 {
        assert!(i >= 1 && i <= self.height(), "level {i} out of range");
        self.budgets[(i - 1) as usize]
    }

    /// All budgets, level 1 first.
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// The Problem-1 minimum for each level (diagnostics).
    pub fn needed(&self) -> &[f64] {
        &self.needed
    }

    /// Total budget (equals the `ε` passed to the allocator).
    pub fn total(&self) -> f64 {
        self.budgets.iter().sum()
    }
}

/// Budget allocator for a `g`-ary hierarchical grid over a square region.
#[derive(Debug, Clone, Copy)]
pub struct BudgetAllocator {
    region_side: f64,
    g: u32,
    rho: f64,
}

impl BudgetAllocator {
    /// Create an allocator.
    ///
    /// # Panics
    /// Panics unless `region_side > 0`, `g ≥ 2` and `ρ ∈ (0, 1)`.
    pub fn new(region_side: f64, g: u32, rho: f64) -> Self {
        assert!(region_side > 0.0, "region side must be positive");
        assert!(g >= 2, "granularity must be >= 2");
        assert!(rho > 0.0 && rho < 1.0, "rho must be in (0,1), got {rho}");
        Self {
            region_side,
            g,
            rho,
        }
    }

    /// Target self-map probability `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Solve Problem 1 for level `i` (1-based): the minimum `ε` with
    /// `Φ(ε) ≥ ρ` on the `g×g` grid refining a level-`(i−1)` cell. Grows
    /// geometrically (`×g`) with the level, since the cell side shrinks by
    /// `g` per level.
    pub fn min_budget_for_level(&self, level: u32) -> f64 {
        self.try_min_budget_for_level(level)
            .expect("Phi approaches 1, so a solution always exists")
    }

    /// Fallible form of [`Self::min_budget_for_level`]: reports root-finding
    /// failure as [`MechanismError::AllocationFailed`] instead of panicking.
    ///
    /// # Errors
    /// [`MechanismError::BadParameter`] on `level == 0`;
    /// [`MechanismError::AllocationFailed`] when the Problem-1 root search
    /// cannot bracket a solution.
    pub fn try_min_budget_for_level(&self, level: u32) -> Result<f64, MechanismError> {
        if level < 1 {
            return Err(MechanismError::BadParameter("levels are 1-based".into()));
        }
        // Cell side at this level: L / g^level.
        let side = self.region_side / (self.g as f64).powi(level as i32 - 1);
        bisect_increasing(
            |eps| self_map_probability(eps, side, self.g),
            self.rho,
            0.1,
            1e9,
            1e-10,
        )
        .ok_or_else(|| {
            MechanismError::AllocationFailed(format!(
                "no budget reaches rho={} at level {level} (cell side {side})",
                self.rho
            ))
        })
    }

    /// Split `eps` across levels according to `strategy`.
    ///
    /// # Examples
    /// ```
    /// use geoind_core::alloc::{AllocationStrategy, BudgetAllocator};
    ///
    /// // 20 km region, 3x3 per-level grid, 80% self-map target.
    /// let alloc = BudgetAllocator::new(20.0, 3, 0.8);
    /// let budgets = alloc
    ///     .allocate(0.5, AllocationStrategy::Auto { max_height: 5 })
    ///     .unwrap();
    /// assert_eq!(budgets.height(), 2);                 // the paper's Table-2 regime
    /// assert!((budgets.total() - 0.5).abs() < 1e-9);   // composability: sums to eps
    /// ```
    ///
    /// # Errors
    /// [`MechanismError::BadParameter`] if `eps <= 0` or the strategy
    /// requests a zero height; [`MechanismError::AllocationFailed`] when a
    /// level's Problem-1 minimum cannot be computed.
    pub fn allocate(
        &self,
        eps: f64,
        strategy: AllocationStrategy,
    ) -> Result<LevelBudgets, MechanismError> {
        if failpoint::hit("alloc.budget.infeasible") {
            return Err(MechanismError::AllocationFailed(format!(
                "injected: no feasible split of eps={eps} (failpoint \
                 alloc.budget.infeasible)"
            )));
        }
        if eps <= 0.0 || !eps.is_finite() {
            return Err(MechanismError::BadParameter(format!(
                "total budget must be positive, got {eps}"
            )));
        }
        match strategy {
            AllocationStrategy::Auto { max_height } => {
                if max_height < 1 {
                    return Err(MechanismError::BadParameter(
                        "max_height must be >= 1".into(),
                    ));
                }
                let mut budgets = Vec::new();
                let mut needed = Vec::new();
                let mut remaining = eps;
                for level in 1..=max_height {
                    let need = self.try_min_budget_for_level(level)?;
                    needed.push(need);
                    if need >= remaining || level == max_height {
                        budgets.push(remaining);
                        break;
                    }
                    budgets.push(need);
                    remaining -= need;
                }
                Ok(LevelBudgets { budgets, needed })
            }
            AllocationStrategy::FixedHeight(h) => {
                if h < 1 {
                    return Err(MechanismError::BadParameter("height must be >= 1".into()));
                }
                let needed = (1..=h)
                    .map(|l| self.try_min_budget_for_level(l))
                    .collect::<Result<Vec<f64>, _>>()?;
                // Greedy pass, leaf absorbs the remainder.
                let mut budgets = Vec::with_capacity(h as usize);
                let mut remaining = eps;
                let mut starved = false;
                for (idx, &need) in needed.iter().enumerate() {
                    let is_leaf = idx + 1 == h as usize;
                    let b = if is_leaf {
                        remaining
                    } else {
                        need.min(remaining)
                    };
                    if b <= 0.0 {
                        starved = true;
                        break;
                    }
                    budgets.push(b);
                    remaining -= b;
                }
                if starved {
                    // Impact-weighted fallback: level i's utility impact is
                    // g× that of level i+1, so weight ε_i ∝ g^{h-i}.
                    let gf = self.g as f64;
                    let weights: Vec<f64> = (1..=h).map(|i| gf.powi((h - i) as i32)).collect();
                    let total: f64 = weights.iter().sum();
                    budgets = weights.iter().map(|w| eps * w / total).collect();
                }
                Ok(LevelBudgets { budgets, needed })
            }
            AllocationStrategy::Uniform(h) => {
                if h < 1 {
                    return Err(MechanismError::BadParameter("height must be >= 1".into()));
                }
                let needed = (1..=h)
                    .map(|l| self.try_min_budget_for_level(l))
                    .collect::<Result<Vec<f64>, _>>()?;
                Ok(LevelBudgets {
                    budgets: vec![eps / h as f64; h as usize],
                    needed,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> BudgetAllocator {
        BudgetAllocator::new(20.0, 3, 0.8)
    }

    #[test]
    fn min_budget_achieves_rho() {
        let a = alloc();
        for level in 1..=3 {
            let e = a.min_budget_for_level(level);
            let side = 20.0 / 3f64.powi(level as i32 - 1);
            let phi = self_map_probability(e, side, 3);
            assert!(phi >= 0.8 - 1e-6, "level {level}: phi {phi}");
            // Minimality: a slightly smaller budget misses rho.
            let phi_less = self_map_probability(e * 0.999, side, 3);
            assert!(phi_less < 0.8, "level {level} budget not minimal");
        }
    }

    #[test]
    fn needs_grow_geometrically_with_level() {
        let a = alloc();
        let e1 = a.min_budget_for_level(1);
        let e2 = a.min_budget_for_level(2);
        let e3 = a.min_budget_for_level(3);
        // Cell side shrinks by g per level, so the needed budget scales by g.
        assert!((e2 / e1 - 3.0).abs() < 1e-6, "ratio {}", e2 / e1);
        assert!((e3 / e2 - 3.0).abs() < 1e-6);
    }

    #[test]
    fn auto_matches_paper_walkthrough() {
        // g=3, L=20, rho=0.8: level 1 needs ~0.46; at eps=0.5 the index has
        // two levels with the leftover on level 2 (the Table-2 regime).
        let a = alloc();
        let lb = a
            .allocate(0.5, AllocationStrategy::Auto { max_height: 5 })
            .unwrap();
        assert_eq!(lb.height(), 2);
        assert!((lb.total() - 0.5).abs() < 1e-12);
        assert!(lb.level(1) > 0.4 && lb.level(1) < 0.5);
        assert!(lb.level(2) > 0.0);
    }

    #[test]
    fn auto_consumes_whole_budget() {
        for eps in [0.1, 0.5, 2.0, 10.0] {
            let lb = alloc()
                .allocate(eps, AllocationStrategy::Auto { max_height: 6 })
                .unwrap();
            assert!((lb.total() - eps).abs() < 1e-9, "eps={eps}");
            for &b in lb.budgets() {
                assert!(b > 0.0);
            }
        }
    }

    #[test]
    fn auto_height_grows_with_budget() {
        let a = alloc();
        let h_small = a
            .allocate(0.2, AllocationStrategy::Auto { max_height: 8 })
            .unwrap()
            .height();
        let h_big = a
            .allocate(5.0, AllocationStrategy::Auto { max_height: 8 })
            .unwrap()
            .height();
        assert!(h_big > h_small, "{h_big} vs {h_small}");
    }

    #[test]
    fn auto_respects_height_cap() {
        let lb = alloc()
            .allocate(100.0, AllocationStrategy::Auto { max_height: 3 })
            .unwrap();
        assert_eq!(lb.height(), 3);
        assert!((lb.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_height_greedy_when_affordable() {
        let a = alloc();
        let need1 = a.min_budget_for_level(1);
        let lb = a
            .allocate(need1 * 2.0, AllocationStrategy::FixedHeight(2))
            .unwrap();
        assert_eq!(lb.height(), 2);
        assert!((lb.level(1) - need1).abs() < 1e-9);
        assert!((lb.level(2) - need1).abs() < 1e-9); // remainder
    }

    #[test]
    fn fixed_height_impact_weighted_when_starved() {
        let a = alloc();
        // Budget below even level 1's need: greedy would starve level 2+.
        let lb = a.allocate(0.1, AllocationStrategy::FixedHeight(3)).unwrap();
        assert_eq!(lb.height(), 3);
        assert!((lb.total() - 0.1).abs() < 1e-12);
        for &b in lb.budgets() {
            assert!(b > 0.0);
        }
        // Impact weighting: upper levels get g× the budget of the next.
        assert!((lb.level(1) / lb.level(2) - 3.0).abs() < 1e-6);
        assert!((lb.level(2) / lb.level(3) - 3.0).abs() < 1e-6);
        // The root keeps the lion's share.
        assert!(lb.level(1) > 0.5 * lb.total());
    }

    #[test]
    fn uniform_splits_evenly() {
        let lb = alloc()
            .allocate(0.9, AllocationStrategy::Uniform(3))
            .unwrap();
        for &b in lb.budgets() {
            assert!((b - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn rho_increases_needed_budget() {
        let lo = BudgetAllocator::new(20.0, 4, 0.5).min_budget_for_level(1);
        let hi = BudgetAllocator::new(20.0, 4, 0.9).min_budget_for_level(1);
        assert!(hi > lo);
    }

    #[test]
    #[should_panic(expected = "rho must be in (0,1)")]
    fn bad_rho_rejected() {
        BudgetAllocator::new(20.0, 4, 1.0);
    }
}
