//! Channel certification: the fail-closed integrity gate every channel
//! passes before anything may sample from it.
//!
//! The privacy guarantee of OPT/MSM rests entirely on the LP channel
//! satisfying the ε·d constraint set — but the workspace simplex returns
//! *near*-feasible floating-point solutions, and the offline cache
//! checksums only detect bit corruption. A subtly ε-violating payload
//! with valid checksums would otherwise be served without complaint.
//! This module turns [`Channel::geoind_repair`] from an advisory helper
//! into an enforced invariant:
//!
//! > **every sampled channel carries a passing [`Certificate`], or the
//! > request was served by a closed-form tier / refused.**
//!
//! ## The gate
//!
//! [`admit`] is called at every channel admission point (the OPT solve,
//! which also covers every MSM/PMSM per-node fill) and runs three steps:
//!
//! 1. **Certify** the raw solver output against the solve-time
//!    constraint set ([`certify`], exhaustive, compensated summation).
//! 2. **Repair** — [`Channel::geoind_repair`]'s upper-envelope lift is
//!    applied unconditionally as numerical finishing (it is the identity
//!    on compliant channels up to float noise), which also converts a
//!    spanner-relaxed solution into a full-pair ε-GeoInd channel.
//! 3. **Re-certify** the repaired channel against the *strict* tolerance
//!    and the full pair set. A channel that still fails is refused with
//!    [`MechanismError::ChannelQuarantined`] — it is never sampled.
//!
//! The offline cache import gate ([`MsmMechanism::import_cache`]) uses
//! [`certify`] *without* the repair step: a cached entry was already
//! repaired at provisioning time, so a violation there is evidence of
//! tampering or corruption, and repairing it would launder a forged
//! channel into service. The entry is quarantined instead (the node is
//! re-solved on demand).
//!
//! ## Tolerance derivation
//!
//! Violations are measured in *scaled* space,
//! `v = e^{−ε·d(x,x′)}·K(x)(z) − K(x′)(z)`, the same quantity the LP rows
//! and the repair loop bound. Scaled violations live in `[−1, 1]`, so a
//! single tolerance is meaningful for near and far pairs alike (the
//! unscaled form `K(x)(z) − e^{ε·d}·K(x′)(z)` inflates solver noise by
//! `e^{ε·d}`).
//!
//! * **Admission tolerance** (raw solver output): a basic feasible
//!   solution satisfies the scaled rows to roughly the solver's
//!   optimality tolerance, but near-zero variables are additionally
//!   truncated by up to the solver's value-clipping threshold
//!   ([`geoind_lp::simplex::VALUE_CLIP`]). Admission therefore allows
//!   `4·(VALUE_CLIP + opt_tol)` plus a problem-size term
//!   `64·(n+m)·ε_machine` for accumulated rounding in the `m`-term row
//!   normalizations.
//! * **Spanner alignment**: a spanner solve enforces constraints only on
//!   the `δ`-spanner edges at budget `ε/δ`. Chaining the per-edge bounds
//!   along a spanner path of at most `n−1` edges (total length
//!   `≤ δ·d(x,x′)`, which is what makes the full-pair check at ε valid
//!   at all) accumulates at most one per-edge residual per hop, so the
//!   admission tolerance is widened by `δ·(n−1)`. Without this factor,
//!   correct spanner channels would be false-quarantined.
//! * **Strict tolerance** (post-repair): the repair loop iterates until
//!   its scaled residual is ≤ 1e-13; re-certification allows 1e-10 plus
//!   the same size term — three orders of magnitude of slack above
//!   convergence, five below any privacy-relevant violation.
//!
//! Row-stochasticity is checked with Neumaier (compensated) summation,
//! so the row check's own rounding error is one ulp rather than `m` ulps
//! and [`row_tolerance`] can be tight.

use crate::channel::Channel;
use crate::opt::ConstraintSet;
use crate::MechanismError;
use geoind_testkit::failpoint;

/// Outcome of certifying one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The channel passed certification as presented.
    Certified,
    /// The channel failed initial certification but the repaired channel
    /// re-certified; it serves with a bounded utility-loss delta
    /// ([`Certificate::repair_l1_delta`]).
    Repaired,
    /// Certification failed and repair could not (or was not allowed to)
    /// save the channel; it must never be sampled.
    Quarantined,
}

/// The proof object attached to every admitted channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Certificate {
    /// Largest scaled constraint violation
    /// `e^{−ε·d(x,x′)}·K(x)(z) − K(x′)(z)` found over every checked
    /// triple (negative when all constraints hold with slack).
    pub max_violation: f64,
    /// Number of ordered `(x, x′)` pairs exhaustively checked (each pair
    /// covers all `m` outputs).
    pub checked_pairs: usize,
    /// Largest compensated row-sum deviation `|Σ_z K(x)(z) − 1|`.
    pub max_row_error: f64,
    /// The certification outcome.
    pub verdict: Verdict,
    /// Largest per-row L1 change the repair step applied,
    /// `max_x Σ_z |K′(x)(z) − K(x)(z)|`. For any prior, repair moves the
    /// expected loss by at most `repair_l1_delta · max_z d_Q(x, z)` (see
    /// DESIGN.md §10); zero when no repair ran.
    pub repair_l1_delta: f64,
}

impl Certificate {
    /// True when the channel may be sampled from.
    pub fn passes(&self) -> bool {
        !matches!(self.verdict, Verdict::Quarantined)
    }
}

/// How a channel is certified: the budget it must satisfy and the
/// constraint set it was solved under (which widens the admission
/// tolerance for spanner solves — see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct CertifySpec {
    /// The ε the channel must satisfy on all pairs.
    pub eps: f64,
    /// The solve-time constraint generation strategy.
    pub constraints: ConstraintSet,
    /// The LP solver's optimality tolerance (admission slack).
    pub solver_slack: f64,
}

/// Compensated (Neumaier) summation: the returned sum's error is one ulp
/// of the result instead of growing with the term count.
fn neumaier_sum(values: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for &v in values {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            comp += (sum - t) + v;
        } else {
            comp += (v - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

/// Largest scaled violation `e^{−ε·d(x,x′)}·K(x)(z) − K(x′)(z)` over all
/// outputs `z`, for one ordered input pair. This is the per-pair check
/// [`measure`] runs exhaustively — and, run against a candidate LP
/// solution instead of a finished channel, it is the *separation oracle*
/// of the delayed-constraint-generation solve in
/// [`crate::opt::OptimalMechanism`]: a positive return beyond the
/// separation tolerance means the pair's GeoInd rows are violated and
/// must be appended to the working LP.
pub(crate) fn pair_violation(channel: &Channel, eps: f64, x: usize, xp: usize) -> f64 {
    let inputs = channel.inputs();
    let m = channel.num_outputs();
    let factor = (-eps * inputs[x].dist(inputs[xp])).exp();
    let mut worst = f64::NEG_INFINITY;
    for z in 0..m {
        let v = factor * channel.prob(x, z) - channel.prob(xp, z);
        if v > worst {
            worst = v;
        }
    }
    worst
}

/// Largest compensated row-sum deviation `|Σ_z K(x)(z) − 1|` over all
/// rows — the Neumaier-summed stochasticity check shared by [`measure`]
/// and the cut-generation loop's candidate scan.
pub(crate) fn max_row_error(channel: &Channel) -> f64 {
    let mut worst = 0.0f64;
    for x in 0..channel.num_inputs() {
        let e = (neumaier_sum(channel.row(x)) - 1.0).abs();
        if e > worst {
            worst = e;
        }
    }
    worst
}

/// Exhaustively measure a channel: the largest scaled ε·d violation over
/// all ordered input pairs and outputs, the number of pairs checked, and
/// the largest compensated row-sum deviation.
pub fn measure(channel: &Channel, eps: f64) -> (f64, usize, f64) {
    let n = channel.num_inputs();
    let mut max_violation = f64::NEG_INFINITY;
    let mut checked_pairs = 0usize;
    for x in 0..n {
        for xp in 0..n {
            if x == xp {
                continue;
            }
            checked_pairs += 1;
            let v = pair_violation(channel, eps, x, xp);
            if v > max_violation {
                max_violation = v;
            }
        }
    }
    (max_violation, checked_pairs, max_row_error(channel))
}

/// Row-stochasticity tolerance for an `m`-output channel: rows are
/// renormalized by an `m`-term division, so allow `32·m` ulps.
pub fn row_tolerance(m: usize) -> f64 {
    32.0 * m as f64 * f64::EPSILON
}

/// Problem-size rounding term shared by both tolerances.
fn size_term(n: usize, m: usize) -> f64 {
    64.0 * (n + m) as f64 * f64::EPSILON
}

/// Scaled-violation tolerance for admitting a *raw* solver output (see
/// the module docs for the derivation, including the `δ·(n−1)` spanner
/// chaining factor).
pub fn admission_tolerance(n: usize, m: usize, spec: &CertifySpec) -> f64 {
    let base = 4.0 * (geoind_lp::simplex::VALUE_CLIP + spec.solver_slack.abs()) + size_term(n, m);
    match spec.constraints {
        ConstraintSet::Full => base,
        ConstraintSet::Spanner { dilation } => {
            base * dilation.max(1.0) * (n.saturating_sub(1)).max(1) as f64
        }
    }
}

/// Scaled-violation tolerance for a *repaired* channel (full pair set):
/// the repair loop converges to a 1e-13 residual; allow 1e-10 plus the
/// size term.
pub fn strict_tolerance(n: usize, m: usize) -> f64 {
    1e-10 + size_term(n, m)
}

/// Tolerance for *re-certifying* an already-admitted channel (doctor
/// re-checks, offline-cache import): the strict tolerance, widened by the
/// same `δ·(n−1)` chaining factor the admission gate applies when the
/// channel was provisioned under a spanner constraint set. Re-checking a
/// spanner-admitted bundle against the bare full-set strict tolerance
/// would hold it to a tighter spec than the one it was admitted under and
/// risk false quarantine.
pub fn recheck_tolerance(n: usize, m: usize, constraints: ConstraintSet) -> f64 {
    let base = strict_tolerance(n, m);
    match constraints {
        ConstraintSet::Full => base,
        ConstraintSet::Spanner { dilation } => {
            base * dilation.max(1.0) * (n.saturating_sub(1)).max(1) as f64
        }
    }
}

/// Certify a channel against `eps` at tolerance `tol` — no repair. Used
/// standalone by the offline-cache import gate (where a failure means
/// tampering, not float noise) and by `geoind doctor`; [`admit`] uses it
/// as its first step.
///
/// The `certify.channel.violation` failpoint forces a failing verdict
/// here, which is how the fault sweeps exercise every admission point.
pub fn certify(channel: &Channel, eps: f64, tol: f64) -> Certificate {
    let (max_violation, checked_pairs, max_row_error) = measure(channel, eps);
    let forced = failpoint::hit("certify.channel.violation");
    let ok =
        !forced && max_violation <= tol && max_row_error <= row_tolerance(channel.num_outputs());
    Certificate {
        max_violation,
        checked_pairs,
        max_row_error,
        verdict: if ok {
            Verdict::Certified
        } else {
            Verdict::Quarantined
        },
        repair_l1_delta: 0.0,
    }
}

/// Largest per-row L1 distance between two equal-shape channels.
fn l1_delta(a: &Channel, b: &Channel) -> f64 {
    let m = a.num_outputs();
    let mut worst = 0.0f64;
    for x in 0..a.num_inputs() {
        let mut acc = 0.0;
        for z in 0..m {
            acc += (a.prob(x, z) - b.prob(x, z)).abs();
        }
        if acc > worst {
            worst = acc;
        }
    }
    worst
}

/// The mandatory admission gate: certify → repair → re-certify →
/// quarantine. Returns the (possibly repaired) channel carrying its
/// [`Certificate`], or [`MechanismError::ChannelQuarantined`] when even
/// the repaired channel fails strict re-certification.
///
/// The repair lift runs unconditionally — it is the numerical finishing
/// step that turns the solver's row-scaled tolerance into an honest
/// unscaled GeoInd guarantee (and a spanner-relaxed solution into a
/// full-pair one) — but the [`Verdict`] distinguishes channels that were
/// compliant on arrival (`Certified`) from channels the repair actually
/// saved (`Repaired`), so the serving layer can count repaired service.
///
/// The `certify.repair.fail` failpoint forces the re-certification to
/// fail, driving the quarantine path end to end.
pub fn admit(
    channel: Channel,
    spec: &CertifySpec,
    gate: &'static str,
) -> Result<Channel, MechanismError> {
    let n = channel.num_inputs();
    let m = channel.num_outputs();
    let first = certify(&channel, spec.eps, admission_tolerance(n, m, spec));
    let polished = channel.geoind_repair(spec.eps);
    let (post_violation, checked_pairs, post_row_error) = measure(&polished, spec.eps);
    let repair_failed = failpoint::hit("certify.repair.fail")
        || post_violation > strict_tolerance(n, m)
        || post_row_error > row_tolerance(m);
    if repair_failed {
        return Err(MechanismError::ChannelQuarantined {
            gate,
            max_violation: post_violation,
        });
    }
    let verdict = if first.verdict == Verdict::Certified {
        Verdict::Certified
    } else {
        Verdict::Repaired
    };
    let cert = Certificate {
        max_violation: post_violation,
        checked_pairs,
        max_row_error: post_row_error,
        verdict,
        repair_l1_delta: l1_delta(&channel, &polished),
    };
    Ok(polished.with_certificate(cert))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_lp::simplex::SimplexOptions;
    use geoind_spatial::geom::Point;
    use geoind_testkit::failpoint::{FailSpec, Session};

    fn spec(eps: f64) -> CertifySpec {
        CertifySpec {
            eps,
            constraints: ConstraintSet::Full,
            solver_slack: SimplexOptions::default().opt_tol,
        }
    }

    fn compliant(eps: f64) -> Channel {
        let edge = eps.exp() / (1.0 + eps.exp());
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        Channel::new(
            pts.clone(),
            pts,
            vec![
                edge - 1e-3,
                1.0 - edge + 1e-3,
                1.0 - edge + 1e-3,
                edge - 1e-3,
            ],
        )
    }

    fn violating(eps: f64) -> Channel {
        // A hard support mismatch: K(0)(1) = 0 where GeoInd demands mass.
        let pts = vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
        let _ = eps;
        Channel::new(pts.clone(), pts, vec![1.0, 0.0, 0.1, 0.9])
    }

    #[test]
    fn neumaier_beats_naive_summation() {
        // Classic cancellation case: naive summation loses the small term.
        let vals = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(neumaier_sum(&vals), 2.0);
        assert_eq!(vals.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn compliant_channel_certifies_outright() {
        let eps = 1.0;
        let c = compliant(eps);
        let cert = certify(&c, eps, admission_tolerance(2, 2, &spec(eps)));
        assert_eq!(cert.verdict, Verdict::Certified);
        assert_eq!(cert.checked_pairs, 2);
        assert!(
            cert.max_violation <= 0.0,
            "violation {}",
            cert.max_violation
        );
        assert!(cert.max_row_error <= row_tolerance(2));
    }

    #[test]
    fn admit_repairs_a_violating_channel_and_reports_the_delta() {
        let eps = 1.0;
        let admitted = admit(violating(eps), &spec(eps), "test").unwrap();
        let cert = admitted
            .certificate()
            .expect("admitted channel has a certificate");
        assert_eq!(cert.verdict, Verdict::Repaired);
        assert!(admitted.satisfies_geoind(eps, 1e-9));
        // The documented utility-loss bound: for any prior the expected
        // loss moves by at most repair_l1_delta * max output distance.
        assert!(cert.repair_l1_delta > 0.0);
        let max_dist = 4.0;
        let before = violating(eps).expected_loss(&[0.5, 0.5], crate::QualityMetric::Euclidean);
        let after = admitted.expected_loss(&[0.5, 0.5], crate::QualityMetric::Euclidean);
        assert!(
            (after - before).abs() <= cert.repair_l1_delta * max_dist + 1e-12,
            "loss delta {} exceeds bound {}",
            (after - before).abs(),
            cert.repair_l1_delta * max_dist
        );
    }

    #[test]
    fn admit_passes_compliant_channels_with_certified_verdict() {
        let eps = 1.0;
        let admitted = admit(compliant(eps), &spec(eps), "test").unwrap();
        let cert = admitted.certificate().unwrap();
        assert_eq!(cert.verdict, Verdict::Certified);
        assert!(cert.passes());
    }

    #[test]
    fn forced_violation_downgrades_to_repaired() {
        let eps = 1.0;
        let mut fp = Session::new();
        fp.arm("certify.channel.violation", FailSpec::always());
        let admitted = admit(compliant(eps), &spec(eps), "test").unwrap();
        assert_eq!(admitted.certificate().unwrap().verdict, Verdict::Repaired);
        assert!(fp.fired("certify.channel.violation") >= 1);
    }

    #[test]
    fn forced_repair_failure_quarantines() {
        let eps = 1.0;
        let mut fp = Session::new();
        fp.arm("certify.repair.fail", FailSpec::always());
        let err = admit(compliant(eps), &spec(eps), "test gate").unwrap_err();
        match err {
            MechanismError::ChannelQuarantined { gate, .. } => assert_eq!(gate, "test gate"),
            other => panic!("expected ChannelQuarantined, got {other:?}"),
        }
        assert!(fp.fired("certify.repair.fail") >= 1);
    }

    #[test]
    fn spanner_tolerance_is_wider_than_full() {
        let full = spec(1.0);
        let spanner = CertifySpec {
            constraints: ConstraintSet::Spanner { dilation: 1.5 },
            ..full
        };
        assert!(
            admission_tolerance(9, 9, &spanner) > admission_tolerance(9, 9, &full),
            "spanner chaining must widen admission"
        );
    }
}
