//! Geo-indistinguishability mechanisms — the paper's contribution.
//!
//! Three mechanisms share the [`Mechanism`] interface:
//!
//! * [`planar_laplace::PlanarLaplace`] — the fast, utility-poor baseline
//!   (Eq. 2), optionally remapped onto a discrete location set;
//! * [`opt::OptimalMechanism`] — the LP-based optimal mechanism of
//!   Bordenabe et al. (Eq. 3–6), exact but cubic in the location count;
//! * [`msm::MsmMechanism`] — the paper's **multi-step mechanism**
//!   (Algorithm 1): OPT applied per level of a hierarchical grid index with
//!   the privacy budget split by the Section-5 cost model
//!   ([`alloc`], Algorithm 2).
//!
//! Supporting modules: [`channel`] (row-stochastic channels + GeoInd
//! verification), [`metrics`] (quality-loss metrics `d_Q`), [`spanner`]
//! (δ-spanner constraint reduction, an ablation), [`adversary`] (Bayesian
//! posterior attacks), [`remap`] (Bayes-optimal post-processing),
//! [`trajectory`] (session budgets over movement traces) and [`eval`]
//! (utility-loss measurement harness).

#![warn(missing_docs)]
// Index-based loops over parallel arrays are the clearest style for the
// numeric kernels here; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Test reference constants keep full printed precision from their sources.
#![allow(clippy::excessive_precision)]
// Library code reports failures as typed `MechanismError`s; panicking
// unwraps are confined to tests. (`expect` with an invariant message
// remains allowed.)
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod adversary;
pub mod alloc;
pub mod audit;
pub(crate) mod cache;
pub mod certify;
pub mod channel;
pub mod eval;
pub mod flat;
pub mod metrics;
pub mod msm;
pub mod offline;
pub mod opt;
pub mod planar_laplace;
pub mod pmsm;
pub mod remap;
pub mod resilient;
pub mod spanner;
pub mod trajectory;

pub use adversary::BayesianAdversary;
pub use alloc::{AllocationStrategy, BudgetAllocator, LevelBudgets};
pub use audit::{audit_geoind, AuditConfig, AuditReport};
pub use certify::{Certificate, CertifySpec, Verdict};
pub use channel::Channel;
pub use eval::{EvalReport, Evaluator};
pub use flat::FlatChannel;
pub use metrics::QualityMetric;
pub use msm::{DescentInterrupted, DescentOutcome, FlatAudit, MsmMechanism};
pub use offline::CacheImportReport;
pub use opt::OptimalMechanism;
pub use planar_laplace::PlanarLaplace;
pub use pmsm::{KdMsmMechanism, PartitionMsm, QuadMsmMechanism};
pub use remap::RemappedMechanism;
pub use resilient::{DegradationReport, ResilientMechanism, Tier};
pub use trajectory::{BudgetError, BudgetLedger, StepOutcome, TrajectoryProtector};

use geoind_rng::Rng;
use geoind_spatial::geom::Point;

/// A location-sanitization mechanism: maps a true location to a reported
/// one, consuming randomness.
pub trait Mechanism {
    /// Sanitize `x` into a reported location.
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point;

    /// Short human-readable mechanism name (used by the evaluation harness).
    fn name(&self) -> String;
}

/// Errors produced while constructing or running mechanisms.
///
/// Every variant carries enough structure for a caller (notably
/// [`ResilientMechanism`]) to decide how to degrade; inner errors are
/// reachable through [`std::error::Error::source`], not flattened into
/// the `Display` text.
#[derive(Debug)]
pub enum MechanismError {
    /// A parameter is out of its valid range.
    BadParameter(String),
    /// The underlying linear program failed (see `source()` for which way).
    Lp(geoind_lp::LpError),
    /// Budget allocation across index levels has no feasible solution.
    AllocationFailed(String),
    /// An offline channel-cache blob failed structural validation.
    CacheCorrupt {
        /// Which part of the blob failed (`header`, `entry 3`, …).
        section: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A lock guarding shared mechanism state was poisoned by a panic on
    /// another thread; the guarded data can no longer be trusted.
    LockPoisoned(&'static str),
    /// A channel failed post-repair re-certification at an admission gate
    /// and was refused: sampling from it could violate the ε·d guarantee
    /// (see [`certify`]).
    ChannelQuarantined {
        /// The admission gate that refused it (`opt.solve`, `cache.import`, …).
        gate: &'static str,
        /// The scaled constraint violation measured after repair.
        max_violation: f64,
    },
    /// A request was served by a lower tier of the degradation ladder;
    /// `source` is the error that forced the fallback.
    Degraded {
        /// The tier that actually served the request.
        tier: Tier,
        /// The failure that made the higher tier unavailable.
        source: Box<MechanismError>,
    },
}

impl std::fmt::Display for MechanismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechanismError::BadParameter(m) => write!(f, "bad parameter: {m}"),
            MechanismError::Lp(_) => write!(f, "lp solver failed"),
            MechanismError::AllocationFailed(m) => {
                write!(f, "budget allocation failed: {m}")
            }
            MechanismError::CacheCorrupt { section, detail } => {
                write!(f, "channel cache corrupt at {section}: {detail}")
            }
            MechanismError::LockPoisoned(what) => {
                write!(f, "lock poisoned: {what}")
            }
            MechanismError::ChannelQuarantined {
                gate,
                max_violation,
            } => {
                write!(
                    f,
                    "channel quarantined at {gate}: post-repair violation \
                     {max_violation:.3e} exceeds certification tolerance"
                )
            }
            MechanismError::Degraded { tier, .. } => {
                write!(f, "request served by degraded tier {tier}")
            }
        }
    }
}

impl std::error::Error for MechanismError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MechanismError::Lp(e) => Some(e),
            MechanismError::Degraded { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<geoind_lp::LpError> for MechanismError {
    fn from(e: geoind_lp::LpError) -> Self {
        MechanismError::Lp(e)
    }
}
