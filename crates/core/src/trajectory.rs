//! Trajectory protection by sequential composition.
//!
//! The paper protects one query at a time; a real client reports *many*
//! locations over a session, and by the composability property
//! (Section 2.2) the leakage adds up: `k` reports through an ε-GeoInd
//! mechanism are jointly `k·ε`-GeoInd at worst. This module makes that
//! budget arithmetic explicit and safe:
//!
//! * [`BudgetLedger`] — tracks a session budget and refuses to overdraw it.
//! * [`TrajectoryProtector`] — sanitizes a stream of positions through any
//!   [`Mechanism`], charging the ledger per report, with an optional
//!   *speed-gate* heuristic that suppresses re-reporting when the user has
//!   barely moved (re-releasing a near-identical location spends budget for
//!   almost no utility — the standard practice recommendation from the
//!   GeoInd literature).

use crate::{Mechanism, MechanismError};
use geoind_rng::Rng;
use geoind_spatial::geom::Point;

/// Why a [`BudgetLedger`] refused a charge. Nothing is spent on refusal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetError {
    /// The charge would overdraw the budget; serving it would void the
    /// composed-ε guarantee, so the caller must refuse the request.
    Exhausted {
        /// The ε the caller tried to spend.
        requested: f64,
        /// The ε still available (possibly 0).
        remaining: f64,
    },
    /// The charge amount itself is invalid (non-positive or non-finite).
    BadCharge(f64),
    /// The shard of the ledger holding this account is unavailable (it
    /// failed recovery or cannot be reached). Fail-closed: without the
    /// shard's durable spend record the composed-ε position of the user
    /// is unknown, so the request must be refused, never served.
    ShardUnavailable {
        /// Index of the unavailable shard.
        shard: u64,
    },
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "budget exhausted: requested {requested}, remaining {remaining}"
            ),
            BudgetError::BadCharge(eps) => write!(f, "invalid budget charge {eps}"),
            BudgetError::ShardUnavailable { shard } => {
                write!(f, "budget shard {shard} unavailable; refusing fail-closed")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// A privacy-budget account for a reporting session.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: f64,
    spent: f64,
}

impl BudgetLedger {
    /// Open a ledger with a total session budget.
    ///
    /// # Panics
    /// Panics if `total <= 0`.
    pub fn new(total: f64) -> Self {
        assert!(total > 0.0, "session budget must be positive");
        Self { total, spent: 0.0 }
    }

    /// Reconstruct a ledger from persisted state. `spent` may exceed
    /// `total`: a fail-closed recovery is allowed to over-count spend
    /// (the account then refuses every further charge), never to
    /// under-count it.
    ///
    /// # Panics
    /// Panics if `total <= 0` or `spent` is negative or non-finite.
    pub fn with_spent(total: f64, spent: f64) -> Self {
        assert!(total > 0.0, "session budget must be positive");
        assert!(
            spent >= 0.0 && spent.is_finite(),
            "recovered spend must be finite and non-negative"
        );
        Self { total, spent }
    }

    /// Total session budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget consumed so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Try to charge `eps`; returns whether the charge fit the budget.
    ///
    /// # Panics
    /// Panics if `eps <= 0` (see [`Self::try_charge`] for the non-panicking
    /// form).
    pub fn charge(&mut self, eps: f64) -> bool {
        assert!(eps > 0.0, "charges must be positive");
        self.try_charge(eps).is_ok()
    }

    /// Fallible charge: spends `eps` atomically or refuses with a typed
    /// [`BudgetError`] and spends nothing. This is the serving-layer API —
    /// a refusal must be distinguishable from an invalid charge so the
    /// caller can count each outcome separately.
    ///
    /// # Errors
    /// [`BudgetError::BadCharge`] on non-positive/non-finite `eps`,
    /// [`BudgetError::Exhausted`] when the charge would overdraw.
    pub fn try_charge(&mut self, eps: f64) -> Result<(), BudgetError> {
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(BudgetError::BadCharge(eps));
        }
        if self.spent + eps > self.total + 1e-12 {
            return Err(BudgetError::Exhausted {
                requested: eps,
                remaining: self.remaining(),
            });
        }
        self.spent += eps;
        Ok(())
    }

    /// Unconditionally record spend, even past the total — the recovery
    /// primitive. A write-ahead journal replaying after a crash must count
    /// every durable record whether or not the corresponding request was
    /// ever served; over-counting only causes refusals (safe), while
    /// under-counting would over-serve ε (never allowed).
    pub fn force_spend(&mut self, eps: f64) {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "recovered spend must be finite and non-negative"
        );
        self.spent += eps;
    }
}

/// Outcome of one trajectory step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// A fresh sanitized location was released (budget charged).
    Released(Point),
    /// The previous release was reused — the user moved less than the
    /// suppression radius, so no budget was spent.
    Reused(Point),
    /// The session budget is exhausted; nothing was released.
    BudgetExhausted,
}

/// Sanitizes a movement trace through a per-report mechanism under a
/// session-level budget.
#[derive(Debug)]
pub struct TrajectoryProtector<M: Mechanism> {
    mechanism: M,
    per_report_eps: f64,
    ledger: BudgetLedger,
    /// Suppress a new release when within this distance (km) of the
    /// position at the previous *released* report. `0` disables the gate.
    suppression_radius: f64,
    last_true: Option<Point>,
    last_released: Option<Point>,
    releases: usize,
}

impl<M: Mechanism> TrajectoryProtector<M> {
    /// Create a protector.
    ///
    /// `per_report_eps` is the budget each fresh release costs (it must be
    /// the ε the `mechanism` was built with — the protector cannot verify
    /// this, it only does the accounting).
    ///
    /// # Errors
    /// [`MechanismError::BadParameter`] on non-positive parameters.
    pub fn new(
        mechanism: M,
        per_report_eps: f64,
        session_budget: f64,
        suppression_radius: f64,
    ) -> Result<Self, MechanismError> {
        if per_report_eps <= 0.0 {
            return Err(MechanismError::BadParameter(
                "per-report eps must be positive".into(),
            ));
        }
        if session_budget < per_report_eps {
            return Err(MechanismError::BadParameter(
                "session budget below a single report's cost".into(),
            ));
        }
        if suppression_radius < 0.0 {
            return Err(MechanismError::BadParameter(
                "suppression radius must be >= 0".into(),
            ));
        }
        Ok(Self {
            mechanism,
            per_report_eps,
            ledger: BudgetLedger::new(session_budget),
            suppression_radius,
            last_true: None,
            last_released: None,
            releases: 0,
        })
    }

    /// The ledger (for dashboards / tests).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.ledger
    }

    /// Number of fresh releases so far.
    pub fn releases(&self) -> usize {
        self.releases
    }

    /// Maximum number of fresh releases this session can still afford.
    pub fn reports_remaining(&self) -> usize {
        (self.ledger.remaining() / self.per_report_eps + 1e-9) as usize
    }

    /// Process the next position of the trace.
    pub fn step<R: Rng + ?Sized>(&mut self, x: Point, rng: &mut R) -> StepOutcome {
        if let (Some(prev), Some(released)) = (self.last_true, self.last_released) {
            if self.suppression_radius > 0.0 && prev.dist(x) <= self.suppression_radius {
                // The cached release is a valid output for the *previous*
                // position; reusing it reveals nothing new about `x` beyond
                // post-processing, so no budget is charged.
                return StepOutcome::Reused(released);
            }
        }
        if !self.ledger.charge(self.per_report_eps) {
            return StepOutcome::BudgetExhausted;
        }
        let z = self.mechanism.report(x, rng);
        self.last_true = Some(x);
        self.last_released = Some(z);
        self.releases += 1;
        StepOutcome::Released(z)
    }

    /// Sanitize an entire trace; exhausted steps yield `None`.
    pub fn protect_trace<R: Rng + ?Sized>(
        &mut self,
        trace: &[Point],
        rng: &mut R,
    ) -> Vec<Option<Point>> {
        trace
            .iter()
            .map(|&x| match self.step(x, rng) {
                StepOutcome::Released(z) | StepOutcome::Reused(z) => Some(z),
                StepOutcome::BudgetExhausted => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planar_laplace::PlanarLaplace;
    use geoind_rng::SeededRng;

    fn walk(n: usize, step: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(10.0 + i as f64 * step, 10.0))
            .collect()
    }

    #[test]
    fn ledger_arithmetic() {
        let mut l = BudgetLedger::new(1.0);
        assert!(l.charge(0.4));
        assert!(l.charge(0.6));
        assert!(!l.charge(0.01));
        assert!((l.spent() - 1.0).abs() < 1e-12);
        assert_eq!(l.remaining(), 0.0);
    }

    #[test]
    fn try_charge_types_each_refusal() {
        let mut l = BudgetLedger::new(1.0);
        assert!(l.try_charge(0.9).is_ok());
        assert_eq!(
            l.try_charge(0.2),
            Err(BudgetError::Exhausted {
                requested: 0.2,
                remaining: l.remaining(),
            })
        );
        // A refusal spends nothing.
        assert!((l.spent() - 0.9).abs() < 1e-12);
        assert_eq!(l.try_charge(0.0), Err(BudgetError::BadCharge(0.0)));
        assert_eq!(
            l.try_charge(f64::INFINITY),
            Err(BudgetError::BadCharge(f64::INFINITY))
        );
    }

    #[test]
    fn recovery_primitives_allow_overdraft_but_never_overserve() {
        // force_spend past the total is legal (fail-closed recovery may
        // over-count); the account must then refuse every charge.
        let mut l = BudgetLedger::with_spent(1.0, 0.8);
        l.force_spend(0.5);
        assert!(l.spent() > l.total());
        assert_eq!(l.remaining(), 0.0);
        assert!(matches!(
            l.try_charge(0.1),
            Err(BudgetError::Exhausted { .. })
        ));
    }

    #[test]
    fn budget_caps_release_count() {
        let mut rng = SeededRng::from_seed(1);
        let mut p = TrajectoryProtector::new(PlanarLaplace::new(0.2), 0.2, 1.0, 0.0).unwrap();
        let out = p.protect_trace(&walk(10, 1.0), &mut rng);
        // 1.0 / 0.2 = 5 releases, then exhaustion.
        assert_eq!(out.iter().filter(|o| o.is_some()).count(), 5);
        assert_eq!(p.releases(), 5);
        assert_eq!(p.reports_remaining(), 0);
        assert!(out[5..].iter().all(|o| o.is_none()));
    }

    #[test]
    fn suppression_reuses_release_without_spending() {
        let mut rng = SeededRng::from_seed(2);
        let mut p = TrajectoryProtector::new(PlanarLaplace::new(0.5), 0.5, 2.0, 0.5).unwrap();
        // Tiny steps: only the first report should spend budget.
        let out = p.protect_trace(&walk(8, 0.01), &mut rng);
        assert_eq!(p.releases(), 1);
        assert!((p.ledger().spent() - 0.5).abs() < 1e-12);
        // All outputs present and identical (the cached release).
        let first = out[0].unwrap();
        for o in &out {
            assert_eq!(o.unwrap(), first);
        }
    }

    #[test]
    fn movement_beyond_radius_triggers_fresh_release() {
        let mut rng = SeededRng::from_seed(3);
        let mut p = TrajectoryProtector::new(PlanarLaplace::new(0.5), 0.5, 10.0, 0.5).unwrap();
        let trace = vec![
            Point::new(10.0, 10.0),
            Point::new(10.1, 10.0), // within radius: reuse
            Point::new(12.0, 10.0), // beyond: fresh
        ];
        let out = p.protect_trace(&trace, &mut rng);
        assert_eq!(p.releases(), 2);
        assert_eq!(out[0], out[1]);
        assert!(out.iter().all(|o| o.is_some()));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(TrajectoryProtector::new(PlanarLaplace::new(0.5), 0.0, 1.0, 0.0).is_err());
        assert!(TrajectoryProtector::new(PlanarLaplace::new(0.5), 0.5, 0.3, 0.0).is_err());
        assert!(TrajectoryProtector::new(PlanarLaplace::new(0.5), 0.5, 1.0, -1.0).is_err());
    }

    #[test]
    fn composed_budget_bounds_total_leakage() {
        // Empirical sanity: with k releases at eps each, the log-likelihood
        // ratio between two traces differing in every position is bounded by
        // sum(eps_i * d_i). We verify the *accounting* side: spent budget
        // equals releases * per-report eps.
        let mut rng = SeededRng::from_seed(4);
        let mut p = TrajectoryProtector::new(PlanarLaplace::new(0.3), 0.3, 1.0, 0.0).unwrap();
        let _ = p.protect_trace(&walk(3, 2.0), &mut rng);
        assert!((p.ledger().spent() - 0.9).abs() < 1e-12);
        assert_eq!(p.releases(), 3);
    }
}
