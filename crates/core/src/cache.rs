//! Sharded single-flight channel cache.
//!
//! Both multi-step mechanisms memoize one solved channel per internal
//! index node. The original design — a single `RwLock<HashMap>` with a
//! read-check / drop / solve / write-insert sequence — had two scaling
//! problems under the parallel precompute path:
//!
//! * **duplicate solves**: N workers missing the same node all dropped the
//!   read lock, each paid a full LP solve (and ran the certify→repair→admit
//!   gate N times), and the last insert won;
//! * **a single lock**: every fetch on every level contended on one map.
//!
//! [`ShardedCache`] fixes both. Keys are spread over a fixed set of shards
//! by an FNV-1a hash of their canonical bytes, and each shard entry is
//! either a ready value or an in-flight *fill* that later arrivals block
//! on. Exactly one caller runs the fill closure per missing key — so the
//! admission gate runs exactly once per channel — and every blocked caller
//! that is handed the winner's value is counted as a *suppressed duplicate
//! fill* ([`ShardedCache::dedup_suppressed`]).
//!
//! Failed fills are never cached: the slot is removed, waiters wake and
//! retry (one of them becomes the next filler). A filler that panics also
//! clears its slot on unwind, so waiters see the miss again instead of
//! deadlocking.
//!
//! ## Fault injection
//!
//! The `cache.lock.poisoned` failpoint is checked **exactly once per
//! [`ShardedCache::get_or_fill`] call**, at entry — the same budget the
//! old single-map design charged per warm fetch. Count-based fault
//! schedules in the resilience suite depend on this accounting.

use crate::MechanismError;
use geoind_spatial::hier::LevelCell;
use geoind_testkit::failpoint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};

/// Number of shards. A small power of two: enough to keep the per-level
/// worker fan-out (`--jobs`) off a single lock, small enough that a full
/// snapshot stays cheap.
const SHARDS: usize = 16;

/// FNV-1a 64-bit over the key's canonical little-endian bytes — the same
/// dependency-free hash the offline cache format uses for checksums.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cache key that knows its canonical byte representation (for shard
/// selection; must be stable across runs so shard layout is deterministic).
pub(crate) trait ShardKey: Copy + Eq + std::hash::Hash + Send + Sync {
    /// Canonical little-endian byte form fed to FNV-1a.
    fn shard_bytes(&self) -> [u8; 12];
}

impl ShardKey for LevelCell {
    fn shard_bytes(&self) -> [u8; 12] {
        let mut b = [0u8; 12];
        b[..4].copy_from_slice(&self.level.to_le_bytes());
        b[4..].copy_from_slice(&(self.id as u64).to_le_bytes());
        b
    }
}

impl ShardKey for usize {
    fn shard_bytes(&self) -> [u8; 12] {
        let mut b = [0u8; 12];
        b[4..].copy_from_slice(&(*self as u64).to_le_bytes());
        b
    }
}

/// The state a blocked caller waits on while another caller fills the key.
#[derive(Debug, Default)]
struct FillState {
    done: Mutex<bool>,
    cv: Condvar,
}

impl FillState {
    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn finish(&self) {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }
}

#[derive(Debug)]
enum Slot<V> {
    /// A committed value.
    Ready(Arc<V>),
    /// Some caller is solving this key right now.
    Filling(Arc<FillState>),
}

/// Removes the in-flight slot and wakes waiters if the filler unwinds
/// before publishing (LP panic ⇒ waiters retry the miss, never deadlock).
struct FillGuard<'a, K: ShardKey, V> {
    shard: &'a RwLock<HashMap<K, Slot<V>>>,
    key: K,
    state: Arc<FillState>,
    published: bool,
}

impl<K: ShardKey, V> Drop for FillGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            self.shard
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&self.key);
        }
        self.state.finish();
    }
}

/// A sharded map of immutable values with single-flight fills.
#[derive(Debug)]
pub(crate) struct ShardedCache<K: ShardKey, V> {
    shards: Vec<RwLock<HashMap<K, Slot<V>>>>,
    /// Which lock the poisoning error names (matches the legacy per-cache
    /// error strings the resilience suite pins).
    name: &'static str,
    /// Duplicate fills suppressed: callers that blocked on another
    /// caller's in-flight fill and were handed its value.
    dedup: AtomicU64,
}

impl<K: ShardKey, V> ShardedCache<K, V> {
    pub(crate) fn new(name: &'static str) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            name,
            dedup: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, Slot<V>>> {
        &self.shards[(fnv1a64(&key.shard_bytes()) % SHARDS as u64) as usize]
    }

    fn poisoned(&self) -> MechanismError {
        MechanismError::LockPoisoned(self.name)
    }

    /// The value for `key`, filling it with `fill` on a miss.
    ///
    /// Exactly one caller runs `fill` per missing key; concurrent callers
    /// block until it publishes and then share the `Arc`. A failed fill is
    /// not cached — its error goes to the filler, and each waiter retries
    /// (one becomes the next filler).
    ///
    /// # Errors
    /// [`MechanismError::LockPoisoned`] via the `cache.lock.poisoned`
    /// failpoint (checked once, at entry) or a genuinely poisoned shard
    /// lock; otherwise whatever `fill` returns.
    pub(crate) fn get_or_fill(
        &self,
        key: K,
        fill: impl FnOnce() -> Result<V, MechanismError>,
    ) -> Result<Arc<V>, MechanismError> {
        if failpoint::hit("cache.lock.poisoned") {
            return Err(self.poisoned());
        }
        let shard = self.shard(&key);
        let mut fill = Some(fill);
        let mut waited = false;
        loop {
            // Fast path: shared read.
            let seen = {
                let map = shard.read().map_err(|_| self.poisoned())?;
                map.get(&key).map(|slot| match slot {
                    Slot::Ready(v) => Ok(Arc::clone(v)),
                    Slot::Filling(state) => Err(Arc::clone(state)),
                })
            };
            match seen {
                Some(Ok(v)) => {
                    if waited {
                        self.dedup.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(v);
                }
                Some(Err(state)) => {
                    state.wait();
                    waited = true;
                    continue;
                }
                None => {}
            }
            // Miss: race to claim the fill under the write lock.
            let mut claimed = None;
            let seen = {
                let mut map = shard.write().map_err(|_| self.poisoned())?;
                match map.get(&key) {
                    Some(Slot::Ready(v)) => Some(Ok(Arc::clone(v))),
                    Some(Slot::Filling(state)) => Some(Err(Arc::clone(state))),
                    None => {
                        let state = Arc::new(FillState::default());
                        map.insert(key, Slot::Filling(Arc::clone(&state)));
                        claimed = Some(state);
                        None
                    }
                }
            };
            match seen {
                Some(Ok(v)) => {
                    if waited {
                        self.dedup.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(v);
                }
                Some(Err(state)) => {
                    // Lost the race; wait outside the lock and retry.
                    state.wait();
                    waited = true;
                    continue;
                }
                None => {}
            }
            let state = claimed.expect("slot claimed on miss");
            // We own the fill. Solve outside any lock.
            let mut guard = FillGuard {
                shard,
                key,
                state,
                published: false,
            };
            let f = fill.take().expect("fill claimed at most once per call");
            let value = f()?; // guard clears the slot + wakes waiters on error
            let value = Arc::new(value);
            shard
                .write()
                .map_err(|_| self.poisoned())?
                .insert(key, Slot::Ready(Arc::clone(&value)));
            guard.published = true;
            return Ok(value); // guard wakes waiters, slot stays Ready
        }
    }

    /// The committed value for `key`, if any (in-flight fills don't count).
    pub(crate) fn get(&self, key: &K) -> Option<Arc<V>> {
        match self
            .shard(key)
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
        {
            Some(Slot::Ready(v)) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Commit a value directly (offline import path; overwrites).
    pub(crate) fn insert(&self, key: K, value: Arc<V>) {
        self.shard(&key)
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, Slot::Ready(value));
    }

    /// Number of committed values.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Drop every committed value (in-flight fills keep their slots and
    /// will still publish).
    pub(crate) fn clear(&self) {
        for s in &self.shards {
            s.write()
                .unwrap_or_else(PoisonError::into_inner)
                .retain(|_, slot| matches!(slot, Slot::Filling(_)));
        }
    }

    /// All committed `(key, value)` pairs, in unspecified order (callers
    /// sort by their own canonical key order).
    pub(crate) fn entries(&self) -> Vec<(K, Arc<V>)> {
        let mut out = Vec::new();
        for s in &self.shards {
            for (k, slot) in s.read().unwrap_or_else(PoisonError::into_inner).iter() {
                if let Slot::Ready(v) = slot {
                    out.push((*k, Arc::clone(v)));
                }
            }
        }
        out
    }

    /// Duplicate fills suppressed by single-flight so far.
    pub(crate) fn dedup_suppressed(&self) -> u64 {
        self.dedup.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fill_runs_once_and_everyone_shares_the_value() {
        let cache: ShardedCache<usize, u64> = ShardedCache::new("test cache");
        let solves = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = &cache;
                    let solves = &solves;
                    scope.spawn(move || {
                        cache
                            .get_or_fill(7, || {
                                solves.fetch_add(1, Ordering::SeqCst);
                                // Widen the race window so late arrivals
                                // actually block on the in-flight fill.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                Ok(42u64)
                            })
                            .map(|v| *v)
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap().unwrap(), 42);
            }
        });
        assert_eq!(solves.load(Ordering::SeqCst), 1, "duplicate solve leaked");
        assert_eq!(cache.len(), 1);
        // Everyone but the filler was a suppressed duplicate (timing can
        // let a waiter arrive after publication, which is a plain hit, so
        // the count is bounded, not exact).
        assert!(cache.dedup_suppressed() <= 7);
    }

    #[test]
    fn failed_fills_are_not_cached_and_waiters_retry() {
        let cache: ShardedCache<usize, u64> = ShardedCache::new("test cache");
        let attempts = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = &cache;
                    let attempts = &attempts;
                    scope.spawn(move || {
                        cache.get_or_fill(3, || {
                            let n = attempts.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            if n == 0 {
                                Err(MechanismError::BadParameter("first fill fails".into()))
                            } else {
                                Ok(9u64)
                            }
                        })
                    })
                })
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // Exactly one caller saw the injected failure; everyone else
            // ended with the value.
            assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
            assert!(results
                .iter()
                .filter_map(|r| r.as_ref().ok())
                .all(|v| **v == 9));
        });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn panicking_fill_clears_the_slot() {
        let cache: ShardedCache<usize, u64> = ShardedCache::new("test cache");
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_fill(1, || panic!("lp exploded"));
        }));
        assert!(boom.is_err());
        // The key is a clean miss again — the next caller fills it.
        let v = cache.get_or_fill(1, || Ok(5u64)).unwrap();
        assert_eq!(*v, 5);
    }

    #[test]
    fn clear_and_len_see_only_committed_values() {
        let cache: ShardedCache<usize, u64> = ShardedCache::new("test cache");
        for k in 0..40 {
            let _ = cache.get_or_fill(k, || Ok(k as u64));
        }
        assert_eq!(cache.len(), 40);
        assert_eq!(cache.entries().len(), 40);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&7).is_none());
    }

    #[test]
    fn failpoint_budget_is_one_check_per_get() {
        let mut session = failpoint::Session::new();
        session.arm("cache.lock.poisoned", failpoint::FailSpec::times(1));
        let cache: ShardedCache<usize, u64> = ShardedCache::new("msm channel cache");
        let err = cache.get_or_fill(0, || Ok(1u64)).unwrap_err();
        assert!(matches!(
            err,
            MechanismError::LockPoisoned("msm channel cache")
        ));
        // The single armed hit is spent: the same call now succeeds, and a
        // warm fetch costs exactly one (now unarmed) check.
        assert_eq!(*cache.get_or_fill(0, || Ok(1u64)).unwrap(), 1);
        assert_eq!(*cache.get_or_fill(0, || unreachable!()).unwrap(), 1);
        drop(session);
    }
}
