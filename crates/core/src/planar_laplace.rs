//! The planar-Laplace mechanism (Andrés et al., Eq. 2) with optional
//! discrete remapping.
//!
//! Noise is drawn from the bi-variate Laplacian
//! `D_ε(x, z) = ε²/(2π)·e^{−ε·d(x,z)}`: angle uniform on `[0, 2π)`, radius
//! from the inverse radial CDF (computed with the lower Lambert-W branch).
//! When the candidate set `Z` is discrete, the continuous output is mapped
//! back to the closest element — the post-processing step the paper applies
//! to its PL baseline (remap to the grid).

use crate::Mechanism;
use geoind_math::sampling::RadialSampler;
use geoind_rng::Rng;
use geoind_spatial::geom::Point;
use geoind_spatial::grid::Grid;
use geoind_spatial::kdtree::KdTree;

/// Where the continuous PL output lands after post-processing.
#[derive(Debug, Clone)]
enum Remap {
    /// Report the raw continuous location.
    None,
    /// Snap to the center of the enclosing grid cell (clamping to the
    /// domain first, as the paper's grid remap does).
    Grid(Grid),
    /// Snap to the nearest point of a discrete candidate set.
    Discrete { tree: KdTree, points: Vec<Point> },
}

/// The planar-Laplace mechanism.
#[derive(Debug, Clone)]
pub struct PlanarLaplace {
    eps: f64,
    /// Radius sampler with its Lambert-W guess table precomputed at
    /// construction — the radial distribution is derived once here, not
    /// re-derived on every request (the serving layer builds its tier
    /// samplers at admission, so the table rides along).
    radial: RadialSampler,
    remap: Remap,
}

impl PlanarLaplace {
    /// A continuous planar-Laplace mechanism with budget `eps` (per km).
    ///
    /// # Examples
    /// ```
    /// use geoind_core::planar_laplace::PlanarLaplace;
    /// use geoind_core::Mechanism;
    /// use geoind_spatial::geom::Point;
    /// use geoind_rng::SeededRng;
    ///
    /// let pl = PlanarLaplace::new(0.5);
    /// let mut rng = SeededRng::from_seed(1);
    /// let z = pl.report(Point::new(10.0, 10.0), &mut rng);
    /// assert!(z.dist(Point::new(10.0, 10.0)) < 50.0); // some finite noise
    /// ```
    ///
    /// # Panics
    /// Panics if `eps <= 0`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0, "privacy budget must be positive");
        Self {
            eps,
            radial: RadialSampler::new(eps),
            remap: Remap::None,
        }
    }

    /// Remap outputs to cell centers of `grid` (the paper's PL benchmark).
    pub fn with_grid_remap(mut self, grid: Grid) -> Self {
        self.remap = Remap::Grid(grid);
        self
    }

    /// Remap outputs to the nearest of a discrete candidate set (e.g. POI
    /// logical locations).
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn with_discrete_remap(mut self, points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "remap set must be non-empty");
        let tree = KdTree::build(points.iter().copied().enumerate().map(|(i, p)| (p, i)));
        self.remap = Remap::Discrete { tree, points };
        self
    }

    /// The privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Raw continuous noisy location (before any remap). Angle uniform,
    /// radius from the precomputed [`RadialSampler`] — the same two draws
    /// in the same order as deriving the radius per request.
    pub fn report_continuous<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        let theta = rng.gen_range(0.0..(2.0 * std::f64::consts::PI));
        let r = self.radial.sample(rng);
        Point::new(x.x + r * theta.cos(), x.y + r * theta.sin())
    }
}

impl Mechanism for PlanarLaplace {
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        let raw = self.report_continuous(x, rng);
        match &self.remap {
            Remap::None => raw,
            Remap::Grid(grid) => grid.snap(grid.domain().clamp(raw)),
            Remap::Discrete { tree, points } => {
                let (_, idx, _) = tree.nearest(raw).expect("non-empty remap set");
                points[idx]
            }
        }
    }

    fn name(&self) -> String {
        match &self.remap {
            Remap::None => format!("PL(eps={})", self.eps),
            Remap::Grid(g) => format!("PL+grid{}(eps={})", g.granularity(), self.eps),
            Remap::Discrete { points, .. } => {
                format!("PL+remap{}(eps={})", points.len(), self.eps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::SeededRng;
    use geoind_spatial::geom::BBox;

    #[test]
    fn continuous_mean_distance_is_two_over_eps() {
        let pl = PlanarLaplace::new(0.5);
        let x = Point::new(10.0, 10.0);
        let mut rng = SeededRng::from_seed(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| pl.report(x, &mut rng).dist(x)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean displacement {mean}");
    }

    #[test]
    fn radially_symmetric() {
        let pl = PlanarLaplace::new(1.0);
        let x = Point::new(0.0, 0.0);
        let mut rng = SeededRng::from_seed(23);
        let n = 40_000;
        let (mut east, mut north) = (0usize, 0usize);
        for _ in 0..n {
            let z = pl.report(x, &mut rng);
            if z.x > 0.0 {
                east += 1;
            }
            if z.y > 0.0 {
                north += 1;
            }
        }
        assert!((east as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((north as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn grid_remap_lands_on_centers() {
        let grid = Grid::new(BBox::square(20.0), 4);
        let pl = PlanarLaplace::new(0.2).with_grid_remap(grid.clone());
        let mut rng = SeededRng::from_seed(29);
        let centers = grid.centers();
        for _ in 0..500 {
            let z = pl.report(Point::new(3.0, 17.0), &mut rng);
            assert!(
                centers.iter().any(|c| c.dist(z) < 1e-12),
                "{z:?} is not a cell center"
            );
        }
    }

    #[test]
    fn discrete_remap_lands_on_candidates() {
        let pois = vec![
            Point::new(1.0, 1.0),
            Point::new(5.0, 5.0),
            Point::new(9.0, 2.0),
        ];
        let pl = PlanarLaplace::new(0.5).with_discrete_remap(pois.clone());
        let mut rng = SeededRng::from_seed(31);
        for _ in 0..200 {
            let z = pl.report(Point::new(4.0, 4.0), &mut rng);
            assert!(pois.contains(&z));
        }
    }

    #[test]
    fn empirical_geoind_on_discretized_outputs() {
        // Discretize continuous PL outputs onto a coarse grid and check the
        // empirical density ratio between two nearby inputs stays within
        // e^{eps d} (with generous sampling slack). This is the mechanism's
        // defining guarantee, and remapping (a post-process) preserves it.
        let eps = 1.0;
        let pl = PlanarLaplace::new(eps);
        let a = Point::new(10.0, 10.0);
        let b = Point::new(10.5, 10.0);
        let grid = Grid::new(BBox::square(20.0), 10);
        let mut rng = SeededRng::from_seed(37);
        let n = 300_000;
        let mut ca = vec![0.0f64; grid.num_cells()];
        let mut cb = vec![0.0f64; grid.num_cells()];
        for _ in 0..n {
            let za = grid.domain().clamp(pl.report(a, &mut rng));
            let zb = grid.domain().clamp(pl.report(b, &mut rng));
            ca[grid.cell_of(za)] += 1.0;
            cb[grid.cell_of(zb)] += 1.0;
        }
        let bound = (eps * a.dist(b)).exp();
        for z in 0..grid.num_cells() {
            if ca[z] >= 500.0 && cb[z] >= 500.0 {
                let ratio = ca[z] / cb[z];
                assert!(
                    ratio < bound * 1.25 && ratio > 1.0 / (bound * 1.25),
                    "cell {z}: ratio {ratio}, bound {bound}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_eps_rejected() {
        PlanarLaplace::new(0.0);
    }
}
