//! Black-box empirical GeoInd auditing.
//!
//! The [`crate::channel::Channel`] checker verifies mechanisms we can write
//! down as matrices. For everything else — a continuous mechanism, a binary
//! under test, a composed pipeline — this module estimates the GeoInd
//! ratio empirically: sample many reports from two nearby inputs,
//! discretize onto a grid, and compare the per-cell log-frequency gap to
//! the allowance `ε·d(a, b)`.
//!
//! Sampling noise makes this a *detector*, not a proof: cells need a
//! minimum count before they are compared, and verdicts should use a
//! slack proportional to `1/√count`. It reliably flags broken mechanisms
//! (wrong budget, missing noise, support mismatches), which is what an
//! audit is for.

use crate::Mechanism;
use geoind_rng::Rng;
use geoind_spatial::geom::Point;
use geoind_spatial::grid::Grid;

/// Tuning for an audit run.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Reports sampled per input point.
    pub samples: usize,
    /// Minimum per-cell count (both sides) for a cell to be compared.
    pub min_cell_count: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            samples: 20_000,
            min_cell_count: 50,
        }
    }
}

/// The worst observation for one audited pair.
#[derive(Debug, Clone, Copy)]
pub struct PairFinding {
    /// First input.
    pub a: Point,
    /// Second input.
    pub b: Point,
    /// Output cell where the worst ratio was observed.
    pub cell: usize,
    /// Observed `|ln(P̂(cell|a) / P̂(cell|b))|`.
    pub log_ratio: f64,
    /// Allowed `ε·d(a, b)`.
    pub allowance: f64,
}

impl PairFinding {
    /// Observed excess over the allowance (positive = suspicious).
    pub fn excess(&self) -> f64 {
        self.log_ratio - self.allowance
    }
}

/// Outcome of an audit.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Per-pair worst observations, sorted by descending excess.
    pub findings: Vec<PairFinding>,
    /// Reports drawn per input point.
    pub samples: usize,
}

impl AuditReport {
    /// The largest excess over any pair (`-inf` if nothing was comparable).
    pub fn worst_excess(&self) -> f64 {
        self.findings
            .first()
            .map_or(f64::NEG_INFINITY, |f| f.excess())
    }

    /// Verdict with an explicit statistical slack (in nats). A slack of
    /// `~3/√min_cell_count` keeps the false-alarm rate negligible.
    pub fn passes(&self, slack: f64) -> bool {
        self.worst_excess() <= slack
    }
}

/// Audit `mechanism` against budget `eps` on the given input pairs,
/// discretizing outputs onto `output_grid`.
///
/// # Panics
/// Panics if `pairs` is empty or the config is degenerate.
pub fn audit_geoind<M: Mechanism, R: Rng + ?Sized>(
    mechanism: &M,
    eps: f64,
    pairs: &[(Point, Point)],
    output_grid: &Grid,
    cfg: AuditConfig,
    rng: &mut R,
) -> AuditReport {
    assert!(!pairs.is_empty(), "need at least one pair to audit");
    assert!(
        cfg.samples > 0 && cfg.min_cell_count > 0,
        "degenerate audit config"
    );
    assert!(eps > 0.0, "eps must be positive");
    let mut findings = Vec::with_capacity(pairs.len());
    for &(a, b) in pairs {
        let ca = histogram(mechanism, a, output_grid, cfg.samples, rng);
        let cb = histogram(mechanism, b, output_grid, cfg.samples, rng);
        let allowance = eps * a.dist(b);
        let mut worst = PairFinding {
            a,
            b,
            cell: 0,
            log_ratio: 0.0,
            allowance,
        };
        for cell in 0..output_grid.num_cells() {
            let (na, nb) = (ca[cell], cb[cell]);
            // Compare only well-populated cells; a support mismatch with a
            // populated side still triggers via the smoothed zero.
            if na.max(nb) < cfg.min_cell_count {
                continue;
            }
            // Add-one smoothing keeps empty-vs-populated comparable.
            let ratio = ((na as f64 + 1.0) / (nb as f64 + 1.0)).ln().abs();
            if ratio > worst.log_ratio {
                worst = PairFinding {
                    a,
                    b,
                    cell,
                    log_ratio: ratio,
                    allowance,
                };
            }
        }
        findings.push(worst);
    }
    findings.sort_by(|x, y| {
        y.excess()
            .partial_cmp(&x.excess())
            .expect("finite excesses")
    });
    AuditReport {
        findings,
        samples: cfg.samples,
    }
}

fn histogram<M: Mechanism, R: Rng + ?Sized>(
    mechanism: &M,
    x: Point,
    grid: &Grid,
    samples: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut counts = vec![0usize; grid.num_cells()];
    for _ in 0..samples {
        let z = grid.domain().clamp(mechanism.report(x, rng));
        counts[grid.cell_of(z)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planar_laplace::PlanarLaplace;
    use geoind_rng::SeededRng;
    use geoind_spatial::geom::BBox;

    /// A "mechanism" that leaks the true location verbatim.
    struct Liar;
    impl Mechanism for Liar {
        fn report<R: Rng + ?Sized>(&self, x: Point, _rng: &mut R) -> Point {
            x
        }
        fn name(&self) -> String {
            "liar".into()
        }
    }

    /// A mechanism claiming eps but running at 4x the budget.
    struct OverSpender(PlanarLaplace);
    impl Mechanism for OverSpender {
        fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
            self.0.report(x, rng)
        }
        fn name(&self) -> String {
            "overspender".into()
        }
    }

    fn setup() -> (Grid, Vec<(Point, Point)>, SeededRng) {
        let grid = Grid::new(BBox::square(20.0), 8);
        let pairs = vec![
            (Point::new(10.0, 10.0), Point::new(11.0, 10.0)),
            (Point::new(5.0, 5.0), Point::new(5.0, 6.5)),
        ];
        (grid, pairs, SeededRng::from_seed(11))
    }

    #[test]
    fn honest_planar_laplace_passes() {
        let (grid, pairs, mut rng) = setup();
        let eps = 0.8;
        let report = audit_geoind(
            &PlanarLaplace::new(eps),
            eps,
            &pairs,
            &grid,
            AuditConfig::default(),
            &mut rng,
        );
        assert!(
            report.passes(0.45),
            "honest mechanism flagged: worst excess {}",
            report.worst_excess()
        );
    }

    #[test]
    fn identity_leak_is_flagged() {
        let (grid, _, mut rng) = setup();
        // The pair must straddle a cell boundary for a deterministic leak
        // to be visible at this output granularity (cells are 2.5 km).
        let pairs = vec![(Point::new(9.0, 10.0), Point::new(11.0, 10.0))];
        let report = audit_geoind(
            &Liar,
            0.8,
            &pairs,
            &grid,
            AuditConfig {
                samples: 2_000,
                min_cell_count: 20,
            },
            &mut rng,
        );
        assert!(!report.passes(0.45));
        // The excess is enormous: one side's cell holds everything, the
        // other's nothing.
        assert!(
            report.worst_excess() > 3.0,
            "excess {}",
            report.worst_excess()
        );
    }

    #[test]
    fn budget_overspend_is_flagged() {
        // Mechanism noise calibrated to 4*eps while claiming eps: ratios
        // exceed the claimed allowance.
        let (grid, _, mut rng) = setup();
        let claimed = 0.4;
        let pairs = vec![(Point::new(8.0, 10.0), Point::new(13.0, 10.0))];
        let report = audit_geoind(
            &OverSpender(PlanarLaplace::new(4.0 * claimed)),
            claimed,
            &pairs,
            &grid,
            AuditConfig::default(),
            &mut rng,
        );
        assert!(
            report.worst_excess() > 0.5,
            "overspend not detected: excess {}",
            report.worst_excess()
        );
    }

    #[test]
    fn findings_are_sorted_by_excess() {
        let (grid, pairs, mut rng) = setup();
        let report = audit_geoind(
            &PlanarLaplace::new(0.5),
            0.5,
            &pairs,
            &grid,
            AuditConfig {
                samples: 5_000,
                min_cell_count: 30,
            },
            &mut rng,
        );
        for w in report.findings.windows(2) {
            assert!(w[0].excess() >= w[1].excess());
        }
        assert_eq!(report.findings.len(), pairs.len());
    }
}
