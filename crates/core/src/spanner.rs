//! Greedy δ-spanners for GeoInd constraint reduction.
//!
//! The exact optimal mechanism needs a constraint per `(x, x′, z)` triple.
//! Chatzikokolakis et al. (PoPETS 2017) observed that enforcing the
//! constraints only on the edges of a δ-spanner of the location set — at
//! the tightened budget `ε/δ` — still implies ε-GeoInd for every pair, by
//! chaining along spanner paths:
//! `K(x)(z) ≤ e^{(ε/δ)·d_G(x,x′)}·K(x′)(z) ≤ e^{ε·d(x,x′)}·K(x′)(z)`.
//!
//! The workspace uses this as an ablation against the exact formulation
//! (`abl-spanner` in EXPERIMENTS.md).

use geoind_spatial::geom::Point;

/// An undirected graph whose shortest-path metric `d_G` satisfies
/// `d ≤ d_G ≤ δ·d` over the given points.
#[derive(Debug, Clone)]
pub struct Spanner {
    dilation: f64,
    edges: Vec<(usize, usize)>,
    n: usize,
}

impl Spanner {
    /// Greedy spanner construction (Althöfer et al.): consider pairs by
    /// ascending distance; add an edge only when the current graph distance
    /// exceeds `δ·d`.
    ///
    /// O(n² log n + n·E) with Dijkstra checks — intended for the ≤ a few
    /// hundred locations the mechanisms use.
    ///
    /// # Panics
    /// Panics if `dilation < 1` or fewer than 2 points are given.
    pub fn greedy(points: &[Point], dilation: f64) -> Self {
        assert!(dilation >= 1.0, "dilation must be >= 1");
        assert!(points.len() >= 2, "spanner needs at least two points");
        let n = points.len();
        let mut pairs: Vec<(usize, usize, f64)> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i, j, points[i].dist(points[j])));
            }
        }
        pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("NaN distance"));
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut edges = Vec::new();
        for (i, j, d) in pairs {
            if shortest_path_bounded(&adj, i, j, dilation * d) > dilation * d {
                adj[i].push((j, d));
                adj[j].push((i, d));
                edges.push((i, j));
            }
        }
        Self { dilation, edges, n }
    }

    /// The dilation bound δ this spanner was built for.
    pub fn dilation(&self) -> f64 {
        self.dilation
    }

    /// Spanner edges as index pairs (`i < j`).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Shortest-path distance in the spanner between two vertices, for
    /// verification. Returns `f64::INFINITY` when disconnected.
    pub fn graph_distance(&self, points: &[Point], a: usize, b: usize) -> f64 {
        assert_eq!(points.len(), self.n);
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n];
        for &(i, j) in &self.edges {
            let d = points[i].dist(points[j]);
            adj[i].push((j, d));
            adj[j].push((i, d));
        }
        shortest_path_bounded(&adj, a, b, f64::INFINITY)
    }
}

/// Dijkstra from `src` to `dst`, early-exiting once `bound` is exceeded.
/// Returns the distance (possibly `> bound`, meaning "too far").
fn shortest_path_bounded(adj: &[Vec<(usize, f64)>], src: usize, dst: usize, bound: f64) -> f64 {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f64, usize);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on distance.
            other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
        }
    }

    let mut dist = vec![f64::INFINITY; adj.len()];
    dist[src] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry(0.0, src));
    while let Some(Entry(d, u)) = heap.pop() {
        if u == dst {
            return d;
        }
        if d > dist[u] || d > bound {
            continue;
        }
        for &(v, w) in &adj[u] {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Entry(nd, v));
            }
        }
    }
    dist[dst]
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_spatial::geom::BBox;
    use geoind_spatial::grid::Grid;

    fn grid_points(g: u32) -> Vec<Point> {
        Grid::new(BBox::square(10.0), g).centers()
    }

    #[test]
    fn dilation_one_preserves_the_metric_exactly() {
        // δ=1 does NOT force the complete graph: collinear grid points are
        // served by stretch-1 paths. But every graph distance must equal
        // the metric distance.
        let pts = grid_points(3);
        let s = Spanner::greedy(&pts, 1.0);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let dg = s.graph_distance(&pts, i, j);
                let d = pts[i].dist(pts[j]);
                assert!((dg - d).abs() < 1e-9, "({i},{j}): {dg} vs {d}");
            }
        }
        // Diagonal-adjacent pairs have no stretch-1 path through others, so
        // the edge count still exceeds a spanning tree.
        assert!(s.edges().len() >= pts.len());
    }

    #[test]
    fn spanner_respects_dilation_bound() {
        let pts = grid_points(5);
        for delta in [1.2, 1.5, 2.0, 3.0] {
            let s = Spanner::greedy(&pts, delta);
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let dg = s.graph_distance(&pts, i, j);
                    let d = pts[i].dist(pts[j]);
                    assert!(
                        dg <= delta * d + 1e-9,
                        "delta={delta}: pair ({i},{j}) stretched {dg} > {}",
                        delta * d
                    );
                    assert!(dg >= d - 1e-9, "graph shorter than metric?");
                }
            }
        }
    }

    #[test]
    fn larger_dilation_gives_sparser_graph() {
        let pts = grid_points(6);
        let tight = Spanner::greedy(&pts, 1.1).edges().len();
        let loose = Spanner::greedy(&pts, 2.5).edges().len();
        assert!(
            loose < tight,
            "expected sparser graph at higher dilation ({loose} vs {tight})"
        );
        // And dramatically fewer than the complete graph.
        assert!(loose < pts.len() * (pts.len() - 1) / 8);
    }

    #[test]
    fn connected() {
        let pts = grid_points(4);
        let s = Spanner::greedy(&pts, 2.0);
        for j in 1..pts.len() {
            assert!(s.graph_distance(&pts, 0, j).is_finite());
        }
    }
}
